//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the `proptest!`/`prop_oneof!`/`prop_assert*` macros,
//! `Strategy` with `prop_map`/`prop_flat_map`, `any`, `Just`, numeric
//! range strategies, tuple strategies, `prop::collection::vec`, and a
//! tiny `[class]{m,n}` string-pattern strategy.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case seed; re-running
//!   reproduces it because generation is deterministic.
//! * **Deterministic seeding.** Cases derive from a fixed base seed (or
//!   `PROPTEST_SEED`), so CI runs are reproducible.
//! * Default case count is 64 (override with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property (returned by `prop_assert*` via `?`-free early return).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The deterministic generation source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    pub fn gen_usize(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }
}

/// Base seed for a named test (stable across runs; override with
/// `PROPTEST_SEED`).
#[must_use]
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A `Vec` of strategies yields a `Vec` of values, one per element
/// (mirrors real proptest).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

/// Arrays of strategies, likewise.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].new_value(rng))
    }
}

/// Object-safe strategy facade used by `prop_oneof!`.
pub trait DynStrategy<V> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Weighted choice among strategies producing the same value type.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
}

impl<V> Union<V> {
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.next_u64() % total.max(1);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value_dyn(rng);
            }
            pick -= w;
        }
        self.arms[0].1.new_value_dyn(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: keeps arithmetic properties meaningful.
        let x = rng.gen_f64() * 2.0 - 1.0;
        x * 1e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(32 + (rng.next_u64() % 95) as u32).expect("printable ASCII")
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == end {
                    return start;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + rng.gen_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

// ---------------------------------------------------------------------------
// String pattern strategy: `"[class]{m,n}"`
// ---------------------------------------------------------------------------

/// `&str` strategies interpret the string as a miniature regex — a
/// sequence of literal characters and `[...]` classes, each optionally
/// followed by `{n}` or `{m,n}`. This covers the patterns the workspace
/// tests use (e.g. `"[a-z/._-]{1,24}"`); anything fancier panics.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let items = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in items {
            let n = min + rng.gen_usize(max - min + 1);
            for _ in 0..n {
                out.push(chars[rng.gen_usize(chars.len())]);
            }
        }
        out
    }
}

type PatternItem = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternItem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut items: Vec<PatternItem> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                set
            }
            '{' | '}' | ']' => panic!("unsupported pattern {pattern:?}"),
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("pattern repeat min"),
                    n.trim().parse().expect("pattern repeat max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        items.push((alphabet, min, max));
    }
    items
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.gen_usize(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::DynStrategy<_>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::DynStrategy<_>>)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = $crate::TestRng::from_seed(seed);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (PROPTEST_SEED={} reproduces it):\n{}",
                        case + 1,
                        config.cases,
                        base,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod strategy {
    pub use super::{Just, Strategy, Union};
}

pub mod prelude {
    pub use super::collection;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of real proptest's `prelude::prop` module shortcut.
    pub mod prop {
        pub use super::super::collection;
        pub use super::super::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0.0f64..1.0, z in 3usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(z, 3);
        }

        #[test]
        fn vec_sizes_respect_the_range(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_honours_arms(x in prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)]) {
            prop_assert!((1u8..=3u8).contains(&x));
        }

        #[test]
        fn pattern_strategy_matches_its_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn maps_compose(n in (0u8..10).prop_map(|x| x * 2)) {
            prop_assert!(n < 20);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn config_with_cases_overrides_default() {
        assert_eq!(ProptestConfig::with_cases(8).cases, 8);
    }
}
