//! Offline stand-in for `rand` (0.8-era API subset).
//!
//! The build environment has no network access, so this vendored crate
//! provides the pieces the workspace imports: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — deterministic in the
//! seed (which the workspace's reproducibility tests rely on), not
//! cryptographically secure (which the real `StdRng` is; nothing here
//! needs that).

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform bits for integers, `[0, 1)` for floats, fair coin for
    /// `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from uniform bits.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range. Mirrors real rand's single
/// generic `SampleRange` impl so integer-literal ranges infer their
/// type from surrounding context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_single_inclusive(start, end, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u64).wrapping_add(hi) as $t
            }

            fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                if low == high {
                    return low;
                }
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                low + <$t as Standard>::sample(rng) * (high - low)
            }

            fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                low + <$t as Standard>::sample(rng) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the `shuffle`/`choose` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }

    // Keep `RngCore` referenced so the import surface matches real rand.
    const _: fn(&mut dyn FnMut()) = |_| {};
    #[allow(unused)]
    fn _assert_rngcore_object_safe(_: &mut dyn RngCore) {}
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&y));
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
