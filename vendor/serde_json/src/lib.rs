//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree as JSON text,
//! exposing the subset of the real crate's API this workspace uses:
//! [`to_value`], [`from_value`], [`to_string`], [`to_string_pretty`],
//! [`from_str`], plus [`Value`]/[`Map`] re-exports.

use serde::{DeserializeOwned, Serialize};

pub use serde::{DeError, Map, Value};

/// Errors from serialization or deserialization (shared with parsing).
pub type Error = DeError;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip float formatting; force a
                // fractional marker so the value re-parses as F64.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no non-finite numbers (matches serde_json).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !m.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(DeError::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(DeError::new("expected `,` or `]` in array")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(DeError::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| DeError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's writer (it never emits them).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(DeError::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(DeError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WithOptions {
        required: u32,
        opt_float: Option<f64>,
        opt_count: Option<u64>,
    }

    #[test]
    fn missing_option_fields_deserialize_to_none() {
        // Real serde semantics: absent keys for Option fields are None,
        // absent keys for required fields are an error.
        let parsed: WithOptions = from_str(r#"{"required": 3}"#).expect("options default");
        assert_eq!(
            parsed,
            WithOptions {
                required: 3,
                opt_float: None,
                opt_count: None
            }
        );
        assert!(from_str::<WithOptions>(r#"{"opt_float": 1.0}"#).is_err());
    }

    #[test]
    fn present_option_fields_round_trip() {
        let v = WithOptions {
            required: 1,
            opt_float: Some(2.5),
            opt_count: None,
        };
        let text = to_string(&v).expect("serializes");
        let back: WithOptions = from_str(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map({
            let mut m = Map::new();
            m.insert("a".into(), Value::U64(7));
            m.insert("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null]));
            m.insert("s".into(), Value::Str("x\"y\n".into()));
            m.insert("neg".into(), Value::I64(-3));
            m
        });
        let text = {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            out
        };
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Seq(vec![Value::Bool(true), Value::Str("hi".into())]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(parse(&out).expect("parses"), v);
    }

    #[test]
    fn floats_survive_a_round_trip_exactly() {
        for x in [0.1, 1.0, -2.5e-7, 123456.789, f64::MAX] {
            let mut out = String::new();
            write_value(&Value::F64(x), &mut out, None, 0);
            match parse(&out).expect("parses") {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {out}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
