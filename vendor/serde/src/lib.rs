//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this vendored crate
//! replaces the crates.io `serde` with a minimal value-tree framework
//! exposing the same import surface the workspace uses:
//! `use serde::{Deserialize, Serialize}` (traits + derives).
//!
//! Instead of real serde's visitor architecture, serialization goes
//! through an owned [`Value`] tree; `vendor/serde_json` renders and
//! parses that tree as JSON. The derive macros live in
//! `vendor/serde_derive` and target exactly these traits.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Map),
}

/// An insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    #[must_use]
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key, replacing any previous value for it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The sole entry, if the map has exactly one (externally tagged enums).
    #[must_use]
    pub fn single(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

impl Value {
    #[must_use]
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// serde_json-compatible accessor name.
    #[must_use]
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned deserialization (blanket over `Deserialize` at every lifetime).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(concat!("expected unsigned integer (", stringify!($t), ")"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl<'de> Deserialize<'de> for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::new("expected unsigned integer (usize)"))?;
        usize::try_from(n).map_err(|_| DeError::new("integer out of range for usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::new(concat!("expected integer (", stringify!($t), ")"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl<'de> Deserialize<'de> for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_i64()
            .ok_or_else(|| DeError::new("expected integer (isize)"))?;
        isize::try_from(n).map_err(|_| DeError::new("integer out of range for isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new("expected number (f64)"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::new("expected number (f32)"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?;
        s.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?;
        if s.len() != N {
            return Err(DeError::new("wrong array length"));
        }
        let items: Result<Vec<T>, DeError> = s.iter().map(T::from_value).collect();
        items.map(|v| v.try_into().expect("length checked"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::new("expected sequence (tuple)"))?;
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                if s.len() != ARITY {
                    return Err(DeError::new("wrong tuple arity"));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Map(m)
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::new("expected map"))?;
        m.iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Map(m)
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::new("expected map"))?;
        m.iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}
impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| DeError::new("expected path string"))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), Value::U64(self.as_secs()));
        m.insert(
            "nanos".to_string(),
            Value::U64(u64::from(self.subsec_nanos())),
        );
        Value::Map(m)
    }
}
impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("expected duration map"))?;
        let secs = m
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::new("missing `secs`"))?;
        let nanos = m
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::new("missing `nanos`"))?;
        Ok(std::time::Duration::new(
            secs,
            u32::try_from(nanos).map_err(|_| DeError::new("`nanos` out of range"))?,
        ))
    }
}
