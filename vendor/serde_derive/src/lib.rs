//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io dependency is unavailable in this build environment
//! (no network), so this crate provides `#[derive(Serialize, Deserialize)]`
//! for the vendored value-tree `serde` in `vendor/serde`. It supports the
//! shapes this workspace actually uses:
//!
//! * named-field structs (with `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes),
//! * tuple structs (newtype structs serialise transparently),
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde).
//!
//! Generics are intentionally unsupported — no serialisable type in the
//! workspace is generic — and hitting an unsupported shape is a compile
//! error rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

/// How a missing field deserialises.
#[derive(Clone)]
enum FieldDefault {
    /// Hard error (no `#[serde(default)]` and not an `Option`).
    Required,
    /// `Option<T>` field without an explicit default — `None`, matching
    /// real serde's missing-field behaviour for options.
    OptionNone,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

#[derive(Clone)]
struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    match parse_and_generate(input, dir) {
        Ok(out) => out
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive stub emitted bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

fn parse_and_generate(input: TokenStream, dir: Direction) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let shape = parse_struct_shape(&tokens, &mut pos)?;
            Ok(generate_struct(&name, &shape, dir))
        }
        "enum" => {
            let body = expect_brace_group(&tokens, &mut pos)?;
            let variants = parse_variants(&body)?;
            Ok(generate_enum(&name, &variants, dir))
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers
// ---------------------------------------------------------------------------

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
            *pos += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn expect_brace_group(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            *pos += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("expected `{{ ... }}`, found {other:?}")),
    }
}

fn parse_struct_shape(tokens: &[TokenTree], pos: &mut usize) -> Result<Shape, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::Named(parse_named_fields(&body)?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::Tuple(count_tuple_fields(&body)))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Parses `#[serde(...)]`-decorated named fields, skipping types entirely
/// (the generated code lets inference pick the right trait impl).
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = parse_field_attributes(tokens, &mut pos)?;
        skip_visibility(tokens, &mut pos);
        let name = expect_ident(tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Like real serde, `Option<T>` fields are detected syntactically
        // and fall back to `None` when the key is missing.
        let default = match default {
            FieldDefault::Required if type_is_option(tokens, pos) => FieldDefault::OptionNone,
            other => other,
        };
        skip_until_top_level_comma(tokens, &mut pos);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Consumes leading attributes on a field/variant; returns the field's
/// default policy from any `#[serde(...)]` attribute among them.
fn parse_field_attributes(tokens: &[TokenTree], pos: &mut usize) -> Result<FieldDefault, String> {
    let mut default = FieldDefault::Required;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            return Err("malformed attribute".to_string());
        };
        *pos += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let Some(TokenTree::Ident(attr_name)) = inner.first() else {
            continue;
        };
        if attr_name.to_string() != "serde" {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        let mut k = 0;
        while k < args.len() {
            match &args[k] {
                TokenTree::Ident(i) if i.to_string() == "default" => {
                    if matches!(args.get(k + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        match args.get(k + 2) {
                            Some(TokenTree::Literal(l)) => {
                                let raw = l.to_string();
                                let path = raw.trim_matches('"').to_string();
                                default = FieldDefault::Path(path);
                                k += 3;
                            }
                            other => {
                                return Err(format!(
                                    "expected string literal after `default =`, found {other:?}"
                                ))
                            }
                        }
                    } else {
                        default = FieldDefault::Std;
                        k += 1;
                    }
                }
                TokenTree::Punct(_) => k += 1,
                other => {
                    return Err(format!(
                        "unsupported `#[serde(...)]` argument {other:?}; the vendored \
                         serde_derive only understands `default`"
                    ))
                }
            }
        }
    }
    Ok(default)
}

/// Whether the type starting at `pos` is (syntactically) an `Option` —
/// the last path segment before `<` or the end of the field is `Option`.
fn type_is_option(tokens: &[TokenTree], pos: usize) -> bool {
    let mut last_segment = None;
    for tok in &tokens[pos..] {
        match tok {
            TokenTree::Ident(i) => last_segment = Some(i.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => {}
            _ => break,
        }
    }
    last_segment.as_deref() == Some("Option")
}

fn skip_until_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        // Each field: attrs, vis, then a type up to the next top-level comma.
        let _ = parse_field_attributes(tokens, &mut pos);
        skip_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_until_top_level_comma(tokens, &mut pos);
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _ = parse_field_attributes(tokens, &mut pos)?;
        let name = expect_ident(tokens, &mut pos)?;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Shape::Named(parse_named_fields(&body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Shape::Tuple(count_tuple_fields(&body))
            }
            _ => Shape::Unit,
        };
        // Skip any explicit discriminant (`= expr`) up to the separating comma.
        skip_until_top_level_comma(tokens, &mut pos);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed)
// ---------------------------------------------------------------------------

fn missing_field_expr(ty: &str, field: &Field) -> String {
    match &field.default {
        FieldDefault::Required => format!(
            "return ::core::result::Result::Err(::serde::DeError::new(\
             \"missing field `{}` in `{}`\"))",
            field.name, ty
        ),
        FieldDefault::OptionNone => "::core::option::Option::None".to_string(),
        FieldDefault::Std => "::core::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    }
}

fn generate_struct(name: &str, shape: &Shape, dir: Direction) -> String {
    match dir {
        Direction::Serialize => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => {
                    let mut s = String::from("let mut m = ::serde::Map::new();\n");
                    for f in fields {
                        s.push_str(&format!(
                            "m.insert({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                            n = f.name
                        ));
                    }
                    s.push_str("::serde::Value::Map(m)");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Direction::Deserialize => {
            let body = match shape {
                Shape::Unit => format!("::core::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect();
                    format!(
                        "let s = v.as_seq().ok_or_else(|| ::serde::DeError::new(\
                         \"expected sequence for `{name}`\"))?;\n\
                         if s.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::DeError::new(\"wrong tuple arity for `{name}`\")); }}\n\
                         ::core::result::Result::Ok({name}({elems}))",
                        elems = elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let mut s = format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::DeError::new(\
                         \"expected map for `{name}`\"))?;\n\
                         ::core::result::Result::Ok({name} {{\n"
                    );
                    for f in fields {
                        s.push_str(&format!(
                            "{n}: match m.get({n:?}) {{\n\
                             ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             ::core::option::Option::None => {{ {miss} }},\n\
                             }},\n",
                            n = f.name,
                            miss = missing_field_expr(name, f)
                        ));
                    }
                    s.push_str("})");
                    s
                }
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
                 }}\n\
                 }}"
            )
        }
    }
}

fn generate_enum(name: &str, variants: &[Variant], dir: Direction) -> String {
    match dir {
        Direction::Serialize => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert({vn:?}.to_string(), ::serde::Serialize::to_value(x0));\n\
                         ::serde::Value::Map(m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::Value::Seq(::std::vec![{elems}]));\n\
                             ::serde::Value::Map(m)\n}}\n",
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert({n:?}.to_string(), ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::Value::Map(fm));\n\
                             ::serde::Value::Map(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n\
                 }}"
            )
        }
        Direction::Deserialize => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    unit_arms.push_str(&format!(
                        "{vn:?} => return ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let s = inner.as_seq().ok_or_else(|| ::serde::DeError::new(\
                             \"expected sequence for `{name}::{vn}`\"))?;\n\
                             if s.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::DeError::new(\"wrong arity for `{name}::{vn}`\")); }}\n\
                             ::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inner_src = format!(
                            "let fm = inner.as_map().ok_or_else(|| ::serde::DeError::new(\
                             \"expected map for `{name}::{vn}`\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner_src.push_str(&format!(
                                "{n}: match fm.get({n:?}) {{\n\
                                 ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                 ::core::option::Option::None => {{ {miss} }},\n\
                                 }},\n",
                                n = f.name,
                                miss = missing_field_expr(&format!("{name}::{vn}"), f)
                            ));
                        }
                        inner_src.push_str("})");
                        tagged_arms.push_str(&format!("{vn:?} => {{ {inner_src} }}\n"));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::core::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return ::core::result::Result::Err(::serde::DeError::new(\
                 \"unknown variant of `{name}`\")),\n}}\n\
                 }}\n\
                 let m = v.as_map().ok_or_else(|| ::serde::DeError::new(\
                 \"expected string or map for `{name}`\"))?;\n\
                 let (tag, inner) = m.single().ok_or_else(|| ::serde::DeError::new(\
                 \"expected single-key map for `{name}`\"))?;\n\
                 match tag {{\n{tagged_arms}\
                 _ => ::core::result::Result::Err(::serde::DeError::new(\
                 \"unknown variant of `{name}`\")),\n}}\n\
                 }}\n\
                 }}"
            )
        }
    }
}
