//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Slower than the real crate under contention, but
//! API-compatible for the subset this workspace uses.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: lock() still succeeds.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
