//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!`/
//! `criterion_main!` macros — backed by a simple warm-up + timed-batch
//! loop instead of criterion's statistical machinery. Results print as
//! `group/id: median ns/iter`; there is no HTML report, outlier
//! analysis, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (timing knobs shared by every group).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; this stub has no CLI.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result_ns: None,
            iterations: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.0);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs the measured closure and records a median ns/iter.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result_ns: Option<f64>,
    iterations: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also sizes the per-sample batch so one sample costs
        // roughly measurement_time / sample_size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);

        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        self.result_ns = Some(median * 1e9);
        self.iterations = total_iters;
    }

    fn report(&self, group: &str, id: &str) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match self.result_ns {
            Some(ns) => println!("{label:<48} {ns:>14.1} ns/iter ({} iters)", self.iterations),
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
