//! Cross-crate integration: traces feed applications, applications drive
//! the simulated memory system, DDT choices move the metrics.

use ddtr::apps::{AppKind, AppParams};
use ddtr::ddt::DdtKind;
use ddtr::mem::{MemoryConfig, MemorySystem};
use ddtr::trace::{NetworkParams, NetworkPreset, TraceReader, TraceWriter};

fn quick_params() -> AppParams {
    AppParams {
        route_table_size: 48,
        firewall_rules: 16,
        table_cap: 24,
        ..AppParams::default()
    }
}

/// Every (application, DDT kind) pairing — extensions included — survives
/// a real trace without violating container or heap invariants.
#[test]
fn every_app_runs_with_every_uniform_combo() {
    let trace = NetworkPreset::DartmouthSudikoff.generate(60);
    for app in AppKind::EXTENDED_ALL {
        for kind in DdtKind::EXTENDED {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut instance = app.instantiate([kind, kind], &quick_params(), &mut mem);
            for pkt in &trace {
                instance.process(pkt, &mut mem);
            }
            assert_eq!(instance.packets_processed(), 60, "{app}/{kind}");
            let report = mem.report();
            assert!(report.accesses > 0, "{app}/{kind}");
            assert!(
                report.peak_footprint_bytes >= mem.alloc_stats().live_gross_bytes,
                "{app}/{kind}: peak below live"
            );
        }
    }
}

/// Different networks produce different metrics for the same app+combo —
/// the premise of the network-level exploration.
#[test]
fn network_configuration_matters() {
    let combo = [DdtKind::Sll, DdtKind::Sll];
    let mut accesses = Vec::new();
    for preset in [
        NetworkPreset::NlanrMra,
        NetworkPreset::DartmouthBerry,
        NetworkPreset::DartmouthWhittemore,
    ] {
        let trace = preset.generate(120);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = AppKind::Url.instantiate(combo, &quick_params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        accesses.push(mem.report().accesses);
    }
    accesses.dedup();
    assert_eq!(accesses.len(), 3, "all three networks must differ");
}

/// The DDT choice moves every one of the four metrics for at least one
/// pair of combinations.
#[test]
fn ddt_choice_moves_all_four_metrics() {
    let trace = NetworkPreset::DartmouthBerry.generate(120);
    let run = |combo: [DdtKind; 2]| {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = AppKind::Drr.instantiate(combo, &quick_params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        mem.report()
    };
    let a = run([DdtKind::Array, DdtKind::Array]);
    let b = run([DdtKind::Dll, DdtKind::Dll]);
    assert_ne!(a.accesses, b.accesses);
    assert_ne!(a.cycles, b.cycles);
    assert!((a.energy_nj - b.energy_nj).abs() > f64::EPSILON);
    assert_ne!(a.peak_footprint_bytes, b.peak_footprint_bytes);
}

/// A trace written to the text format and parsed back drives an identical
/// simulation (the file-based tool path equals the in-memory path).
#[test]
fn serialised_trace_reproduces_simulation() {
    let original = NetworkPreset::NlanrAix.generate(100);
    let text = TraceWriter::to_string(&original);
    let parsed = TraceReader::parse_str(&text).expect("parses");
    let run = |trace: &ddtr::trace::Trace| {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = AppKind::Ipchains.instantiate(
            [DdtKind::Array, DdtKind::SllRov],
            &quick_params(),
            &mut mem,
        );
        for pkt in trace {
            app.process(pkt, &mut mem);
        }
        (mem.report().accesses, mem.report().cycles)
    };
    assert_eq!(run(&original), run(&parsed));
}

/// Extracted network parameters order networks consistently with their
/// generating specifications (the step-2 extraction is trustworthy).
#[test]
fn parameter_extraction_orders_networks() {
    let extract = |p: NetworkPreset| NetworkParams::extract(&p.generate(1500));
    let mra = extract(NetworkPreset::NlanrMra);
    let wht = extract(NetworkPreset::DartmouthWhittemore);
    assert!(mra.nodes_observed > wht.nodes_observed);
    assert!(mra.throughput_pps > wht.throughput_pps);
    assert!(mra.flows_observed > wht.flows_observed);
}

/// Simulated-heap hygiene across a full app run: live bytes equal the sum
/// of the containers' reported footprints (no leaks, no double counting).
#[test]
fn heap_attribution_is_exact() {
    let trace = NetworkPreset::DartmouthBerry.generate(150);
    for app in AppKind::EXTENDED_ALL {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut instance = app.instantiate(
            [DdtKind::SllChunk, DdtKind::ArrayPtr],
            &quick_params(),
            &mut mem,
        );
        for pkt in &trace {
            instance.process(pkt, &mut mem);
        }
        // All live heap bytes belong to some container the app owns; the
        // allocator cannot have lost track of anything.
        assert!(
            mem.alloc_stats().live_gross_bytes > 0,
            "{app}: containers must hold live heap"
        );
        assert_eq!(
            mem.alloc_stats().allocs - mem.alloc_stats().frees,
            u64::try_from(mem.allocator().live_blocks()).expect("fits"),
            "{app}: alloc/free accounting"
        );
    }
}
