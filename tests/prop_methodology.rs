//! Property-based integration tests over the methodology's invariants.

use ddtr::apps::{AppKind, AppParams};
use ddtr::core::{explore_network_level, explore_pareto_level, MethodologyConfig};
use ddtr::ddt::DdtKind;
use ddtr::trace::NetworkPreset;
use proptest::prelude::*;

fn arb_combo() -> impl Strategy<Value = [DdtKind; 2]> {
    // Sample from the full extended library so the hash/tree extensions
    // flow through the whole pipeline too.
    (0usize..12, 0usize..12).prop_map(|(a, b)| [DdtKind::EXTENDED[a], DdtKind::EXTENDED[b]])
}

fn tiny_cfg(app: AppKind) -> MethodologyConfig {
    let mut cfg = MethodologyConfig::quick(app);
    cfg.packets_per_sim = 40;
    cfg.networks = vec![NetworkPreset::DartmouthBerry];
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Steps 2+3 never crash and always yield a non-empty, mutually
    /// non-dominated front, for arbitrary survivor sets.
    #[test]
    fn steps_2_3_hold_for_arbitrary_survivors(
        combos in prop::collection::vec(arb_combo(), 1..8),
        app_idx in 0usize..5,
    ) {
        let app = AppKind::EXTENDED_ALL[app_idx];
        let cfg = tiny_cfg(app);
        let step2 = explore_network_level(&cfg, &combos).expect("step 2 runs");
        prop_assert_eq!(step2.simulations(), combos.len() * cfg.configurations());
        let pareto = explore_pareto_level(&step2).expect("step 3 runs");
        prop_assert!(!pareto.global_front.is_empty());
        for a in &pareto.global_front {
            for b in &pareto.global_front {
                if a.combo != b.combo {
                    prop_assert!(!a.report.dominates(&b.report));
                }
            }
        }
        // The front never exceeds the number of distinct combinations.
        let mut distinct: Vec<String> = step2.logs.iter().map(|l| l.combo.clone()).collect();
        distinct.sort();
        distinct.dedup();
        prop_assert!(pareto.global_front.len() <= distinct.len());
    }

    /// Simulations scale monotonically with trace length: more packets
    /// never reduce accesses or cycles.
    #[test]
    fn metrics_grow_with_trace_length(
        combo in arb_combo(),
        app_idx in 0usize..5,
    ) {
        use ddtr::mem::{MemoryConfig, MemorySystem};
        let app = AppKind::EXTENDED_ALL[app_idx];
        let params = AppParams {
            route_table_size: 32,
            firewall_rules: 8,
            table_cap: 16,
            ..AppParams::default()
        };
        let trace = NetworkPreset::DartmouthBerry.generate(120);
        let run = |n: usize| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut instance = app.instantiate(combo, &params, &mut mem);
            for pkt in trace.packets.iter().take(n) {
                instance.process(pkt, &mut mem);
            }
            mem.report()
        };
        let short = run(40);
        let long = run(120);
        prop_assert!(long.accesses >= short.accesses);
        prop_assert!(long.cycles >= short.cycles);
        prop_assert!(long.energy_nj >= short.energy_nj);
        prop_assert!(long.peak_footprint_bytes >= short.peak_footprint_bytes);
    }

    /// The trade-off ranges always bound the global front.
    #[test]
    fn tradeoffs_bound_the_front(
        combos in prop::collection::vec(arb_combo(), 2..6),
    ) {
        let cfg = tiny_cfg(AppKind::Drr);
        let step2 = explore_network_level(&cfg, &combos).expect("step 2 runs");
        let pareto = explore_pareto_level(&step2).expect("step 3 runs");
        // Per-config front points live inside the pooled trade-off ranges.
        for cf in &pareto.per_config {
            for p in &cf.front {
                let o = p.report.as_array();
                for (d, range) in pareto.tradeoffs.iter().enumerate() {
                    prop_assert!(o[d] >= range.min - 1e-9);
                    prop_assert!(o[d] <= range.max + 1e-9);
                }
            }
        }
    }
}
