//! Soak tests: long traces (an order of magnitude beyond the paper-sized
//! sweeps) through every application, checking the invariants that only
//! show up under sustained load — heap hygiene over thousands of
//! alloc/free cycles, cache sanity, monotone counters and bit-exact
//! determinism.

use ddtr::apps::{AppKind, AppParams};
use ddtr::ddt::DdtKind;
use ddtr::mem::{MemoryConfig, MemorySystem};
use ddtr::trace::NetworkPreset;

const SOAK_PACKETS: usize = 5_000;

fn params() -> AppParams {
    AppParams::default()
}

#[test]
fn every_app_survives_a_long_trace_with_exact_heap_accounting() {
    let trace = NetworkPreset::DartmouthBerry.generate(SOAK_PACKETS);
    for app in AppKind::EXTENDED_ALL {
        // A churn-heavy mixed combo: linked bindings, chunked secondary.
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut instance =
            app.instantiate([DdtKind::Dll, DdtKind::SllChunkRov], &params(), &mut mem);
        for pkt in &trace {
            instance.process(pkt, &mut mem);
        }
        assert_eq!(instance.packets_processed(), SOAK_PACKETS as u64, "{app}");
        let stats = mem.alloc_stats();
        // Block-level accounting must balance exactly after thousands of
        // allocations and frees.
        assert_eq!(
            stats.allocs - stats.frees,
            u64::try_from(mem.allocator().live_blocks()).expect("fits"),
            "{app}: alloc/free imbalance after soak"
        );
        assert!(stats.failed_allocs == 0, "{app}: heap exhausted under soak");
        // Peak is a true high-water mark.
        assert!(stats.peak_gross_bytes >= stats.live_gross_bytes, "{app}");
        // Cache counters stay internally consistent.
        let cache = mem.cache_stats();
        assert!(
            cache.writebacks <= cache.read_misses + cache.write_misses,
            "{app}"
        );
        assert!(cache.miss_ratio() <= 1.0, "{app}");
    }
}

#[test]
fn soak_runs_are_bit_exact_across_repetitions() {
    let trace = NetworkPreset::NlanrAix.generate(SOAK_PACKETS);
    let run = || {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app =
            AppKind::Ipchains.instantiate([DdtKind::Hash, DdtKind::SllChunk], &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        mem.report()
    };
    let a = run();
    let b = run();
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.peak_footprint_bytes, b.peak_footprint_bytes);
    assert!((a.energy_nj - b.energy_nj).abs() < 1e-9);
}

#[test]
fn footprint_stabilises_for_capped_containers() {
    // The session/conn/binding tables are capacity-capped, so after the
    // warm-up phase the live heap must stop growing even as packets keep
    // flowing — the steady-state property the footprint metric reports.
    let trace = NetworkPreset::DartmouthBerry.generate(SOAK_PACKETS);
    for app in [AppKind::Url, AppKind::Ipchains, AppKind::Nat] {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut instance = app.instantiate([DdtKind::Sll, DdtKind::Sll], &params(), &mut mem);
        let mut live_at_half = 0;
        for (i, pkt) in trace.iter().enumerate() {
            instance.process(pkt, &mut mem);
            if i == SOAK_PACKETS / 2 {
                live_at_half = mem.alloc_stats().live_gross_bytes;
            }
        }
        let live_at_end = mem.alloc_stats().live_gross_bytes;
        assert!(
            live_at_end <= live_at_half * 2,
            "{app}: heap kept growing after warm-up ({live_at_half} -> {live_at_end})"
        );
    }
}

#[test]
fn bursty_soak_exercises_the_same_invariants() {
    use ddtr::trace::{BurstProfile, TraceGenerator, TraceSpec};
    let mut spec = TraceSpec::builder("soak-burst").seed(0x50AB).build();
    spec.burstiness = Some(BurstProfile::default());
    let trace = TraceGenerator::new(spec).generate(SOAK_PACKETS);
    let mut mem = MemorySystem::new(MemoryConfig::with_spm());
    let mut app =
        AppKind::Drr.instantiate([DdtKind::SllRov, DdtKind::DllChunkRov], &params(), &mut mem);
    for pkt in &trace {
        app.process(pkt, &mut mem);
    }
    assert_eq!(app.packets_processed(), SOAK_PACKETS as u64);
    let stats = mem.alloc_stats();
    assert_eq!(
        stats.allocs - stats.frees,
        u64::try_from(mem.allocator().live_blocks()).expect("fits"),
    );
    // Descriptors went to the scratchpad.
    assert!(mem.spm_used() > 0, "descriptors should sit in the SPM");
}
