//! End-to-end integration tests: the full three-step methodology across
//! all four applications, spanning every crate of the workspace.

use ddtr::apps::AppKind;
use ddtr::core::{
    headline_comparison, table1_markdown, table2_markdown, tradeoff_percentages, Methodology,
    MethodologyConfig,
};
use ddtr::ddt::DdtKind;

/// The pipeline completes and produces sane artefacts for every app.
#[test]
fn pipeline_runs_for_every_application() {
    for app in AppKind::ALL {
        let cfg = MethodologyConfig::quick(app);
        let outcome = Methodology::new(cfg).run().expect("pipeline runs");
        assert_eq!(outcome.step1.measurements.len(), 100, "{app}");
        assert!(
            outcome.step1.pruned_fraction() >= 0.5,
            "{app}: pruned only {:.0}%",
            outcome.step1.pruned_fraction() * 100.0
        );
        assert!(
            !outcome.pareto.global_front.is_empty(),
            "{app}: empty Pareto set"
        );
        assert!(
            outcome.pareto.global_front.len() <= 20,
            "{app}: Pareto set too large ({})",
            outcome.pareto.global_front.len()
        );
        assert!(outcome.profile.matches_declared(), "{app}");
        assert_eq!(
            outcome.counts.reduced,
            100 + outcome.step1.survivors.len() * outcome.config.configurations(),
            "{app}: accounting"
        );
    }
}

/// The whole pipeline is deterministic end to end.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Url))
            .run()
            .expect("pipeline runs");
        (
            outcome.step1.survivors.clone(),
            outcome
                .pareto
                .global_front
                .iter()
                .map(|p| (p.combo.clone(), p.report.accesses))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// Every global Pareto point is mutually non-dominated (step-3 contract).
#[test]
fn global_front_is_mutually_nondominated() {
    let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Drr))
        .run()
        .expect("pipeline runs");
    let front = &outcome.pareto.global_front;
    for a in front {
        for b in front {
            if a.combo != b.combo {
                assert!(
                    !a.report.dominates(&b.report),
                    "{} dominates {} inside the front",
                    a.combo,
                    b.combo
                );
            }
        }
    }
}

/// The headline comparison always favours (or ties) the refined points —
/// the original SLL implementation is in the explored space.
#[test]
fn refined_points_beat_or_match_baseline() {
    for app in AppKind::ALL {
        let cfg = MethodologyConfig::quick(app);
        let outcome = Methodology::new(cfg.clone()).run().expect("pipeline runs");
        let h = headline_comparison(&cfg, &outcome).expect("headline computes");
        assert!(h.energy_saving() >= -0.01, "{app}: {}", h.energy_saving());
        assert!(
            h.time_improvement() >= -0.01,
            "{app}: {}",
            h.time_improvement()
        );
    }
}

/// Outcome serialises to JSON and back with the Pareto set intact.
#[test]
fn outcome_round_trips_through_json() {
    let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Ipchains))
        .run()
        .expect("pipeline runs");
    let json = serde_json::to_string(&outcome).expect("serialises");
    let back: ddtr::core::MethodologyOutcome = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(
        back.pareto.global_front.len(),
        outcome.pareto.global_front.len()
    );
    assert_eq!(back.counts, outcome.counts);
}

/// Report tables render for a mixed set of outcomes.
#[test]
fn report_tables_render() {
    let a = Methodology::new(MethodologyConfig::quick(AppKind::Url))
        .run()
        .expect("pipeline runs");
    let b = Methodology::new(MethodologyConfig::quick(AppKind::Drr))
        .run()
        .expect("pipeline runs");
    let t1 = table1_markdown(&[&a, &b]);
    assert!(t1.contains("URL") && t1.contains("DRR"));
    let t2 = table2_markdown(&[&a, &b]);
    assert!(t2.lines().count() >= 4);
    for pct in tradeoff_percentages(&a) {
        assert!(pct <= 100);
    }
}

/// The survivor set always contains the per-metric winners of step 1.
#[test]
fn survivors_contain_every_metric_winner() {
    let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Route))
        .run()
        .expect("pipeline runs");
    for dim in 0..4 {
        let winner = outcome
            .step1
            .measurements
            .iter()
            .min_by(|a, b| a.objectives()[dim].total_cmp(&b.objectives()[dim]))
            .expect("measurements exist");
        assert!(
            outcome.step1.survivors.contains(&winner.combo),
            "metric {dim} winner {} was pruned",
            winner.combo
        );
    }
}

/// All ten DDT kinds appear somewhere in the explored combinations.
#[test]
fn exploration_covers_all_ten_ddts() {
    let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Url))
        .run()
        .expect("pipeline runs");
    for kind in DdtKind::ALL {
        let name = kind.to_string();
        assert!(
            outcome
                .step1
                .measurements
                .iter()
                .any(|m| m.combo.contains(&name)),
            "{name} never simulated"
        );
    }
}
