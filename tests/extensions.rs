//! Integration tests of the extension features: the 12-kind extended DDT
//! library inside the full pipeline, the NSGA-II heuristic explorer's
//! consistency with exhaustive simulation, and the scratchpad platform.

use ddtr::apps::AppKind;
use ddtr::core::{
    all_combos, combo_label, explore_heuristic, GaConfig, Methodology, MethodologyConfig, Simulator,
};
use ddtr::ddt::DdtKind;
use ddtr::mem::MemoryConfig;
use ddtr::pareto::dominates;
use ddtr::trace::NetworkPreset;

#[test]
fn pipeline_runs_on_the_extended_candidate_set() {
    let mut cfg = MethodologyConfig::quick(AppKind::Url);
    cfg.candidates = DdtKind::EXTENDED.to_vec();
    let outcome = Methodology::new(cfg).run().expect("pipeline runs");
    assert_eq!(
        outcome.step1.measurements.len(),
        144,
        "12^2 combinations at the application level"
    );
    assert!(
        outcome.step1.pruned_fraction() >= 0.5,
        "pruned only {:.0}%",
        outcome.step1.pruned_fraction() * 100.0
    );
    assert!(!outcome.pareto.global_front.is_empty());
    // Every extended-space label parses back (including HSH/AVL members).
    for label in &outcome.step1.survivors {
        ddtr::core::parse_combo(label).expect("survivor label parses");
    }
}

#[test]
fn extended_front_is_at_least_as_good_as_the_paper_front() {
    // Adding candidates can only improve (or preserve) the attainable
    // front: every paper-library front point must not dominate the whole
    // extended front.
    let run = |candidates: Vec<DdtKind>| {
        let mut cfg = MethodologyConfig::quick(AppKind::Ipchains);
        cfg.candidates = candidates;
        Methodology::new(cfg).run().expect("pipeline runs")
    };
    let paper = run(DdtKind::ALL.to_vec());
    let extended = run(DdtKind::EXTENDED.to_vec());
    for ext_point in &extended.pareto.global_front {
        let ext = ext_point.report.as_array();
        // No paper point may strictly dominate an extended front point:
        // the extended exploration saw every paper combination too.
        for paper_point in &paper.pareto.global_front {
            assert!(
                !dominates(&paper_point.report.as_array(), &ext),
                "{} dominates {} — extended front lost a point it had seen",
                paper_point.combo,
                ext_point.combo
            );
        }
    }
}

#[test]
fn heuristic_results_agree_with_exhaustive_simulation() {
    // Every combination the GA evaluated must report exactly the metrics
    // an exhaustive sweep measures for that combination (memoised
    // simulation is still the same simulation).
    let cfg = GaConfig::quick(AppKind::Drr);
    let outcome = explore_heuristic(&cfg).expect("ga runs");
    let sim = Simulator::new(cfg.mem);
    let trace = cfg.network.generate(cfg.packets_per_sim);
    for log in &outcome.front {
        let combo = ddtr::core::parse_combo(&log.combo).expect("front label parses");
        let reference = sim.run(cfg.app, combo, &cfg.params, &trace);
        assert_eq!(
            log.report.accesses, reference.report.accesses,
            "{}",
            log.combo
        );
        assert_eq!(log.report.cycles, reference.report.cycles, "{}", log.combo);
    }
}

#[test]
fn heuristic_front_is_non_dominated_within_the_true_space() {
    // GA front points may miss true-front members but must never be
    // *dominated by another combination the GA itself evaluated*; against
    // the full space, any dominating combination must be one the GA did
    // not visit. Verify the stronger subset property: every GA front point
    // that coincides with a true-front combo has identical metrics.
    let cfg = GaConfig::quick(AppKind::Url);
    let outcome = explore_heuristic(&cfg).expect("ga runs");
    let sim = Simulator::new(cfg.mem);
    let trace = cfg.network.generate(cfg.packets_per_sim);
    let full: Vec<(String, [f64; 4])> = all_combos()
        .into_iter()
        .map(|c| {
            let log = sim.run(cfg.app, c, &cfg.params, &trace);
            (combo_label(c), log.objectives())
        })
        .collect();
    for log in &outcome.front {
        let ga_point = log.objectives();
        let dominators = full.iter().filter(|(_, p)| dominates(p, &ga_point)).count();
        // The dominating combos (if any) were necessarily unvisited; the
        // GA found a locally optimal archive.
        let visited_dominators = outcome
            .front
            .iter()
            .filter(|other| dominates(&other.objectives(), &ga_point))
            .count();
        assert_eq!(
            visited_dominators, 0,
            "{} dominated within archive",
            log.combo
        );
        assert!(
            dominators <= full.len() / 4,
            "{} dominated by {dominators} combos — archive far from the front",
            log.combo
        );
    }
}

#[test]
fn nat_extension_app_runs_the_full_pipeline() {
    let cfg = MethodologyConfig::quick(AppKind::Nat);
    let outcome = Methodology::new(cfg).run().expect("pipeline runs");
    assert_eq!(outcome.step1.measurements.len(), 100);
    assert!(
        outcome.step1.pruned_fraction() >= 0.5,
        "pruned only {:.0}%",
        outcome.step1.pruned_fraction() * 100.0
    );
    assert!(!outcome.pareto.global_front.is_empty());
    assert!(outcome.pareto.global_front.len() <= 20);
}

#[test]
fn nat_baseline_is_dominated_like_the_paper_apps() {
    use ddtr::core::headline_comparison;
    let cfg = MethodologyConfig::quick(AppKind::Nat);
    let outcome = Methodology::new(cfg.clone()).run().expect("pipeline runs");
    let headline = headline_comparison(&cfg, &outcome).expect("headline");
    assert!(
        headline.energy_saving() > 0.0,
        "the SLL baseline must be beatable on energy"
    );
    assert!(
        headline.time_improvement() > 0.0,
        "the SLL baseline must be beatable on time"
    );
}

#[test]
fn report_tables_render_the_nat_row() {
    use ddtr::core::{table1_markdown, table2_markdown};
    let cfg = MethodologyConfig::quick(AppKind::Nat);
    let outcome = Methodology::new(cfg).run().expect("pipeline runs");
    let t1 = table1_markdown(&[&outcome]);
    let t2 = table2_markdown(&[&outcome]);
    assert!(t1.contains("NAT"), "table 1 must carry the NAT row:\n{t1}");
    assert!(t2.contains("NAT"), "table 2 must carry the NAT row:\n{t2}");
}

#[test]
fn nat_profile_finds_its_two_dominant_containers() {
    use ddtr::core::profile_application;
    let cfg = MethodologyConfig::quick(AppKind::Nat);
    let report = profile_application(&cfg).expect("profile runs");
    assert_eq!(report.dominant.len(), 2);
    assert!(report.dominant.contains(&"binding_table".to_string()));
    assert!(report.dominant_share > 0.5);
}

#[test]
fn scratchpad_platform_runs_the_full_pipeline() {
    let mut cfg = MethodologyConfig::quick(AppKind::Drr);
    cfg.mem = MemoryConfig::with_spm();
    let outcome = Methodology::new(cfg).run().expect("pipeline runs");
    assert!(!outcome.pareto.global_front.is_empty());
}

#[test]
fn scratchpad_lowers_costs_without_reordering_the_reference_combo() {
    // Same simulation on both platforms: the SPM one must be strictly
    // cheaper in cycles (descriptor accesses dominate container metadata
    // traffic) and report fewer or equal heap footprint bytes.
    let trace = NetworkPreset::DartmouthBerry.generate(200);
    let params = ddtr::apps::AppParams::default();
    let combo = [DdtKind::Sll, DdtKind::Sll];
    let plain =
        Simulator::new(MemoryConfig::embedded_default()).run(AppKind::Url, combo, &params, &trace);
    let spm = Simulator::new(MemoryConfig::with_spm()).run(AppKind::Url, combo, &params, &trace);
    assert!(
        spm.report.cycles < plain.report.cycles,
        "spm {} vs plain {}",
        spm.report.cycles,
        plain.report.cycles
    );
    assert!(spm.report.peak_footprint_bytes <= plain.report.peak_footprint_bytes);
}
