//! Engine determinism regression tests: the exploration outcome is a pure
//! function of the configuration and seed, never of the worker count or of
//! whether results came from the cache.

use ddtr::apps::AppKind;
use ddtr::core::{
    explore_heuristic_with, GaConfig, Methodology, MethodologyConfig, MethodologyOutcome,
};
use ddtr::engine::{EngineConfig, ExploreEngine};

/// The byte-exact identity of a Pareto front: the serialised objective
/// vectors of every global-front point, in order.
fn front_bytes(outcome: &MethodologyOutcome) -> String {
    let objectives: Vec<[f64; 4]> = outcome
        .pareto
        .global_front
        .iter()
        .map(|p| p.report.as_array())
        .collect();
    serde_json::to_string(&objectives).expect("objective vectors serialise")
}

#[test]
fn explore_drr_quick_is_identical_at_1_2_and_8_threads() {
    let cfg = MethodologyConfig::quick(AppKind::Drr);
    let reference = Methodology::new(cfg.clone())
        .run_with(&mut ExploreEngine::with_jobs(1))
        .expect("1-thread explore");
    for jobs in [2usize, 8] {
        let outcome = Methodology::new(cfg.clone())
            .run_with(&mut ExploreEngine::with_jobs(jobs))
            .expect("explore");
        assert_eq!(outcome.engine.jobs, jobs);
        assert_eq!(
            front_bytes(&outcome),
            front_bytes(&reference),
            "global front must be byte-identical at {jobs} threads"
        );
        // Not just the front: every step-2 log must agree.
        let logs = |o: &MethodologyOutcome| serde_json::to_string(&o.step2.logs).expect("logs");
        assert_eq!(logs(&outcome), logs(&reference));
    }
}

#[test]
fn streamed_explore_is_identical_at_1_2_and_8_threads_and_to_materialized() {
    let mut cfg = MethodologyConfig::quick(AppKind::Drr);
    cfg.streaming = true;
    let reference = Methodology::new(cfg.clone())
        .run_with(&mut ExploreEngine::with_jobs(1))
        .expect("1-thread streamed explore");
    for jobs in [2usize, 8] {
        let outcome = Methodology::new(cfg.clone())
            .run_with(&mut ExploreEngine::with_jobs(jobs))
            .expect("streamed explore");
        assert_eq!(
            front_bytes(&outcome),
            front_bytes(&reference),
            "streamed front must be byte-identical at {jobs} threads"
        );
        let logs = |o: &MethodologyOutcome| serde_json::to_string(&o.step2.logs).expect("logs");
        assert_eq!(logs(&outcome), logs(&reference));
    }
    // And the streamed pipeline reproduces the materialized pipeline
    // byte-for-byte: streaming changes memory behaviour, never results.
    let mut materialized_cfg = cfg;
    materialized_cfg.streaming = false;
    let materialized = Methodology::new(materialized_cfg)
        .run_with(&mut ExploreEngine::with_jobs(2))
        .expect("materialized explore");
    assert_eq!(front_bytes(&materialized), front_bytes(&reference));
    assert_eq!(
        serde_json::to_string(&materialized.step2.logs).expect("logs"),
        serde_json::to_string(&reference.step2.logs).expect("logs"),
    );
}

#[test]
fn scenario_matrix_is_identical_at_1_2_and_8_threads() {
    use ddtr::core::{explore_scenarios_with, ScenarioConfig};
    use ddtr::trace::{NetworkPreset, Scenario};
    let mut cfg = ScenarioConfig::quick(NetworkPreset::DartmouthBerry);
    cfg.apps = vec![AppKind::Drr];
    cfg.scenarios = vec![Scenario::Bursty, Scenario::PhaseShift];
    cfg.packets_per_sim = 40;
    let reference = explore_scenarios_with(&mut ExploreEngine::with_jobs(1), &cfg)
        .expect("1-thread scenario matrix");
    for jobs in [2usize, 8] {
        let matrix =
            explore_scenarios_with(&mut ExploreEngine::with_jobs(jobs), &cfg).expect("matrix");
        assert_eq!(
            serde_json::to_string(&matrix.cells).expect("ser"),
            serde_json::to_string(&reference.cells).expect("ser"),
            "scenario cells must be byte-identical at {jobs} threads"
        );
    }
}

#[test]
fn warm_disk_cache_replays_the_identical_front() {
    let dir = std::env::temp_dir().join(format!("ddtr-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine_cfg = EngineConfig {
        jobs: 0,
        cache_dir: Some(dir.clone()),
        no_cache: false,
    };
    let cfg = MethodologyConfig::quick(AppKind::Url);
    let cold = Methodology::new(cfg.clone())
        .run_with(&mut ExploreEngine::new(engine_cfg.clone()).expect("cold engine"))
        .expect("cold explore");
    assert!(cold.engine.executed > 0);
    // A brand-new engine over the same directory: everything replays.
    let warm = Methodology::new(cfg)
        .run_with(&mut ExploreEngine::new(engine_cfg).expect("warm engine"))
        .expect("warm explore");
    assert_eq!(warm.engine.executed, 0, "warm run must not simulate");
    assert_eq!(front_bytes(&cold), front_bytes(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ga_front_is_identical_at_any_thread_count() {
    let cfg = GaConfig::quick(AppKind::Drr);
    let reference =
        explore_heuristic_with(&mut ExploreEngine::with_jobs(1), &cfg).expect("1 thread");
    for jobs in [2usize, 8] {
        let outcome =
            explore_heuristic_with(&mut ExploreEngine::with_jobs(jobs), &cfg).expect("ga");
        assert_eq!(outcome.front_labels(), reference.front_labels());
        assert_eq!(outcome.evaluations, reference.evaluations);
        let bytes = |o: &ddtr::core::GaOutcome| {
            serde_json::to_string(&o.front.iter().map(|l| l.objectives()).collect::<Vec<_>>())
                .expect("front serialises")
        };
        assert_eq!(bytes(&outcome), bytes(&reference));
    }
}
