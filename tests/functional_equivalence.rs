//! The central soundness property of the methodology: swapping the DDT
//! implementations behind the instrumentation interface "does not alter
//! the actual functionality of the application" (paper, §3.1).
//!
//! For every application we replay the same trace under several DDT
//! combinations and require the *functional* outputs — routing hits,
//! context switches, firewall verdicts, scheduler transmissions — to be
//! bit-identical. Only the cost metrics may differ.

use ddtr::apps::{AppParams, DrrApp, IpchainsApp, NatApp, NetworkApp, RouteApp, UrlApp};
use ddtr::ddt::DdtKind;
use ddtr::mem::{MemoryConfig, MemorySystem};
use ddtr::trace::NetworkPreset;

/// A representative sample of the combination space, including every
/// structural family (extensions too) and both uniform and mixed pairings.
fn combos() -> Vec<[DdtKind; 2]> {
    vec![
        [DdtKind::Array, DdtKind::Array],
        [DdtKind::ArrayPtr, DdtKind::Sll],
        [DdtKind::Sll, DdtKind::Dll],
        [DdtKind::Dll, DdtKind::ArrayPtr],
        [DdtKind::SllRov, DdtKind::DllRov],
        [DdtKind::SllChunk, DdtKind::DllChunk],
        [DdtKind::SllChunkRov, DdtKind::DllChunkRov],
        [DdtKind::DllChunkRov, DdtKind::Array],
        [DdtKind::Hash, DdtKind::Avl],
        [DdtKind::Avl, DdtKind::SllChunk],
    ]
}

fn params() -> AppParams {
    AppParams {
        route_table_size: 64,
        firewall_rules: 16,
        table_cap: 24,
        ..AppParams::default()
    }
}

#[test]
fn route_functionality_is_ddt_invariant() {
    let trace = NetworkPreset::DartmouthBerry.generate(250);
    let mut outputs = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = RouteApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        outputs.push((app.lookups(), app.hits()));
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "routing outcomes diverged: {outputs:?}");
}

#[test]
fn url_functionality_is_ddt_invariant() {
    let trace = NetworkPreset::DartmouthLibrary.generate(250);
    let mut outputs = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = UrlApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        outputs.push((app.switches(), app.unmatched()));
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "URL outcomes diverged: {outputs:?}");
}

#[test]
fn ipchains_functionality_is_ddt_invariant() {
    let trace = NetworkPreset::NlanrTau.generate(250);
    let mut outputs = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = IpchainsApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        outputs.push((app.accepted(), app.denied(), app.conn_hits()));
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "firewall verdicts diverged: {outputs:?}");
}

#[test]
fn drr_functionality_is_ddt_invariant() {
    let trace = NetworkPreset::DartmouthDorm.generate(250);
    let mut outputs = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = DrrApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        outputs.push((
            app.enqueued(),
            app.transmitted(),
            app.backlog(),
            app.service_rounds(),
        ));
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "scheduler outcomes diverged: {outputs:?}");
}

#[test]
fn nat_functionality_is_ddt_invariant() {
    let trace = NetworkPreset::NlanrAix.generate(250);
    let mut outputs = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = NatApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        outputs.push((app.translated(), app.dropped(), app.expired()));
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "NAT outcomes diverged: {outputs:?}");
}

/// While functionality is invariant, the cost metrics must NOT be — that
/// difference is the whole design space.
#[test]
fn cost_metrics_do_differ_across_combos() {
    let trace = NetworkPreset::DartmouthBerry.generate(150);
    let mut access_counts = Vec::new();
    for combo in combos() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = RouteApp::new(combo, &params(), &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        access_counts.push(mem.report().accesses);
    }
    access_counts.sort_unstable();
    access_counts.dedup();
    assert!(
        access_counts.len() >= combos().len() - 1,
        "combos should spread in cost: {access_counts:?}"
    );
}
