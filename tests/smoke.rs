//! Workspace smoke test: one quick end-to-end run through the facade.
//!
//! This is deliberately the smallest possible "does the whole pipeline
//! hang together" check — the detailed end-to-end assertions live in
//! `tests/pipeline.rs`.

use ddtr::apps::AppKind;
use ddtr::core::{Methodology, MethodologyConfig};

#[test]
fn quick_run_produces_a_global_pareto_front() {
    let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Drr))
        .run()
        .expect("quick methodology run succeeds");
    assert!(
        !outcome.pareto.global_front.is_empty(),
        "global Pareto front must not be empty"
    );
}
