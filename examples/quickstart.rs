//! Quickstart: run the three-step DDT refinement methodology on one
//! application and pick a design point.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{headline_comparison, Methodology, MethodologyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Explore the deficit-round-robin scheduler with a reduced (quick)
    // sweep; use `MethodologyConfig::paper` for the full paper-sized one.
    let cfg = MethodologyConfig::quick(AppKind::Drr);
    let outcome = Methodology::new(cfg.clone()).run()?;

    println!("== step 1: application-level exploration ==");
    println!(
        "simulated {} DDT combinations on {}, kept {} ({:.0}% pruned)",
        outcome.step1.measurements.len(),
        cfg.reference_network,
        outcome.step1.survivors.len(),
        outcome.step1.pruned_fraction() * 100.0
    );

    println!("\n== step 2: network-level exploration ==");
    for config in &outcome.step2.configs {
        println!(
            "{}: {} nodes, {:.0} pps, MTU {}",
            config.network,
            config.extracted.nodes_observed,
            config.extracted.throughput_pps,
            config.extracted.mtu_bytes
        );
    }

    println!("\n== step 3: Pareto-optimal design points ==");
    for point in &outcome.pareto.global_front {
        println!("  {:20} {}", point.combo, point.report);
    }

    let headline = headline_comparison(&cfg, &outcome)?;
    println!(
        "\nversus the original SLL implementation: {:.0}% energy saving, {:.0}% faster",
        headline.energy_saving() * 100.0,
        headline.time_improvement() * 100.0
    );
    Ok(())
}
