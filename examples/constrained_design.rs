//! Pick a DDT implementation under embedded design constraints: run the
//! exploration once, then query the Pareto set with different budgets —
//! the designer workflow the paper's step 3 enables.
//!
//! ```sh
//! cargo run --example constrained_design --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{DesignConstraints, Methodology, MethodologyConfig, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = Methodology::new(MethodologyConfig::paper(AppKind::Route)).run()?;
    println!(
        "Route exploration done: {} Pareto-optimal combinations\n",
        outcome.pareto.global_front.len()
    );
    for p in &outcome.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }

    // Scenario 1: battery-powered node — hard energy budget, fastest
    // admissible point.
    let median_energy = {
        let mut e: Vec<f64> = outcome
            .pareto
            .global_front
            .iter()
            .map(|p| p.report.energy_nj)
            .collect();
        e.sort_by(|a, b| a.total_cmp(b));
        e[e.len() / 2]
    };
    let battery = DesignConstraints::none().with_max_energy_nj(median_energy);
    match outcome.pareto.select(&battery, Objective::Time) {
        Some(p) => println!(
            "\nbattery node (energy <= {median_energy:.0} nJ), fastest admissible:\n  {:20} {}",
            p.combo, p.report
        ),
        None => println!("\nbattery node: infeasible with these DDTs"),
    }

    // Scenario 2: RAM-starved node — footprint budget, lowest energy.
    let min_footprint = outcome
        .pareto
        .global_front
        .iter()
        .map(|p| p.report.peak_footprint_bytes)
        .min()
        .expect("front is non-empty");
    let ram = DesignConstraints::none().with_max_footprint_bytes(min_footprint + 1024);
    match outcome.pareto.select(&ram, Objective::Energy) {
        Some(p) => println!(
            "\nRAM-starved node (footprint <= {} B), most frugal admissible:\n  {:20} {}",
            min_footprint + 1024,
            p.combo,
            p.report
        ),
        None => println!("\nRAM-starved node: infeasible with these DDTs"),
    }

    // Scenario 3: impossible budgets — the API reports infeasibility
    // instead of silently picking something.
    let impossible = DesignConstraints::none().with_max_cycles(1);
    assert!(outcome
        .pareto
        .select(&impossible, Objective::Energy)
        .is_none());
    println!("\nimpossible budget correctly reported as infeasible");
    Ok(())
}
