//! Inspect the URL-based context switch at packet level: profile its
//! containers on a wireless-campus trace, then reproduce the paper's
//! Figure 3 exploration space for one network.
//!
//! ```sh
//! cargo run --example url_switching --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{explore_application_level, profile_application, MethodologyConfig};
use ddtr::pareto::ScatterChart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MethodologyConfig::paper(AppKind::Url);

    // Step 1a — which containers dominate the accesses?
    let profile = profile_application(&cfg)?;
    println!("container access profile on {}:", cfg.reference_network);
    for slot in &profile.slots {
        println!(
            "  {:16} {:>10} accesses {}",
            slot.name,
            slot.counts.accesses,
            if slot.dominant { "(dominant)" } else { "" }
        );
    }

    // Step 1b — the 100-combination exploration space (Figure 3a).
    let step1 = explore_application_level(&cfg)?;
    let points: Vec<[f64; 2]> = step1
        .measurements
        .iter()
        .map(|l| [l.report.cycles as f64, l.report.energy_nj])
        .collect();
    println!("\ntime-energy exploration space (100 DDT combinations):");
    println!(
        "{}",
        ScatterChart::new("time [cycles]", "energy [nJ]").render(&points)
    );
    println!(
        "step 1 keeps {} of {} combinations for the network-level exploration",
        step1.survivors.len(),
        step1.measurements.len()
    );
    Ok(())
}
