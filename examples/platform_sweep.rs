//! Platform exploration on top of the DDT exploration: how does the best
//! DDT choice react to the memory hierarchy? Sweeps L1 sizes, an optional
//! L2 and an optional scratchpad for the Route application — the hardware
//! axis the paper holds fixed ("we assume that the embedded platform is
//! already designed") but the library fully supports.
//!
//! ```sh
//! cargo run --example platform_sweep --release
//! ```

use ddtr::apps::{AppKind, AppParams};
use ddtr::ddt::DdtKind;
use ddtr::mem::{CacheConfig, MemoryConfig, MemorySystem};
use ddtr::trace::NetworkPreset;

fn platform(l1_kib: u64, l2: bool, spm: bool) -> MemoryConfig {
    let mut cfg = if l2 {
        MemoryConfig::with_l2()
    } else {
        MemoryConfig::embedded_default()
    };
    if spm {
        cfg.spm = MemoryConfig::with_spm().spm;
    }
    cfg.l1 = CacheConfig {
        capacity_bytes: l1_kib * 1024,
        ..cfg.l1
    };
    cfg
}

fn main() {
    let trace = NetworkPreset::DartmouthBerry.generate(400);
    let params = AppParams {
        route_table_size: 256,
        ..AppParams::default()
    };
    let combos = [
        ("SLL+SLL (orig)", [DdtKind::Sll, DdtKind::Sll]),
        ("AR+SLL(ARO)", [DdtKind::Array, DdtKind::SllChunkRov]),
        (
            "SLL(ARO)+SLL(AR)",
            [DdtKind::SllChunkRov, DdtKind::SllChunk],
        ),
    ];
    println!(
        "Route (radix 256) on {} — cycles per platform\n",
        trace.network
    );
    println!(
        "{:18} | {:>12} {:>12} {:>12} {:>12} {:>12}",
        "combo", "L1 8K", "L1 32K", "L1 8K+L2", "L1 32K+L2", "L1 32K+SPM"
    );
    for (label, combo) in combos {
        let mut row = Vec::new();
        for (l1, l2, spm) in [
            (8, false, false),
            (32, false, false),
            (8, true, false),
            (32, true, false),
            (32, false, true),
        ] {
            let mut mem = MemorySystem::new(platform(l1, l2, spm));
            let mut app = AppKind::Route.instantiate(combo, &params, &mut mem);
            for pkt in &trace {
                app.process(pkt, &mut mem);
            }
            row.push(mem.report().cycles);
        }
        println!(
            "{label:18} | {:>12} {:>12} {:>12} {:>12} {:>12}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }
    println!("\nA bigger L1, an L2 or a descriptor scratchpad narrows the gap");
    println!("between DDT choices but never closes it — the refinement pays on");
    println!("every platform.");
}
