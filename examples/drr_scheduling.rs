//! Drive the deficit-round-robin scheduler directly: plug different DDTs
//! into its dominant slots and watch the four cost metrics move — the
//! manual version of what the exploration automates.
//!
//! ```sh
//! cargo run --example drr_scheduling --release
//! ```

use ddtr::apps::{AppKind, AppParams};
use ddtr::ddt::DdtKind;
use ddtr::mem::{MemoryConfig, MemorySystem};
use ddtr::trace::NetworkPreset;

fn main() {
    let trace = NetworkPreset::DartmouthDorm.generate(600);
    let params = AppParams::default();
    println!(
        "DRR over {} ({} packets), quantum {} bytes\n",
        trace.network,
        trace.len(),
        params.drr_quantum
    );
    println!(
        "{:24} {:>12} {:>12} {:>12} {:>12}",
        "flow-table + queue DDTs", "accesses", "cycles", "energy nJ", "footprint B"
    );
    for combo in [
        [DdtKind::Sll, DdtKind::Sll], // the original NetBench configuration
        [DdtKind::Array, DdtKind::Array],
        [DdtKind::SllRov, DdtKind::DllChunk],
        [DdtKind::DllRov, DdtKind::Array],
        [DdtKind::SllChunkRov, DdtKind::SllChunkRov],
    ] {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut app = AppKind::Drr.instantiate(combo, &params, &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        let r = mem.report();
        println!(
            "{:24} {:>12} {:>12} {:>12.1} {:>12}",
            format!("{}+{}", combo[0], combo[1]),
            r.accesses,
            r.cycles,
            r.energy_nj,
            r.peak_footprint_bytes
        );
    }
    println!("\nEvery row processes the identical packet stream; only the");
    println!("dynamic data type implementations differ.");
}
