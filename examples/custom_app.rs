//! Applying the methodology to *your own* application: instrument a custom
//! network kernel (a DNS resolver cache, not one of the paper's four case
//! studies) with the DDT library, sweep every implementation, and read the
//! Pareto-optimal choices off the chart.
//!
//! This is the paper's step-1 recipe end to end on new code: attach the
//! profile object, keep the instrumentation fixed, swap only the DDT.
//!
//! ```sh
//! cargo run --example custom_app --release
//! ```

use ddtr::ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr::mem::{MemoryConfig, MemorySystem};
use ddtr::pareto::{pareto_front_indices, ScatterChart};
use ddtr::trace::NetworkPreset;

/// A modelled DNS cache entry: name hash, resolved address, TTL bookkeeping.
#[derive(Clone)]
struct DnsEntry {
    name_hash: u64,
    #[allow(dead_code)]
    addr: u32,
    expiry: u64,
}

impl Record for DnsEntry {
    const SIZE: u64 = 24; // modelled on-platform layout
    fn key(&self) -> u64 {
        self.name_hash
    }
}

/// The custom kernel: resolve-or-insert with periodic TTL expiry scans —
/// a key-search-heavy mix with occasional full scans.
fn run_dns_cache(cache: &mut ProfiledDdt<DnsEntry>, mem: &mut MemorySystem) {
    let trace = NetworkPreset::DartmouthBerry.generate(400);
    let mut now = 0u64;
    for pkt in &trace {
        now += 1;
        // Map each packet's destination to a queried name.
        let name_hash = u64::from(pkt.dst) % 96;
        if cache.get(name_hash, mem).is_none() {
            // Miss: "resolve" and insert with a TTL.
            cache.insert(
                DnsEntry {
                    name_hash,
                    addr: pkt.dst,
                    expiry: now + 64,
                },
                mem,
            );
        }
        // Every 32 packets, expire stale entries (scan + keyed removes).
        if now.is_multiple_of(32) {
            let mut stale = Vec::new();
            cache.scan(mem, &mut |e| {
                if e.expiry < now {
                    stale.push(e.name_hash);
                }
                true
            });
            for key in stale {
                cache.remove(key, mem);
            }
        }
    }
}

fn main() {
    println!("== DDT exploration of a custom application (DNS cache) ==\n");
    let mut labels = Vec::new();
    let mut metrics = Vec::new();
    // Step 1 of the methodology on the extended candidate set: same
    // instrumentation, swap the implementation, measure all four metrics.
    for kind in DdtKind::EXTENDED {
        let mut mem = MemorySystem::new(MemoryConfig::embedded_default());
        let mut cache = ProfiledDdt::new(kind.instantiate::<DnsEntry>(&mut mem));
        run_dns_cache(&mut cache, &mut mem);
        let report = mem.report();
        println!(
            "{:10} {} ({} container ops)",
            kind.to_string(),
            report,
            cache.counts().total_ops()
        );
        labels.push(kind.to_string());
        metrics.push(report.as_array());
    }

    let front = pareto_front_indices(&metrics);
    println!("\nPareto-optimal implementations (4-metric dominance):");
    for &i in &front {
        println!("  {}", labels[i]);
    }

    // The designer's view: the time-energy plane, like the paper's Fig. 3.
    let te_points: Vec<[f64; 2]> = metrics.iter().map(|m| [m[1], m[0]]).collect();
    let chart = ScatterChart::new("cycles", "energy (nJ)").with_size(64, 18);
    println!("\n{}", chart.render(&te_points));
    println!("Every point is one DDT implementation of the same cache — the");
    println!("spread is the design space the methodology exposes for free.");
}
