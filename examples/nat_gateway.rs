//! NAT gateway exploration: apply the methodology to the extension case
//! study and inspect how the port-pool size (the gateway's
//! application-specific network parameter) moves the optimal DDT choice.
//!
//! ```sh
//! cargo run --example nat_gateway --release
//! ```

use ddtr::apps::{AppKind, AppParams};
use ddtr::core::{Methodology, MethodologyConfig, Simulator};
use ddtr::ddt::DdtKind;
use ddtr::mem::MemoryConfig;
use ddtr::trace::NetworkPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Quick three-step exploration of the gateway.
    let cfg = MethodologyConfig::quick(AppKind::Nat);
    let outcome = Methodology::new(cfg).run()?;
    println!("== NAT gateway, three-step exploration ==");
    println!(
        "step 1 pruned {:.0}% of the space; global Pareto set:",
        outcome.step1.pruned_fraction() * 100.0
    );
    for p in &outcome.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }

    // 2. The gateway's own network parameter: sweep the pool size and
    //    watch the binding-table pressure change.
    println!("\n== port-pool sweep (AR+AR, BWY-I) ==");
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let trace = NetworkPreset::DartmouthBerry.generate(300);
    for ports in [16, 32, 64, 128] {
        let params = AppParams {
            nat_ports: ports,
            ..AppParams::default()
        };
        let log = sim.run(
            AppKind::Nat,
            [DdtKind::Array, DdtKind::Array],
            &params,
            &trace,
        );
        println!("pool {ports:>4} ports: {}", log.report);
    }
    println!("\nA bigger pool admits more concurrent bindings: more footprint,");
    println!("more binding-table search traffic — the app-specific trade-off the");
    println!("methodology captures per configuration.");
    Ok(())
}
