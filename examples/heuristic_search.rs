//! Heuristic exploration: search the DDT combination space with the
//! seeded NSGA-II engine instead of exhaustive simulation, including the
//! extended 12-kind candidate library.
//!
//! ```sh
//! cargo run --example heuristic_search --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{explore_heuristic, GaConfig};
use ddtr::ddt::DdtKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Search the paper's ten-kind library for the firewall application.
    let cfg = GaConfig::quick(AppKind::Ipchains);
    let outcome = explore_heuristic(&cfg)?;
    println!("== NSGA-II over the paper's 10-kind library (IPchains) ==");
    println!(
        "{} simulations instead of {} exhaustive ({:.0}% saved)",
        outcome.evaluations,
        cfg.candidates.len().pow(2),
        100.0 * (1.0 - outcome.evaluations as f64 / cfg.candidates.len().pow(2) as f64)
    );
    for log in &outcome.front {
        println!("  {:20} {}", log.combo, log.report);
    }

    // 2. Re-run over the extended library: the hash and AVL candidates
    //    compete for front membership where key search dominates.
    let mut cfg = GaConfig::quick(AppKind::Ipchains);
    cfg.candidates = DdtKind::EXTENDED.to_vec();
    let extended = explore_heuristic(&cfg)?;
    println!("\n== same search over the extended 12-kind library ==");
    println!(
        "{} simulations instead of {} exhaustive",
        extended.evaluations,
        cfg.candidates.len().pow(2)
    );
    let ext_members: Vec<&str> = extended
        .front
        .iter()
        .map(|l| l.combo.as_str())
        .filter(|c| c.contains("HSH") || c.contains("AVL"))
        .collect();
    for log in &extended.front {
        println!("  {:20} {}", log.combo, log.report);
    }
    println!(
        "\nextension DDTs on the front: {}",
        if ext_members.is_empty() {
            "none (the classic library suffices here)".to_string()
        } else {
            ext_members.join(", ")
        }
    );

    // 3. Convergence: watch the archive grow per generation.
    println!("\n== convergence (extended library) ==");
    for h in &extended.history {
        println!(
            "generation {:2}: {:3} simulations, archive front {:2}",
            h.generation, h.evaluations, h.front_size
        );
    }

    // 4. Designer constraints work on heuristic fronts exactly like on
    //    exhaustive ones: state budgets, minimise one objective.
    use ddtr::core::{DesignConstraints, Objective};
    let median_footprint = {
        let mut fps: Vec<u64> = extended
            .front
            .iter()
            .map(|l| l.report.peak_footprint_bytes)
            .collect();
        fps.sort_unstable();
        fps[fps.len() / 2]
    };
    let constraints = DesignConstraints::none().with_max_footprint_bytes(median_footprint);
    println!("\n== constrained selection (footprint <= {median_footprint} B, minimise time) ==");
    match extended.select(&constraints, Objective::Time) {
        Some(choice) => println!("  chosen: {:18} {}", choice.combo, choice.report),
        None => println!("  no front point fits the budget"),
    }
    Ok(())
}
