//! Tune the IPchains firewall for a specific deployment: sweep the rule
//! count (the application-specific network parameter of the paper) and
//! compare how the best DDT choice shifts.
//!
//! ```sh
//! cargo run --example firewall_tuning --release
//! ```

use ddtr::apps::{AppKind, AppParams};
use ddtr::core::{explore_network_level, explore_pareto_level, MethodologyConfig};
use ddtr::ddt::DdtKind;
use ddtr::trace::NetworkPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A focused candidate set (as if step 1 already pruned the space).
    let candidates = vec![
        [DdtKind::Array, DdtKind::Sll],
        [DdtKind::Array, DdtKind::SllRov],
        [DdtKind::Sll, DdtKind::Sll],
        [DdtKind::SllChunk, DdtKind::DllRov],
        [DdtKind::SllChunkRov, DdtKind::SllChunkRov],
        [DdtKind::ArrayPtr, DdtKind::Dll],
    ];
    let mut cfg = MethodologyConfig::paper(AppKind::Ipchains);
    cfg.networks = vec![NetworkPreset::NlanrTau, NetworkPreset::DartmouthSudikoff];
    for rules in [16usize, 32, 64] {
        cfg.param_variants = vec![AppParams {
            firewall_rules: rules,
            ..AppParams::default()
        }];
        let step2 = explore_network_level(&cfg, &candidates)?;
        let pareto = explore_pareto_level(&step2)?;
        println!("== {rules} active rules ==");
        for front in &pareto.per_config {
            let best = front
                .front
                .iter()
                .min_by(|a, b| a.report.energy_nj.total_cmp(&b.report.energy_nj))
                .expect("front is non-empty");
            println!(
                "  {:24} best-energy {:18} {}",
                front.config_key, best.combo, best.report
            );
        }
        println!();
    }
    println!("The optimal rule-chain DDT depends on the deployed rule count —");
    println!("the reason the methodology explores application parameters in step 2.");
    Ok(())
}
