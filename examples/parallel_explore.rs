//! Walkthrough of the execution engine: run the full methodology on an
//! explicit [`ExploreEngine`] — parallel workers, a persistent result
//! cache, and a warm re-run that answers entirely from disk.
//!
//! ```sh
//! cargo run --example parallel_explore --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{Methodology, MethodologyConfig};
use ddtr::engine::{timing::time_secs, EngineConfig, ExploreEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache_dir = std::env::temp_dir().join("ddtr-parallel-explore-example");
    let _ = std::fs::remove_dir_all(&cache_dir);

    // An engine with one worker per core and a persistent result cache —
    // exactly what `ddtr explore drr --cache-dir <dir>` builds.
    let engine_cfg = EngineConfig {
        jobs: 0, // auto: one worker per available core
        cache_dir: Some(cache_dir.clone()),
        no_cache: false,
    };
    let cfg = MethodologyConfig::quick(AppKind::Drr);

    // Cold run: every simulation executes on the work-stealing pool and is
    // appended to <cache-dir>/sim-cache.jsonl as it completes.
    let mut cold_engine = ExploreEngine::new(engine_cfg.clone())?;
    println!("cold run on {} workers...", cold_engine.jobs());
    let (cold, cold_secs) = time_secs(|| Methodology::new(cfg.clone()).run_with(&mut cold_engine));
    let cold = cold?;
    println!(
        "  {} simulations executed, {} cache hits, {:.3}s",
        cold.engine.executed, cold.engine.cache_hits, cold_secs
    );

    // Warm run: a brand-new engine (think: a new process, days later) over
    // the same cache directory. Nothing simulates; the Pareto front is
    // byte-identical.
    let mut warm_engine = ExploreEngine::new(engine_cfg)?;
    let (warm, warm_secs) = time_secs(|| Methodology::new(cfg).run_with(&mut warm_engine));
    let warm = warm?;
    println!(
        "warm run: {} executed, {} cache hits, {:.3}s ({:.0}x faster)",
        warm.engine.executed,
        warm.engine.cache_hits,
        warm_secs,
        cold_secs / warm_secs
    );
    assert_eq!(warm.engine.executed, 0);

    let identical = serde_json::to_string(&cold.pareto.global_front)?
        == serde_json::to_string(&warm.pareto.global_front)?;
    println!("fronts byte-identical: {identical}");

    println!("\nglobal Pareto-optimal DDT choices for DRR:");
    for p in &warm.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
    Ok(())
}
