//! Exercise the trace substrate on its own: generate the ten network
//! traces, serialise one to the text format, parse it back, and extract
//! the network parameters the methodology feeds to step 2.
//!
//! ```sh
//! cargo run --example trace_analysis --release
//! ```

use ddtr::trace::{NetworkParams, NetworkPreset, TraceReader, TraceWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:10} {:>6} {:>10} {:>8} {:>7} {:>7} {:>6}",
        "trace", "nodes", "pps", "mean B", "MTU", "flows", "url%"
    );
    for preset in NetworkPreset::ALL {
        let trace = preset.generate(2000);
        let p = NetworkParams::extract(&trace);
        println!(
            "{:10} {:>6} {:>10.0} {:>8.1} {:>7} {:>7} {:>6.1}",
            p.network,
            p.nodes_observed,
            p.throughput_pps,
            p.mean_packet_bytes,
            p.mtu_bytes,
            p.flows_observed,
            p.url_share * 100.0
        );
    }

    // The text round trip the original Perl parser performed on raw files.
    let berry = NetworkPreset::DartmouthBerry.generate(500);
    let text = TraceWriter::to_string(&berry);
    let parsed = TraceReader::parse_str(&text)?;
    assert_eq!(berry, parsed);
    println!(
        "\nBWY-I text round trip: {} packets, {} bytes of text, lossless",
        parsed.len(),
        text.len()
    );
    Ok(())
}
