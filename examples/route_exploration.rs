//! Reproduce the paper's Route case study: explore the IPv4 radix routing
//! application over seven networks and two radix-table sizes, then draw
//! the Berry-trace Pareto chart (Figure 4).
//!
//! ```sh
//! cargo run --example route_exploration --release
//! ```

use ddtr::apps::AppKind;
use ddtr::core::{
    render_pareto_chart, ConfigKey, Methodology, MethodologyConfig, ParetoChartPlane,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MethodologyConfig::paper(AppKind::Route);
    println!(
        "exploring Route: {} combos x {} configurations (exhaustive would be {} simulations)",
        100,
        cfg.configurations(),
        cfg.exhaustive_simulations()
    );
    let outcome = Methodology::new(cfg).run()?;
    println!(
        "ran {} simulations instead ({:.0}% reduction)\n",
        outcome.counts.reduced,
        outcome.counts.reduction() * 100.0
    );

    // Profiling found the dominant structures the paper names.
    println!("dominant structures: {:?}\n", outcome.profile.dominant);

    // The per-configuration Pareto curve for the Berry (BWY I) trace.
    let key = ConfigKey::new("BWY-I", "radix256");
    let logs = outcome.step2.logs_for(&key);
    println!("time-energy exploration space, {key}:");
    println!(
        "{}",
        render_pareto_chart(&logs, ParetoChartPlane::TimeEnergy)
    );

    println!("global Pareto-optimal DDT choices for Route:");
    for p in &outcome.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }
    Ok(())
}
