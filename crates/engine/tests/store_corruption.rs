//! Corruption-injection suite for the pile store.
//!
//! Each test builds a healthy store, damages it the way real disks and
//! crashes do — torn tail, flipped bit, zeroed file, stale version —
//! and then proves the contract: the damage is *detected* on read,
//! *quarantined* with a structured issue, and never panics or serves
//! bad bytes. `SimCache::verify_store` (the engine behind
//! `ddtr cache verify`) must report every injected fault.

use ddtr_engine::store::format::{PAGE, REC_HEADER_LEN, SEG_HEADER_LEN};
use ddtr_engine::store::CorruptKind;
use ddtr_engine::testing::TempCacheDir;
use ddtr_engine::{fnv1a64, PileStore, SimCache};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Fixed-size keys/payloads so every record is exactly `RECORD` bytes
/// and offsets are computable: header 24 + key 7 + payload 11 = 42,
/// padded to 48.
const RECORD: u64 = 48;
const ENTRIES: u64 = 10;

fn key_of(i: u64) -> String {
    format!("key-{i:03}")
}

fn payload_of(i: u64) -> String {
    format!("payload-{i:03}")
}

/// Builds a published single-segment store with [`ENTRIES`] records and
/// returns the segment file's path.
fn build_store(dir: &Path) -> PathBuf {
    let mut store = PileStore::open(dir).expect("open");
    for i in 0..ENTRIES {
        store
            .append(key_of(i).as_bytes(), payload_of(i).as_bytes())
            .expect("append");
    }
    drop(store); // publishes
    let seg = std::fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "ddts"))
        .expect("one segment");
    assert_eq!(
        std::fs::metadata(&seg).expect("meta").len(),
        PAGE + ENTRIES * RECORD,
        "fixed-layout premise of this suite"
    );
    seg
}

fn patch(path: &Path, offset: u64, bytes: &[u8]) {
    let mut f = OpenOptions::new().write(true).open(path).expect("open rw");
    f.seek(SeekFrom::Start(offset)).expect("seek");
    f.write_all(bytes).expect("patch");
}

fn kinds(report: &ddtr_engine::VerifyReport) -> Vec<CorruptKind> {
    report
        .segments
        .iter()
        .flat_map(|s| s.issues.iter().map(|i| i.kind))
        .collect()
}

#[test]
fn truncated_tail_record_is_detected_and_rest_stays_readable() {
    let tmp = TempCacheDir::new("corrupt-trunc");
    let seg = build_store(tmp.path());
    // A crash tore the last record: the file ends 20 bytes into it.
    let torn_len = PAGE + (ENTRIES - 1) * RECORD + 20;
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open rw")
        .set_len(torn_len)
        .expect("truncate");

    let mut store = PileStore::open(tmp.path()).expect("open survives");
    for i in 0..ENTRIES - 1 {
        assert_eq!(
            store.get(key_of(i).as_bytes()).expect("get"),
            Some(payload_of(i).into_bytes()),
            "records before the tear stay readable"
        );
    }
    assert_eq!(
        store.get(key_of(ENTRIES - 1).as_bytes()).expect("get"),
        None,
        "the torn record reads as a miss, not garbage"
    );
    assert!(
        store
            .issues()
            .iter()
            .any(|i| i.kind == CorruptKind::Truncated),
        "the tear is recorded as a structured issue: {:?}",
        store.issues()
    );
    let report = SimCache::verify_store(tmp.path()).expect("verify runs");
    assert!(!report.is_clean());
    assert_eq!(report.records_ok(), ENTRIES - 1);
    assert!(kinds(&report).contains(&CorruptKind::Truncated));
}

#[test]
fn flipped_payload_byte_is_quarantined_by_checksum() {
    let tmp = TempCacheDir::new("corrupt-flip");
    let seg = build_store(tmp.path());
    // One bit rots inside record 3's payload region.
    let at = PAGE + 3 * RECORD + REC_HEADER_LEN as u64 + 7 + 2;
    let mut byte = [0u8; 1];
    {
        let mut f = OpenOptions::new().read(true).open(&seg).expect("open");
        f.seek(SeekFrom::Start(at)).expect("seek");
        f.read_exact(&mut byte).expect("read");
    }
    patch(&seg, at, &[byte[0] ^ 0x10]);

    let mut store = PileStore::open(tmp.path()).expect("open");
    assert_eq!(
        store.get(key_of(3).as_bytes()).expect("get"),
        None,
        "checksum mismatch must never serve the payload"
    );
    assert!(store
        .issues()
        .iter()
        .any(|i| i.kind == CorruptKind::BadChecksum));
    // Every other record is untouched.
    for i in (0..ENTRIES).filter(|&i| i != 3) {
        assert_eq!(
            store.get(key_of(i).as_bytes()).expect("get"),
            Some(payload_of(i).into_bytes())
        );
    }
    let report = SimCache::verify_store(tmp.path()).expect("verify");
    assert!(kinds(&report).contains(&CorruptKind::BadChecksum));
    assert_eq!(report.records_ok(), ENTRIES - 1);
}

#[test]
fn bad_record_magic_is_quarantined() {
    let tmp = TempCacheDir::new("corrupt-magic");
    let seg = build_store(tmp.path());
    // Record 5's magic word is stomped.
    patch(&seg, PAGE + 5 * RECORD, &[0xDE, 0xAD, 0xBE, 0xEF]);

    let mut store = PileStore::open(tmp.path()).expect("open");
    assert_eq!(store.get(key_of(5).as_bytes()).expect("get"), None);
    assert!(store
        .issues()
        .iter()
        .any(|i| i.kind == CorruptKind::BadMagic));
    assert_eq!(
        store.get(key_of(6).as_bytes()).expect("get"),
        Some(payload_of(6).into_bytes()),
        "the sidecar index still reaches records after the stomp"
    );
    let report = SimCache::verify_store(tmp.path()).expect("verify");
    assert!(kinds(&report).contains(&CorruptKind::BadMagic));
}

#[test]
fn stale_format_version_quarantines_the_whole_segment() {
    let tmp = TempCacheDir::new("corrupt-version");
    let seg = build_store(tmp.path());
    // A segment written by a future format: version 99, checksum valid
    // (an honest future writer would sign its header correctly).
    let mut header = vec![0u8; SEG_HEADER_LEN];
    OpenOptions::new()
        .read(true)
        .open(&seg)
        .expect("open")
        .read_exact(&mut header)
        .expect("read header");
    header[8..12].copy_from_slice(&99u32.to_le_bytes());
    let sum = fnv1a64(&header[0..48]);
    header[48..56].copy_from_slice(&sum.to_le_bytes());
    patch(&seg, 0, &header);

    let mut store = PileStore::open(tmp.path()).expect("open survives");
    assert!(
        store
            .issues()
            .iter()
            .any(|i| matches!(i.kind, CorruptKind::BadVersion { found: 99 })),
        "the alien version is reported, not misread: {:?}",
        store.issues()
    );
    assert_eq!(
        store.get(key_of(0).as_bytes()).expect("get"),
        None,
        "no record of an unknown format version is ever served"
    );
    let report = SimCache::verify_store(tmp.path()).expect("verify");
    assert!(kinds(&report)
        .iter()
        .any(|k| matches!(k, CorruptKind::BadVersion { found: 99 })));
    assert_eq!(report.records_ok(), 0);
}

#[test]
fn zero_length_segment_is_quarantined_and_store_stays_usable() {
    let tmp = TempCacheDir::new("corrupt-empty");
    build_store(tmp.path());
    // A crash left a zero-length segment behind (created, never written).
    std::fs::File::create(tmp.join("seg-99999-00000000deadbeef.ddts")).expect("empty segment");

    let mut store = PileStore::open(tmp.path()).expect("open survives");
    assert!(
        store
            .issues()
            .iter()
            .any(|i| i.kind == CorruptKind::Truncated),
        "{:?}",
        store.issues()
    );
    // The healthy segment still serves everything, and appends work.
    for i in 0..ENTRIES {
        assert_eq!(
            store.get(key_of(i).as_bytes()).expect("get"),
            Some(payload_of(i).into_bytes())
        );
    }
    store.append(b"fresh", b"after damage").expect("append");
    assert_eq!(
        store.get(b"fresh").expect("get"),
        Some(b"after damage".to_vec())
    );
    let report = SimCache::verify_store(tmp.path()).expect("verify");
    assert!(kinds(&report).contains(&CorruptKind::Truncated));
    assert_eq!(report.records_ok(), ENTRIES + 1);
}

#[test]
fn compact_rewrites_a_damaged_store_clean() {
    let tmp = TempCacheDir::new("corrupt-compact");
    let seg = build_store(tmp.path());
    patch(&seg, PAGE + 2 * RECORD, &[0u8; 4]); // kill record 2's magic
    let report = SimCache::compact_store(tmp.path()).expect("compact");
    assert_eq!(report.records_out, ENTRIES - 1, "the dead record is gone");
    let after = SimCache::verify_store(tmp.path()).expect("verify");
    assert!(after.is_clean(), "compaction leaves a clean store");
    let mut store = PileStore::open(tmp.path()).expect("open");
    assert_eq!(
        store.get(key_of(4).as_bytes()).expect("get"),
        Some(payload_of(4).into_bytes())
    );
}
