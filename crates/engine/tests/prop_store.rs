//! Property-based tests of the pile store.
//!
//! Three families: (1) arbitrary put/get sequences behave exactly like a
//! `HashMap` model, before and after a reopen; (2) JSONL export →
//! import round-trips every cache entry to byte-identical lookups;
//! (3) truncating the segment at *every* byte offset of the last record
//! always leaves a store that opens and serves every earlier record —
//! the crash-safety contract has no bad offset.

use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_engine::store::format::PAGE;
use ddtr_engine::testing::TempCacheDir;
use ddtr_engine::{CacheKey, PileStore, SimCache, Simulator};
use ddtr_mem::MemoryConfig;
use ddtr_trace::NetworkPreset;
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::Path;

fn key_name(i: usize) -> String {
    format!("model-key-{i:02}")
}

fn segment_of(dir: &Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "ddts"))
        .expect("one segment")
}

proptest! {
    /// Any sequence of appends over a small key space reads back exactly
    /// like a `HashMap` (latest insert wins) — through the live handle
    /// and again through a fresh open of the same directory.
    #[test]
    fn append_get_matches_hashmap_model(
        ops in prop::collection::vec((0usize..6, prop::collection::vec(0u8..255, 0..24)), 0..40)
    ) {
        let tmp = TempCacheDir::new("prop-model");
        let mut model: HashMap<usize, Vec<u8>> = HashMap::new();
        {
            let mut store = PileStore::open(tmp.path()).expect("open");
            for (slot, payload) in &ops {
                store.append(key_name(*slot).as_bytes(), payload).expect("append");
                model.insert(*slot, payload.clone());
                // Read-your-writes while the handle is live.
                prop_assert_eq!(
                    store.get(key_name(*slot).as_bytes()).expect("get"),
                    model.get(slot).cloned()
                );
            }
            for slot in 0..6 {
                prop_assert_eq!(
                    store.get(key_name(slot).as_bytes()).expect("get"),
                    model.get(&slot).cloned()
                );
            }
        }
        // And the same truth from a cold process.
        let mut reopened = PileStore::open(tmp.path()).expect("reopen");
        for slot in 0..6 {
            prop_assert_eq!(
                reopened.get(key_name(slot).as_bytes()).expect("get"),
                model.get(&slot).cloned()
            );
        }
        prop_assert!(reopened.verify().expect("verify").is_clean());
    }

    /// Export to the JSONL interchange format and import into a fresh
    /// directory gives byte-identical lookups for every key.
    #[test]
    fn jsonl_export_import_round_trips_byte_identically(
        fps in prop::collection::vec(0u64..u64::MAX, 1..12)
    ) {
        let tmp = TempCacheDir::new("prop-export");
        let trace = NetworkPreset::DartmouthBerry.generate(10);
        let params = AppParams::default();
        let combo = [DdtKind::Array, DdtKind::Dll];
        let log = Simulator::new(MemoryConfig::embedded_default())
            .run(AppKind::Drr, combo, &params, &trace);
        let mut ids = Vec::new();
        {
            let mut cache = SimCache::open(tmp.path()).expect("open");
            for fp in &fps {
                // Distinct trace fingerprints make distinct cache keys
                // without re-running the simulator.
                let key = CacheKey::new(
                    AppKind::Drr, combo, &params, &trace, *fp,
                    &MemoryConfig::embedded_default(),
                );
                ids.push(key.id());
                cache.insert(&key, log.clone());
            }
        }
        let dump = tmp.join("dump.jsonl");
        let exported = SimCache::export_store(tmp.path(), &dump).expect("export");
        let fresh = TempCacheDir::new("prop-import");
        let imported = SimCache::import_store(fresh.path(), &dump).expect("import");
        prop_assert_eq!(exported, imported, "every exported line imports");
        let mut original = PileStore::open(tmp.path()).expect("open original");
        let mut round_tripped = PileStore::open(fresh.path()).expect("open imported");
        for id in &ids {
            let a = original.get(id.as_bytes()).expect("get original");
            let b = round_tripped.get(id.as_bytes()).expect("get imported");
            prop_assert!(a.is_some(), "original must hold {id}");
            prop_assert_eq!(a, b, "byte-identical payload for {}", id);
        }
    }

    /// Truncating the segment at every single byte offset of the last
    /// record leaves a store that opens without panicking, serves every
    /// earlier record, and reports the tear (or a clean shorter store at
    /// the record boundary).
    #[test]
    fn truncation_at_every_offset_of_the_last_record_stays_readable(
        klen in 1usize..32,
        vlen in 0usize..64,
        earlier in 0usize..4,
    ) {
        let tmp = TempCacheDir::new("prop-trunc");
        let prev_end = {
            let mut store = PileStore::open(tmp.path()).expect("open");
            for i in 0..earlier {
                store
                    .append(format!("early-{i}").as_bytes(), b"stable payload")
                    .expect("append");
            }
            store.flush().expect("flush");
            let end = if earlier == 0 {
                0
            } else {
                std::fs::metadata(segment_of(tmp.path())).expect("meta").len() - PAGE
            };
            let key = vec![b'k'; klen];
            let payload = vec![0xA5u8; vlen];
            store.append(&key, &payload).expect("append last");
            end
        };
        let seg = segment_of(tmp.path());
        let full = std::fs::metadata(&seg).expect("meta").len();
        let last_key = vec![b'k'; klen];
        // Walk backwards over every byte of the last record.
        for cut in (PAGE + prev_end..full).rev() {
            OpenOptions::new()
                .write(true)
                .open(&seg)
                .expect("open rw")
                .set_len(cut)
                .expect("truncate");
            let mut store = PileStore::open(tmp.path()).expect("open after cut");
            for i in 0..earlier {
                prop_assert_eq!(
                    store.get(format!("early-{i}").as_bytes()).expect("get"),
                    Some(b"stable payload".to_vec()),
                    "record {} must survive a tail cut at {}", i, cut
                );
            }
            // The cut record itself must read as a miss, never garbage.
            let got = store.get(&last_key).expect("get cut record");
            prop_assert!(got.is_none(), "torn record served at cut {}", cut);
            // And a full verify walks the damage without panicking.
            let report = store.verify().expect("verify");
            prop_assert_eq!(report.records_ok(), earlier as u64, "cut {}", cut);
        }
    }
}
