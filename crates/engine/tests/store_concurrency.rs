//! Concurrency contracts of the shared pile store.
//!
//! One store directory, many readers and writers: a second
//! `EngineSession` opened on a warm directory must answer entirely from
//! the store (zero executed simulations), and concurrent appenders —
//! including a deliberately slow one — must never corrupt the store,
//! because every writing process owns its own `O_EXCL`-created segment.

use ddtr_apps::{AppKind, AppParams};
use ddtr_engine::testing::TempCacheDir;
use ddtr_engine::{all_combos, EngineConfig, EngineSession, PileStore, SimCache, SimUnit};
use ddtr_mem::MemoryConfig;
use ddtr_trace::NetworkPreset;
use std::time::Duration;

fn units<'a>(trace: &'a ddtr_trace::Trace, params: &'a AppParams) -> Vec<SimUnit<'a>> {
    all_combos()[..6]
        .iter()
        .map(|&c| {
            SimUnit::new(
                AppKind::Drr,
                c,
                params,
                trace,
                MemoryConfig::embedded_default(),
            )
        })
        .collect()
}

#[test]
fn second_session_on_a_shared_store_executes_nothing() {
    let tmp = TempCacheDir::new("conc-warm");
    let cfg = EngineConfig {
        jobs: 2,
        cache_dir: Some(tmp.path().to_path_buf()),
        no_cache: false,
    };
    let trace = NetworkPreset::DartmouthBerry.generate(30);
    let params = AppParams::default();
    let batch = units(&trace, &params);

    let cold = EngineSession::new(cfg.clone()).expect("cold session");
    let mut engine = cold.engine();
    let logs = engine.evaluate_batch(&batch);
    assert_eq!(logs.len(), batch.len());
    assert_eq!(
        cold.stats().misses,
        batch.len(),
        "cold session executes everything"
    );

    // A second session opens the same directory WHILE the first is still
    // alive: the first session's records are unpublished bytes, reachable
    // through tail salvage on the same machine.
    let warm = EngineSession::new(cfg.clone()).expect("warm session");
    let mut engine = warm.engine();
    let warm_logs = engine.evaluate_batch(&batch);
    assert_eq!(warm_logs.len(), batch.len());
    assert_eq!(warm.stats().misses, 0, "warm session must execute nothing");
    assert_eq!(warm.stats().hits, batch.len());
    // Results are byte-identical to the cold run.
    for (a, b) in logs.iter().zip(&warm_logs) {
        assert_eq!(a.report.cycles, b.report.cycles);
        assert_eq!(a.combo, b.combo);
    }
    drop(cold);

    // And a third session after the first published (drop flushes) also
    // answers warm — the durable path, not just salvage.
    let published = EngineSession::new(cfg).expect("published session");
    let mut engine = published.engine();
    engine.evaluate_batch(&batch);
    assert_eq!(published.stats().misses, 0);
}

#[test]
fn slow_and_fast_writers_share_a_directory_without_corruption() {
    let tmp = TempCacheDir::new("conc-slow");
    let dir = tmp.path().to_path_buf();

    // The slow writer drips records out with pauses between append and
    // publish — maximizing the window in which a naive shared-file
    // design would interleave torn bytes.
    let slow_dir = dir.clone();
    let slow = std::thread::spawn(move || {
        let mut store = PileStore::open(&slow_dir).expect("slow open");
        for i in 0..20 {
            let key = format!("slow-{i:02}");
            store
                .append(key.as_bytes(), b"written at a crawl")
                .expect("slow append");
            std::thread::sleep(Duration::from_millis(2));
            if i % 5 == 4 {
                store.flush().expect("slow flush");
            }
        }
        // Dropped without a final flush: the tail stays salvage.
    });

    {
        let mut store = PileStore::open(&dir).expect("fast open");
        for i in 0..50 {
            let key = format!("fast-{i:02}");
            store
                .append(key.as_bytes(), b"written quickly")
                .expect("fast append");
        }
        store.flush().expect("fast flush");
    }
    slow.join().expect("slow writer finished");

    let mut fresh = PileStore::open(&dir).expect("fresh open");
    assert_eq!(fresh.segment_count(), 2, "one exclusive segment per writer");
    for i in 0..20 {
        let key = format!("slow-{i:02}");
        assert_eq!(
            fresh.get(key.as_bytes()).expect("get slow"),
            Some(b"written at a crawl".to_vec()),
            "{key}"
        );
    }
    for i in 0..50 {
        let key = format!("fast-{i:02}");
        assert_eq!(
            fresh.get(key.as_bytes()).expect("get fast"),
            Some(b"written quickly".to_vec()),
            "{key}"
        );
    }
    let report = fresh.verify().expect("verify");
    assert!(
        report.is_clean(),
        "no interleaving, no torn bytes: {report:?}"
    );
    assert_eq!(report.records_ok(), 70);

    // The full SimCache verify path agrees.
    assert!(SimCache::verify_store(&dir).expect("verify").is_clean());
}
