//! Deterministically ordered work-stealing execution of independent jobs.
//!
//! The seed spread simulations over a single shared-counter thread pool
//! duplicated inside `step1.rs` and `step2.rs`. This module centralises the
//! fan-out behind one primitive, [`run_ordered`]: per-worker deques seeded
//! block-cyclically, idle workers stealing from the *back* of their
//! neighbours' queues (so they take the work farthest from the owner's
//! position), and results written into index-addressed slots so the output
//! order equals the input order **at any worker count** — the property the
//! byte-identical-Pareto guarantee rests on.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Resolves a requested `--jobs` value: `0` means "one worker per available
/// core", anything else is used as-is.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs `f` over every item on `jobs` workers (`0` = auto) and returns the
/// results **in input order**, regardless of which worker computed what.
///
/// Items are dealt block-cyclically onto per-worker deques; each worker
/// drains its own deque front-to-back and, when empty, steals from the back
/// of the fullest other deque. Each job runs exactly once.
///
/// # Example
///
/// ```
/// use ddtr_engine::run_ordered;
///
/// let squares = run_ordered(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_jobs(jobs).min(n.max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // The own-queue guard must drop before stealing — holding
                // it while locking a victim's queue would deadlock two
                // workers stealing from each other.
                let own = queues[w].lock().pop_front();
                let task = match own {
                    Some(i) => Some(i),
                    None => steal(queues, w),
                };
                let Some(i) = task else { break };
                *slots[i].lock() = Some(f(&items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every job ran exactly once"))
        .collect()
}

/// Steals one task from the back of another worker's queue, trying every
/// victim in turn. Returns `None` only when every foreign queue was
/// observed empty — at which point no further work can appear (nothing
/// enqueues mid-batch), so the thief may retire.
fn steal(queues: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    (0..queues.len())
        .filter(|&v| v != thief)
        .find_map(|v| queues[v].lock().pop_back())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_ordered(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn order_is_preserved_at_every_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64, 0] {
            let got = run_ordered(&items, jobs, |&x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        run_ordered(&items, 7, |&i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn stealing_drains_imbalanced_work() {
        // One slow job at the front of worker 0's deque; the other worker
        // must steal the rest. Completion of all jobs proves the steal path
        // terminates and misses nothing.
        let items: Vec<u64> = (0..16).collect();
        let out = run_ordered(&items, 2, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn no_deadlock_under_repeated_contention() {
        // Regression: stealing while still holding the own-queue lock
        // deadlocked two workers stealing from each other. Hammer the
        // scheduler with many rounds of tiny jobs so empty-queue stealing
        // happens constantly.
        let items: Vec<usize> = (0..64).collect();
        for round in 0..200 {
            let out = run_ordered(&items, 4, |&x| x + round);
            assert_eq!(out[0], round);
            assert_eq!(out[63], 63 + round);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run_ordered(&[10u8, 20], 64, |&x| x / 2);
        assert_eq!(out, vec![5, 10]);
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(5), 5);
    }
}
