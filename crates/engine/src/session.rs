//! Session-shared execution state: one result cache and one worker-permit
//! pool served to any number of concurrent batch runners.
//!
//! A single [`crate::ExploreEngine`] is enough for a one-shot CLI run. A
//! *resident* process — `ddtr serve` answering exploration requests for
//! hours — needs more: every in-flight request must see the same
//! content-addressed result cache (so one client's exploration warms the
//! next client's), the total number of concurrently executing simulations
//! must stay bounded by one shared `--jobs` budget no matter how many
//! requests are running, and a request must be cancellable mid-batch.
//! [`EngineSession`] owns that shared state and hands out engines bound to
//! it; [`JobsPool`] is the FIFO permit pool that makes the sharing *fair*
//! (a million-packet job cannot starve a small query, because permits are
//! granted strictly in request order, one simulation at a time); and
//! [`BatchControl`] carries the per-request [`CancelToken`] and progress
//! counters the server streams back to clients.

use crate::cache::{CacheStats, SimCache};
use crate::engine::{EngineConfig, EngineError, ExploreEngine};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A cooperative cancellation flag shared between a batch runner and its
/// controller.
///
/// Cancellation is observed *between* simulations: workers check the token
/// before starting each unit, so an in-flight simulation finishes but no
/// further one starts, and the batch returns [`Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A batch was abandoned because its [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Cumulative batch progress of one engine: units resolved (from cache or
/// execution) over units scheduled so far. `total` grows as further
/// batches are scheduled — a multi-phase exploration does not know its
/// full extent up front.
///
/// `done = executed + hits + duplicates resolved by identity`; because
/// the counters belong to one engine's control, they are exact for that
/// engine's run even when its result cache is shared with concurrently
/// running engines (unlike deltas of the shared [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchProgress {
    /// Units resolved so far (cache hits count immediately).
    pub done: usize,
    /// Units scheduled so far.
    pub total: usize,
    /// Units this engine actually simulated.
    pub executed: usize,
    /// Units answered from the (possibly shared) result cache.
    pub hits: usize,
}

type ProgressFn = dyn Fn(BatchProgress) + Send + Sync;

/// Controller attached to an engine: cancellation plus progress
/// observation.
///
/// Clones share state — a server keeps one clone per in-flight request to
/// cancel it, while the engine holds another. The observer (if any) is
/// invoked from worker threads; because workers race between updating the
/// shared counters and reporting them, observed `done` values may arrive
/// momentarily out of order. Values are always exact snapshots, so sinks
/// that need monotone output simply drop non-increasing ones.
#[derive(Clone, Default)]
pub struct BatchControl {
    cancel: CancelToken,
    observer: Option<Arc<ProgressFn>>,
    done: Arc<AtomicUsize>,
    total: Arc<AtomicUsize>,
    executed: Arc<AtomicUsize>,
    hits: Arc<AtomicUsize>,
}

impl BatchControl {
    /// A control with no observer (progress still counted).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A control whose progress updates invoke `observer`.
    #[must_use]
    pub fn observed(observer: impl Fn(BatchProgress) + Send + Sync + 'static) -> Self {
        BatchControl {
            observer: Some(Arc::new(observer)),
            ..Self::default()
        }
    }

    /// The control's cancellation token.
    #[must_use]
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cancellation of the controlled engine's current and future
    /// batches.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The current progress snapshot.
    #[must_use]
    pub fn progress(&self) -> BatchProgress {
        BatchProgress {
            done: self.done.load(Ordering::SeqCst),
            total: self.total.load(Ordering::SeqCst),
            executed: self.executed.load(Ordering::SeqCst),
            hits: self.hits.load(Ordering::SeqCst),
        }
    }

    pub(crate) fn add_total(&self, n: usize) {
        self.total.fetch_add(n, Ordering::SeqCst);
        self.emit();
    }

    /// One unit simulated by the controlled engine.
    pub(crate) fn add_executed(&self) {
        self.executed.fetch_add(1, Ordering::SeqCst);
        self.done.fetch_add(1, Ordering::SeqCst);
        self.emit();
    }

    /// `n` units answered from the result cache.
    pub(crate) fn add_hits(&self, n: usize) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::SeqCst);
            self.done.fetch_add(n, Ordering::SeqCst);
        }
        self.emit();
    }

    /// `n` in-batch duplicates resolved by identity (neither executed nor
    /// cache hits).
    pub(crate) fn add_resolved(&self, n: usize) {
        if n > 0 {
            self.done.fetch_add(n, Ordering::SeqCst);
            self.emit();
        }
    }

    fn emit(&self) {
        if let Some(observer) = &self.observer {
            observer(self.progress());
        }
    }
}

impl fmt::Debug for BatchControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchControl")
            .field("cancelled", &self.is_cancelled())
            .field("progress", &self.progress())
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

/// A FIFO permit pool bounding concurrent simulations across every engine
/// of a session.
///
/// Permits are granted strictly in arrival order (ticket lock), one per
/// simulation: a long-running batch re-queues for a permit after every
/// unit, so a later, smaller request's units interleave with it instead of
/// waiting for the whole batch — request-level fairness at unit
/// granularity.
#[derive(Debug)]
pub struct JobsPool {
    permits: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct PoolState {
    /// Next ticket to hand out.
    next: u64,
    /// Lowest ticket not yet granted.
    serving: u64,
    /// Permits currently held.
    held: usize,
}

impl JobsPool {
    /// A pool of `permits` concurrent simulation slots (at least one).
    #[must_use]
    pub fn new(permits: usize) -> Self {
        JobsPool {
            permits: permits.max(1),
            state: Mutex::new(PoolState::default()),
            cv: Condvar::new(),
        }
    }

    /// The pool's permit count.
    #[must_use]
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Blocks until this caller's turn comes *and* a permit is free, then
    /// takes the permit. Returns a guard releasing it on drop.
    ///
    /// The time spent queueing is recorded into the
    /// `engine.jobs_pool.wait` histogram (see `docs/OBSERVABILITY.md`) —
    /// the direct measure of how contended the session's `--jobs` budget
    /// is.
    pub fn acquire(&self) -> JobsPermit<'_> {
        let queued_at = std::time::Instant::now();
        let mut state = self.state.lock().expect("jobs pool poisoned");
        let ticket = state.next;
        state.next += 1;
        while state.serving != ticket || state.held >= self.permits {
            state = self.cv.wait(state).expect("jobs pool poisoned");
        }
        state.serving += 1;
        state.held += 1;
        drop(state);
        ddtr_obs::histogram("engine.jobs_pool.wait").record_duration(queued_at.elapsed());
        // Later tickets may now be eligible (serving advanced).
        self.cv.notify_all();
        JobsPermit { pool: self }
    }
}

/// A held [`JobsPool`] permit; dropping it frees the slot.
#[derive(Debug)]
pub struct JobsPermit<'a> {
    pool: &'a JobsPool,
}

impl Drop for JobsPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock().expect("jobs pool poisoned");
        state.held -= 1;
        drop(state);
        self.pool.cv.notify_all();
    }
}

/// Shared execution state for a resident process: one result cache and one
/// jobs pool, served to any number of concurrently running engines.
///
/// Every engine handed out by [`EngineSession::engine`] resolves against
/// the same content-addressed cache (one request's executions answer the
/// next request's lookups) and draws its worker permits from the same FIFO
/// [`JobsPool`], so the session's total simulation concurrency is the
/// configured `--jobs` regardless of how many requests run at once.
///
/// # Example
///
/// ```
/// use ddtr_engine::{EngineConfig, EngineSession, SimUnit};
/// use ddtr_apps::{AppKind, AppParams};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::MemoryConfig;
/// use ddtr_trace::NetworkPreset;
///
/// let session = EngineSession::new(EngineConfig::with_jobs(2))?;
/// let trace = NetworkPreset::DartmouthBerry.generate(30);
/// let params = AppParams::default();
/// let unit = SimUnit::new(AppKind::Drr, [DdtKind::Array, DdtKind::Sll], &params,
///                         &trace, MemoryConfig::embedded_default());
/// // Two engines, one cache: the second request is answered without
/// // executing anything.
/// session.engine().evaluate_batch(std::slice::from_ref(&unit));
/// session.engine().evaluate_batch(std::slice::from_ref(&unit));
/// assert_eq!(session.stats().misses, 1);
/// assert_eq!(session.stats().hits, 1);
/// # Ok::<(), ddtr_engine::EngineError>(())
/// ```
pub struct EngineSession {
    cfg: EngineConfig,
    cache: Arc<Mutex<SimCache>>,
    pool: Arc<JobsPool>,
}

impl EngineSession {
    /// Opens the session's shared cache (persistent when the configuration
    /// names a directory) and sizes its jobs pool.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the cache directory cannot be created
    /// or its store cannot be read.
    pub fn new(cfg: EngineConfig) -> Result<Self, EngineError> {
        let cache = ExploreEngine::open_cache(&cfg)?;
        let pool = Arc::new(JobsPool::new(crate::scheduler::effective_jobs(cfg.jobs)));
        Ok(EngineSession {
            cfg,
            cache: Arc::new(Mutex::new(cache)),
            pool,
        })
    }

    /// The session's total concurrent-simulation budget.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.pool.permits()
    }

    /// An engine bound to the session's cache and jobs pool, with a fresh
    /// default [`BatchControl`].
    #[must_use]
    pub fn engine(&self) -> ExploreEngine {
        self.engine_with(BatchControl::new())
    }

    /// An engine bound to the session's cache and jobs pool, controlled by
    /// `control` (the server keeps a clone to cancel or observe it).
    #[must_use]
    pub fn engine_with(&self, control: BatchControl) -> ExploreEngine {
        ExploreEngine::for_session(self.cfg.clone(), &self.cache, &self.pool, control)
    }

    /// The shared cache's counters so far, across every engine of the
    /// session.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().expect("session cache poisoned").stats()
    }
}

impl fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSession")
            .field("cfg", &self.cfg)
            .field("jobs", &self.jobs())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn cancel_token_flips_once() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        token.cancel();
        assert!(token.is_cancelled());
        let clone = token.clone();
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn batch_control_counts_and_observes() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let control = BatchControl::observed(move |p| sink.lock().unwrap().push(p));
        control.add_total(4);
        control.add_hits(1);
        control.add_executed();
        control.add_executed();
        control.add_resolved(1);
        assert_eq!(
            control.progress(),
            BatchProgress {
                done: 4,
                total: 4,
                executed: 2,
                hits: 1
            }
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4].done, 4);
        assert_eq!(seen[4].executed, 2);
    }

    #[test]
    fn jobs_pool_grants_permits_in_fifo_order() {
        // One permit; a holder pins it while three waiters queue up in a
        // known order. Releasing must serve them strictly in that order.
        let pool = Arc::new(JobsPool::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let admitted = Arc::new(AtomicU64::new(0));
        let first = pool.acquire();
        let mut handles = Vec::new();
        for i in 0..3u64 {
            let waiter_pool = Arc::clone(&pool);
            let order = Arc::clone(&order);
            let admitted = Arc::clone(&admitted);
            handles.push(std::thread::spawn(move || {
                let _permit = waiter_pool.acquire();
                admitted.fetch_add(1, Ordering::SeqCst);
                order.lock().unwrap().push(i);
            }));
            // Let thread i reach the queue before spawning i+1 so the
            // ticket order is deterministic.
            while pool.state.lock().unwrap().next != i + 2 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 0, "permit still held");
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO service");
    }

    #[test]
    fn jobs_pool_bounds_concurrency() {
        let pool = Arc::new(JobsPool::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                let _permit = pool.acquire();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                running.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "never over the budget");
    }

    #[test]
    fn zero_permit_pool_still_serves() {
        let pool = JobsPool::new(0);
        assert_eq!(pool.permits(), 1);
        let _permit = pool.acquire();
    }
}
