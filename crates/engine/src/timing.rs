//! Wall-clock measurement for the exploration hot path.
//!
//! The ROADMAP's perf trajectory needs numbers, not vibes: this module is
//! the tiny harness the `perf_baseline` bench binary (and anything else)
//! uses to time explorations and serialise the result as
//! `BENCH_explore.json`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Times a closure, returning its result and the elapsed seconds.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One timed measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSample {
    /// What was measured (e.g. `"drr quick cold"`).
    pub label: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// A set of timed measurements destined for a `BENCH_*.json` file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// What this report measures.
    pub benchmark: String,
    /// Worker threads available on the measuring host.
    pub host_parallelism: usize,
    /// The measurements, in recording order.
    pub samples: Vec<BenchSample>,
    /// Free-form self-description — git revision, units, notes — so a
    /// `BENCH_*.json` file can be read without the commit that wrote it.
    /// Defaults to empty for reports persisted before the field existed.
    #[serde(default)]
    pub meta: BTreeMap<String, String>,
}

impl BenchReport {
    /// Creates an empty report, recording the host's parallelism.
    #[must_use]
    pub fn new(benchmark: impl Into<String>) -> Self {
        BenchReport {
            benchmark: benchmark.into(),
            host_parallelism: crate::scheduler::effective_jobs(0),
            samples: Vec::new(),
            meta: BTreeMap::new(),
        }
    }

    /// Records one metadata entry (e.g. `"units"` → `"seconds"`).
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.insert(key.into(), value.into());
    }

    /// Appends one measurement.
    pub fn push(&mut self, label: impl Into<String>, seconds: f64) {
        self.samples.push(BenchSample {
            label: label.into(),
            seconds,
        });
    }

    /// The seconds recorded under `label`, if any.
    #[must_use]
    pub fn seconds_of(&self, label: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.seconds)
    }

    /// Serialises the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serialisation error message.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_secs_measures_something() {
        let (value, secs) = time_secs(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(secs >= 0.004, "measured {secs}s");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("explore");
        report.push("cold", 1.5);
        report.push("warm", 0.1);
        report.set_meta("units", "seconds");
        report.set_meta("git_rev", "deadbeef");
        let json = report.to_json().expect("serialise");
        let back: BenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.benchmark, "explore");
        assert_eq!(back.samples.len(), 2);
        assert_eq!(back.seconds_of("warm"), Some(0.1));
        assert_eq!(back.seconds_of("missing"), None);
        assert!(back.host_parallelism >= 1);
        assert_eq!(back.meta.get("units").map(String::as_str), Some("seconds"));
    }

    #[test]
    fn reports_written_before_meta_existed_still_deserialise() {
        // The exact shape BENCH_explore.json had before the meta field.
        let legacy = r#"{
            "benchmark": "explore",
            "host_parallelism": 4,
            "samples": [{"label": "drr quick cold", "seconds": 0.25}]
        }"#;
        let back: BenchReport = serde_json::from_str(legacy).expect("legacy deserialise");
        assert!(back.meta.is_empty());
        assert_eq!(back.seconds_of("drr quick cold"), Some(0.25));
    }
}
