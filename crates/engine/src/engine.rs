//! The exploration engine: batched, parallel, cached simulation execution.

use crate::cache::{CacheStats, SimCache};
use crate::combo::Combo;
use crate::key::{fingerprint_stream_spec, fingerprint_trace, CacheKey};
use crate::scheduler::{effective_jobs, run_ordered};
use crate::session::{BatchControl, Cancelled, JobsPool};
use crate::sim::{SimLog, Simulator};
use ddtr_apps::{AppKind, AppParams};
use ddtr_mem::MemoryConfig;
use ddtr_trace::{StreamSpec, Trace};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// An engine failure (today: cache I/O on open).
#[derive(Debug)]
pub struct EngineError(String);

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine error: {}", self.0)
    }
}

impl std::error::Error for EngineError {}

/// How an [`ExploreEngine`] executes its batches.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads per batch; `0` means one per available core.
    pub jobs: usize,
    /// Attach a persistent result store under this directory.
    pub cache_dir: Option<PathBuf>,
    /// Disable result caching entirely (batches still deduplicate
    /// internally; nothing is remembered across batches).
    pub no_cache: bool,
}

impl EngineConfig {
    /// A configuration with an explicit worker count and no persistence.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        EngineConfig {
            jobs,
            ..Self::default()
        }
    }
}

/// Where a simulation unit's packets come from.
///
/// The engine treats both forms identically for scheduling, ordering and
/// caching; they differ only in what gets fingerprinted (packets versus
/// workload description) and how the simulator consumes them.
#[derive(Debug, Clone, Copy)]
pub enum TraceSource<'a> {
    /// A fully materialized trace, shared by reference across the batch.
    Materialized(&'a Trace),
    /// A streamed workload description: packets are generated on the fly
    /// in constant memory, and the cache key fingerprints the *spec*
    /// instead of millions of packets.
    Streamed(&'a StreamSpec),
}

impl TraceSource<'_> {
    /// The network name the resulting log is filed under.
    #[must_use]
    pub fn network(&self) -> &str {
        match self {
            TraceSource::Materialized(trace) => &trace.network,
            TraceSource::Streamed(spec) => spec.name(),
        }
    }

    /// Content fingerprint of the source ([`fingerprint_trace`] or
    /// [`fingerprint_stream_spec`]); the two domains never collide.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        match self {
            TraceSource::Materialized(trace) => fingerprint_trace(trace),
            TraceSource::Streamed(spec) => fingerprint_stream_spec(spec),
        }
    }
}

/// One `(application, combination, configuration)` simulation unit — the
/// atom the engine schedules, caches and orders.
#[derive(Debug, Clone)]
pub struct SimUnit<'a> {
    /// Application to simulate.
    pub app: AppKind,
    /// DDT combination under test.
    pub combo: Combo,
    /// Application parameters of the run.
    pub params: &'a AppParams,
    /// Packet source driving the run (materialized trace or streamed
    /// workload).
    pub source: TraceSource<'a>,
    /// Fingerprint of the source (compute once per trace/spec with
    /// [`TraceSource::fingerprint`] and share across the batch).
    pub trace_fp: u64,
    /// Platform memory configuration.
    pub mem: MemoryConfig,
}

impl<'a> SimUnit<'a> {
    /// Builds a materialized-trace unit, fingerprinting the trace. When
    /// many units share one trace, prefer [`SimUnit::with_fingerprint`]
    /// with a precomputed fingerprint.
    #[must_use]
    pub fn new(
        app: AppKind,
        combo: Combo,
        params: &'a AppParams,
        trace: &'a Trace,
        mem: MemoryConfig,
    ) -> Self {
        Self::with_fingerprint(app, combo, params, trace, fingerprint_trace(trace), mem)
    }

    /// Builds a materialized-trace unit with a precomputed trace
    /// fingerprint.
    #[must_use]
    pub fn with_fingerprint(
        app: AppKind,
        combo: Combo,
        params: &'a AppParams,
        trace: &'a Trace,
        trace_fp: u64,
        mem: MemoryConfig,
    ) -> Self {
        Self::from_source(
            app,
            combo,
            params,
            TraceSource::Materialized(trace),
            trace_fp,
            mem,
        )
    }

    /// Builds a streamed unit, fingerprinting the workload spec (cheap —
    /// constant in the packet count). When many units share one spec,
    /// prefer [`SimUnit::from_source`] with a precomputed fingerprint.
    #[must_use]
    pub fn streamed(
        app: AppKind,
        combo: Combo,
        params: &'a AppParams,
        spec: &'a StreamSpec,
        mem: MemoryConfig,
    ) -> Self {
        Self::from_source(
            app,
            combo,
            params,
            TraceSource::Streamed(spec),
            fingerprint_stream_spec(spec),
            mem,
        )
    }

    /// Builds a unit from an explicit source and its precomputed
    /// fingerprint.
    #[must_use]
    pub fn from_source(
        app: AppKind,
        combo: Combo,
        params: &'a AppParams,
        source: TraceSource<'a>,
        trace_fp: u64,
        mem: MemoryConfig,
    ) -> Self {
        SimUnit {
            app,
            combo,
            params,
            source,
            trace_fp,
            mem,
        }
    }

    /// The unit's content-addressed cache key.
    #[must_use]
    pub fn key(&self) -> CacheKey {
        CacheKey::for_network(
            self.app,
            self.combo,
            self.params,
            self.source.network(),
            self.trace_fp,
            &self.mem,
        )
    }

    /// Runs this unit's simulation (used by the engine's worker pool).
    fn simulate(&self) -> SimLog {
        let sim = Simulator::new(self.mem);
        match self.source {
            TraceSource::Materialized(trace) => sim.run(self.app, self.combo, self.params, trace),
            TraceSource::Streamed(spec) => sim.run_spec(self.app, self.combo, self.params, spec),
        }
    }
}

/// The simulation-execution engine: owns the worker pool and the result
/// cache, and evaluates batches of [`SimUnit`]s with deterministic result
/// ordering.
///
/// # Example
///
/// ```
/// use ddtr_engine::{EngineConfig, ExploreEngine, SimUnit};
/// use ddtr_apps::{AppKind, AppParams};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::MemoryConfig;
/// use ddtr_trace::NetworkPreset;
///
/// let trace = NetworkPreset::DartmouthBerry.generate(40);
/// let params = AppParams::default();
/// let units = vec![
///     SimUnit::new(AppKind::Drr, [DdtKind::Array, DdtKind::Sll], &params, &trace,
///                  MemoryConfig::embedded_default()),
///     SimUnit::new(AppKind::Drr, [DdtKind::Array, DdtKind::Sll], &params, &trace,
///                  MemoryConfig::embedded_default()),
/// ];
/// let mut engine = ExploreEngine::in_memory();
/// let logs = engine.evaluate_batch(&units);
/// assert_eq!(logs.len(), 2);
/// assert_eq!(engine.stats().misses, 1, "duplicate unit deduplicated");
/// ```
pub struct ExploreEngine {
    cfg: EngineConfig,
    cache: Arc<Mutex<SimCache>>,
    pool: Option<Arc<JobsPool>>,
    control: BatchControl,
}

impl fmt::Debug for ExploreEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreEngine")
            .field("cfg", &self.cfg)
            .field("pooled", &self.pool.is_some())
            .field("control", &self.control)
            .finish()
    }
}

impl ExploreEngine {
    /// Opens the cache an [`EngineConfig`] describes (persistent when it
    /// names a directory, in-memory otherwise).
    pub(crate) fn open_cache(cfg: &EngineConfig) -> Result<SimCache, EngineError> {
        match (&cfg.cache_dir, cfg.no_cache) {
            (Some(dir), false) => SimCache::open(dir)
                .map_err(|e| EngineError(format!("cache dir {}: {e}", dir.display()))),
            _ => Ok(SimCache::in_memory()),
        }
    }

    /// Creates an engine, opening the persistent cache when the
    /// configuration names a directory.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the cache directory cannot be created
    /// or its store cannot be read.
    pub fn new(cfg: EngineConfig) -> Result<Self, EngineError> {
        let cache = Self::open_cache(&cfg)?;
        Ok(ExploreEngine {
            cfg,
            cache: Arc::new(Mutex::new(cache)),
            pool: None,
            control: BatchControl::new(),
        })
    }

    /// An engine bound to a session's shared cache and jobs pool (see
    /// [`crate::EngineSession`]).
    pub(crate) fn for_session(
        cfg: EngineConfig,
        cache: &Arc<Mutex<SimCache>>,
        pool: &Arc<JobsPool>,
        control: BatchControl,
    ) -> Self {
        ExploreEngine {
            cfg,
            cache: Arc::clone(cache),
            pool: Some(Arc::clone(pool)),
            control,
        }
    }

    /// An engine with default parallelism and a purely in-memory cache —
    /// never fails.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(EngineConfig::default()).expect("in-memory engine cannot fail")
    }

    /// An in-memory engine with an explicit worker count (`0` = auto).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Self::new(EngineConfig::with_jobs(jobs)).expect("in-memory engine cannot fail")
    }

    /// The worker count batches will use (resolved from the configured
    /// `jobs`).
    #[must_use]
    pub fn jobs(&self) -> usize {
        effective_jobs(self.cfg.jobs)
    }

    /// The cache counters so far (shared across every engine of a session).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().expect("engine cache poisoned").stats()
    }

    /// The engine's batch controller (cancellation + progress counters).
    #[must_use]
    pub fn control(&self) -> &BatchControl {
        &self.control
    }

    /// Replaces the engine's batch controller. Subsequent batches honour
    /// the new controller's cancellation token and report progress to its
    /// observer.
    pub fn set_control(&mut self, control: BatchControl) {
        self.control = control;
    }

    /// Evaluates a batch of simulation units and returns one log per unit,
    /// **in input order**.
    ///
    /// Cached units are answered without simulating; duplicate units within
    /// the batch execute once; the remaining misses run on the engine's
    /// work-stealing pool. Equal batches therefore produce byte-identical
    /// results at any worker count, and a warm cache turns re-exploration
    /// into pure lookups.
    ///
    /// # Panics
    ///
    /// Panics if the engine's [`BatchControl`] is cancelled — callers that
    /// attach a cancellable control must use [`Self::try_evaluate_batch`].
    pub fn evaluate_batch(&mut self, units: &[SimUnit]) -> Vec<SimLog> {
        self.try_evaluate_batch(units)
            .expect("batch cancelled: use try_evaluate_batch with a cancellable control")
    }

    /// [`Self::evaluate_batch`], abandoning the batch early when the
    /// engine's [`BatchControl`] is cancelled.
    ///
    /// Cancellation is cooperative and unit-granular: the in-flight
    /// simulations finish, no further ones start, and `Err(`[`Cancelled`]`)`
    /// is returned. Results executed before the cancellation are still
    /// recorded in the (session-shared) cache, so a re-submitted request
    /// resumes instead of starting over.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] when the control's token fired before or
    /// during the batch.
    pub fn try_evaluate_batch(&mut self, units: &[SimUnit]) -> Result<Vec<SimLog>, Cancelled> {
        if self.control.is_cancelled() {
            return Err(Cancelled);
        }
        let _batch_span = ddtr_obs::Span::enter("engine.batch");
        let keys: Vec<CacheKey> = units.iter().map(SimUnit::key).collect();
        let ids: Vec<String> = keys.iter().map(CacheKey::id).collect();
        let mut results: Vec<Option<SimLog>> = vec![None; units.len()];
        self.control.add_total(units.len());
        // Resolve cross-batch hits and pick one executor per distinct id.
        let schedule_span = ddtr_obs::Span::enter("engine.schedule");
        let mut to_run: Vec<usize> = Vec::new();
        let mut scheduled: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut hits = 0;
        {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            for (i, id) in ids.iter().enumerate() {
                if !self.cfg.no_cache {
                    if let Some(log) = cache.get(id) {
                        results[i] = Some(log);
                        hits += 1;
                        continue;
                    }
                }
                if scheduled.insert(id.as_str()) {
                    to_run.push(i);
                }
            }
        }
        drop(schedule_span);
        self.control.add_hits(hits);
        // Execute the misses in parallel, deterministically ordered. Each
        // unit takes a permit from the session's FIFO pool (when bound to
        // one), so concurrent requests interleave at unit granularity, and
        // checks the cancel token so an abandoned batch stops promptly.
        let control = &self.control;
        let pool = self.pool.as_deref();
        let execute_span = ddtr_obs::Span::enter("engine.execute");
        let executed: Vec<Option<SimLog>> = run_ordered(&to_run, self.cfg.jobs, |&i| {
            if control.is_cancelled() {
                return None;
            }
            let permit = pool.map(JobsPool::acquire);
            if control.is_cancelled() {
                return None;
            }
            let log = units[i].simulate();
            // Release the session permit before reporting progress: the
            // observer may block (e.g. writing to a slow client), and a
            // held permit would stall every other request of the session.
            drop(permit);
            control.add_executed();
            ddtr_obs::counter("engine.sim.executed").inc();
            Some(log)
        });
        drop(execute_span);
        // Record the executions (even on a cancelled batch — completed work
        // stays reusable), then satisfy duplicates by identity. With
        // caching disabled, executions are counted but never retained.
        let mut cancelled = false;
        let mut fresh: std::collections::HashMap<&str, SimLog> = std::collections::HashMap::new();
        {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            for (&i, log) in to_run.iter().zip(executed) {
                let Some(log) = log else {
                    cancelled = true;
                    continue;
                };
                if self.cfg.no_cache {
                    cache.note_miss();
                } else {
                    cache.insert(&keys[i], log.clone());
                }
                fresh.insert(ids[i].as_str(), log);
            }
        }
        if cancelled {
            return Err(Cancelled);
        }
        // Duplicates of executed units resolve now; count them done.
        self.control.add_resolved(units.len() - hits - to_run.len());
        Ok(results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(log) => log,
                None => fresh[ids[i].as_str()].clone(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_ddt::DdtKind;
    use ddtr_trace::NetworkPreset;

    fn units_for<'a>(
        trace: &'a Trace,
        params: &'a AppParams,
        combos: &[Combo],
    ) -> Vec<SimUnit<'a>> {
        let fp = fingerprint_trace(trace);
        combos
            .iter()
            .map(|&combo| {
                SimUnit::with_fingerprint(
                    AppKind::Drr,
                    combo,
                    params,
                    trace,
                    fp,
                    MemoryConfig::embedded_default(),
                )
            })
            .collect()
    }

    fn combos() -> Vec<Combo> {
        vec![
            [DdtKind::Array, DdtKind::Array],
            [DdtKind::Sll, DdtKind::Sll],
            [DdtKind::Array, DdtKind::Dll],
            [DdtKind::DllRov, DdtKind::SllChunk],
        ]
    }

    #[test]
    fn batch_results_match_direct_simulation_in_order() {
        let trace = NetworkPreset::DartmouthBerry.generate(50);
        let params = AppParams::default();
        let units = units_for(&trace, &params, &combos());
        let mut engine = ExploreEngine::with_jobs(3);
        let logs = engine.evaluate_batch(&units);
        let sim = Simulator::new(MemoryConfig::embedded_default());
        for (unit, log) in units.iter().zip(&logs) {
            let direct = sim.run(unit.app, unit.combo, unit.params, &trace);
            assert_eq!(log.combo, direct.combo);
            assert_eq!(log.report.accesses, direct.report.accesses);
            assert_eq!(log.report.cycles, direct.report.cycles);
        }
    }

    #[test]
    fn streamed_units_match_materialized_units_and_cache_by_spec() {
        use ddtr_trace::StreamSpec;
        let preset = NetworkPreset::DartmouthBerry;
        let trace = preset.generate(50);
        let params = AppParams::default();
        let materialized = units_for(&trace, &params, &combos());
        let mut spec = preset.spec();
        spec.name = trace.network.clone();
        let stream = StreamSpec::single(spec, 50).expect("valid");
        let streamed: Vec<SimUnit> = combos()
            .iter()
            .map(|&combo| {
                SimUnit::streamed(
                    AppKind::Drr,
                    combo,
                    &params,
                    &stream,
                    MemoryConfig::embedded_default(),
                )
            })
            .collect();
        let mut engine = ExploreEngine::with_jobs(2);
        let a = engine.evaluate_batch(&materialized);
        let b = engine.evaluate_batch(&streamed);
        assert_eq!(
            serde_json::to_string(&a).expect("ser"),
            serde_json::to_string(&b).expect("ser"),
            "streamed batch must be byte-identical to the materialized one"
        );
        // The two paths have distinct (domain-separated) cache keys, so
        // the streamed batch executed rather than replaying trace entries…
        assert_eq!(engine.stats().misses, 2 * combos().len());
        // …but a second streamed batch is answered purely from the cache.
        engine.evaluate_batch(&streamed);
        assert_eq!(engine.stats().misses, 2 * combos().len());
        assert_eq!(engine.stats().hits, combos().len());
    }

    #[test]
    fn streamed_unit_key_is_constant_in_packet_count() {
        use ddtr_trace::StreamSpec;
        let params = AppParams::default();
        let spec_small =
            StreamSpec::single(NetworkPreset::DartmouthBerry.spec(), 100).expect("valid");
        let spec_large =
            StreamSpec::single(NetworkPreset::DartmouthBerry.spec(), 1_000_000).expect("valid");
        let unit = |s| {
            SimUnit::streamed(
                AppKind::Drr,
                [DdtKind::Array, DdtKind::Sll],
                &params,
                s,
                MemoryConfig::embedded_default(),
            )
        };
        // Keying a million-packet workload is instant — nothing is
        // generated or hashed per packet — and the packet count is still
        // part of the identity.
        assert_ne!(unit(&spec_small).key().id(), unit(&spec_large).key().id());
    }

    #[test]
    fn second_batch_is_all_hits() {
        let trace = NetworkPreset::NlanrAix.generate(40);
        let params = AppParams::default();
        let units = units_for(&trace, &params, &combos());
        let mut engine = ExploreEngine::in_memory();
        let first = engine.evaluate_batch(&units);
        assert_eq!(engine.stats().misses, units.len());
        let second = engine.evaluate_batch(&units);
        let stats = engine.stats();
        assert_eq!(stats.misses, units.len(), "no re-execution");
        assert_eq!(stats.hits, units.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report.accesses, b.report.accesses);
        }
    }

    #[test]
    fn no_cache_engine_still_deduplicates_within_a_batch() {
        let trace = NetworkPreset::DartmouthBerry.generate(30);
        let params = AppParams::default();
        let mut both = combos();
        both.extend(combos()); // every unit duplicated
        let units = units_for(&trace, &params, &both);
        let mut engine = ExploreEngine::new(EngineConfig {
            no_cache: true,
            ..EngineConfig::default()
        })
        .expect("engine");
        let logs = engine.evaluate_batch(&units);
        assert_eq!(logs.len(), 8);
        assert_eq!(engine.stats().misses, 4, "four distinct units executed");
        for (a, b) in logs[..4].iter().zip(&logs[4..]) {
            assert_eq!(a.report.accesses, b.report.accesses);
        }
        // And across batches nothing is remembered.
        engine.evaluate_batch(&units);
        assert_eq!(engine.stats().hits, 0);
        assert_eq!(engine.stats().entries, 0, "no_cache retains nothing");
        assert_eq!(engine.stats().misses, 8, "both batches executed in full");
    }

    #[test]
    fn results_are_identical_at_any_worker_count() {
        let trace = NetworkPreset::DartmouthBerry.generate(60);
        let params = AppParams::default();
        let units = units_for(&trace, &params, &combos());
        let reference: Vec<String> = ExploreEngine::with_jobs(1)
            .evaluate_batch(&units)
            .iter()
            .map(|l| serde_json::to_string(l).expect("ser"))
            .collect();
        for jobs in [2, 8] {
            let got: Vec<String> = ExploreEngine::with_jobs(jobs)
                .evaluate_batch(&units)
                .iter()
                .map(|l| serde_json::to_string(l).expect("ser"))
                .collect();
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn cancelled_control_aborts_batches_but_session_stays_usable() {
        use crate::session::{BatchControl, EngineSession};
        let trace = NetworkPreset::DartmouthBerry.generate(30);
        let params = AppParams::default();
        let units = units_for(&trace, &params, &combos());
        let session = EngineSession::new(EngineConfig::with_jobs(1)).expect("session");
        let control = BatchControl::new();
        let mut engine = session.engine_with(control.clone());
        control.cancel();
        assert!(matches!(
            engine.try_evaluate_batch(&units),
            Err(crate::Cancelled)
        ));
        // A fresh engine on the same session is unaffected.
        let logs = session.engine().evaluate_batch(&units);
        assert_eq!(logs.len(), units.len());
    }

    #[test]
    fn control_counts_progress_including_cache_hits_and_duplicates() {
        use crate::session::{BatchControl, BatchProgress, EngineSession};
        let trace = NetworkPreset::DartmouthBerry.generate(30);
        let params = AppParams::default();
        let mut both = combos();
        both.extend(combos()); // duplicates resolve without executing
        let units = units_for(&trace, &params, &both);
        let session = EngineSession::new(EngineConfig::with_jobs(2)).expect("session");
        let control = BatchControl::new();
        let mut engine = session.engine_with(control.clone());
        engine.evaluate_batch(&units);
        assert_eq!(
            control.progress(),
            BatchProgress {
                done: 8,
                total: 8,
                executed: 4,
                hits: 0
            }
        );
        // A second engine with its own control sees only its own progress —
        // all hits this time, resolved instantly.
        let control2 = BatchControl::new();
        let mut warm = session.engine_with(control2.clone());
        warm.evaluate_batch(&units);
        assert_eq!(
            control2.progress(),
            BatchProgress {
                done: 8,
                total: 8,
                executed: 0,
                hits: 8
            }
        );
        assert_eq!(session.stats().misses, 4, "warm batch executed nothing");
    }

    #[test]
    fn persistent_engine_replays_across_instances() {
        let tmp = crate::testing::TempCacheDir::new("engine-replay");
        let trace = NetworkPreset::DartmouthBerry.generate(40);
        let params = AppParams::default();
        let units = units_for(&trace, &params, &combos());
        let cfg = EngineConfig {
            cache_dir: Some(tmp.path().to_path_buf()),
            ..EngineConfig::default()
        };
        let cold = ExploreEngine::new(cfg.clone())
            .expect("cold engine")
            .evaluate_batch(&units);
        let mut warm_engine = ExploreEngine::new(cfg).expect("warm engine");
        let warm = warm_engine.evaluate_batch(&units);
        let stats = warm_engine.stats();
        assert_eq!(stats.loaded, units.len());
        assert_eq!(stats.misses, 0, "warm run executes nothing");
        assert_eq!(stats.hits, units.len());
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.report.accesses, b.report.accesses);
            assert_eq!(a.report.energy_nj, b.report.energy_nj);
        }
    }
}
