//! Enumeration and naming of DDT combinations.

use ddtr_apps::DOMINANT_SLOTS_PER_APP;
use ddtr_ddt::DdtKind;

/// A DDT implementation choice for the application's two dominant slots.
pub type Combo = [DdtKind; DOMINANT_SLOTS_PER_APP];

/// Enumerates all `10^2 = 100` DDT combinations in canonical order — the
/// exhaustive application-level design space of the paper ("if there are
/// two dominant data structures, then we have to simulate 100 times").
///
/// # Example
///
/// ```
/// use ddtr_engine::all_combos;
///
/// let combos = all_combos();
/// assert_eq!(combos.len(), 100);
/// assert_eq!(combos[0][0], combos[0][1]); // AR + AR first
/// ```
#[must_use]
pub fn all_combos() -> Vec<Combo> {
    let mut out = Vec::with_capacity(DdtKind::ALL.len().pow(2));
    for a in DdtKind::ALL {
        for b in DdtKind::ALL {
            out.push([a, b]);
        }
    }
    out
}

/// Enumerates every combination drawn from an explicit candidate set — the
/// exhaustive design space when the library is extended beyond the paper's
/// ten implementations (e.g. [`DdtKind::EXTENDED`] gives `12^2 = 144`).
///
/// # Example
///
/// ```
/// use ddtr_engine::combos_from;
/// use ddtr_ddt::DdtKind;
///
/// assert_eq!(combos_from(&DdtKind::EXTENDED).len(), 144);
/// assert_eq!(combos_from(&DdtKind::ALL).len(), 100);
/// ```
#[must_use]
pub fn combos_from(candidates: &[DdtKind]) -> Vec<Combo> {
    let mut out = Vec::with_capacity(candidates.len().pow(2));
    for &a in candidates {
        for &b in candidates {
            out.push([a, b]);
        }
    }
    out
}

/// Human-readable label of a combination, e.g. `"AR+DLL"`.
#[must_use]
pub fn combo_label(combo: Combo) -> String {
    format!("{}+{}", combo[0], combo[1])
}

/// Parses a label produced by [`combo_label`].
///
/// # Errors
///
/// Returns a message when the label is not `<kind>+<kind>`.
pub fn parse_combo(label: &str) -> Result<Combo, String> {
    let (a, b) = label
        .split_once('+')
        .ok_or_else(|| format!("combo label `{label}` must be `<ddt>+<ddt>`"))?;
    let a: DdtKind = a.parse().map_err(|e| format!("{e}"))?;
    let b: DdtKind = b.parse().map_err(|e| format!("{e}"))?;
    Ok([a, b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_distinct_combos() {
        let combos = all_combos();
        assert_eq!(combos.len(), 100);
        let mut labels: Vec<String> = combos.iter().map(|&c| combo_label(c)).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 100);
    }

    #[test]
    fn label_round_trips() {
        for combo in all_combos() {
            let parsed = parse_combo(&combo_label(combo)).expect("round trip");
            assert_eq!(parsed, combo);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_combo("AR").is_err());
        assert!(parse_combo("AR+BTREE").is_err());
        assert!(parse_combo("FOO+DLL").is_err());
    }

    #[test]
    fn paper_highlight_combo_parses() {
        // Fig. 4b highlights "the combination of array and double linked
        // list DDTs".
        let combo = parse_combo("AR+DLL").expect("paper combo");
        assert_eq!(combo, [DdtKind::Array, DdtKind::Dll]);
    }
}
