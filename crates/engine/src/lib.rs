//! `ddtr_engine` — the simulation-execution engine of the exploration
//! pipeline.
//!
//! The paper's central cost is the exhaustive simulation sweep: thousands
//! of `(application, DDT combination, network configuration)` runs whose
//! logs feed the Pareto analysis. This crate owns *how* those runs are
//! executed, so the methodology layers above it (`ddtr_core`'s steps and
//! NSGA-II) only say *what* to run:
//!
//! * [`run_ordered`] — a work-stealing scheduler with deterministic result
//!   ordering: the same batch yields byte-identical output at any worker
//!   count (`--jobs N` on the CLI).
//! * [`CacheKey`] / [`SimCache`] — a content-addressed result cache backed
//!   by the [`store`] pile format (page-aligned segments, verified on
//!   read, O(1) warm open; JSON-lines kept as the import/export
//!   interchange), making re-exploration incremental: a warm re-run
//!   answers from the cache instead of re-simulating.
//! * [`ExploreEngine::evaluate_batch`] — the batched evaluation API the
//!   steps, the GA population loop and the bench harness all share
//!   (cancellable via [`ExploreEngine::try_evaluate_batch`] and a
//!   [`BatchControl`]).
//! * [`EngineSession`] — the resident-process form: one shared result
//!   cache and one FIFO [`JobsPool`] served to any number of concurrent
//!   requests (the substrate of `ddtr serve`).
//! * [`timing`] — the wall-clock harness behind `BENCH_explore.json`.
//!
//! The primitive simulation types ([`Simulator`], [`SimLog`], [`Combo`])
//! live here too and are re-exported by `ddtr_core` for compatibility.
//!
//! # Example
//!
//! ```
//! use ddtr_engine::{ExploreEngine, SimUnit, all_combos};
//! use ddtr_apps::{AppKind, AppParams};
//! use ddtr_mem::MemoryConfig;
//! use ddtr_trace::NetworkPreset;
//!
//! let trace = NetworkPreset::DartmouthBerry.generate(30);
//! let params = AppParams::default();
//! let units: Vec<SimUnit> = all_combos()[..5].iter()
//!     .map(|&c| SimUnit::new(AppKind::Drr, c, &params, &trace,
//!                            MemoryConfig::embedded_default()))
//!     .collect();
//! let mut engine = ExploreEngine::in_memory();
//! let logs = engine.evaluate_batch(&units);
//! assert_eq!(logs.len(), 5);
//! // The same batch again costs nothing.
//! engine.evaluate_batch(&units);
//! assert_eq!(engine.stats().misses, 5);
//! ```

mod cache;
mod combo;
mod engine;
mod key;
mod scheduler;
mod session;
mod sim;
pub mod store;
pub mod testing;
pub mod timing;

pub use cache::{CacheStats, SimCache, CACHE_FILE};
pub use combo::{all_combos, combo_label, combos_from, parse_combo, Combo};
pub use engine::{EngineConfig, EngineError, ExploreEngine, SimUnit, TraceSource};
pub use key::{
    fingerprint_stream_spec, fingerprint_trace, fingerprint_value, fnv1a64, CacheKey, ConfigKey,
    CACHE_FORMAT_VERSION,
};
pub use scheduler::{effective_jobs, run_ordered};
pub use session::{
    BatchControl, BatchProgress, CancelToken, Cancelled, EngineSession, JobsPermit, JobsPool,
};
pub use sim::{SimLog, Simulator};
pub use store::{CompactReport, PileStore, StoreError, StoreIssue, StoreStats, VerifyReport};
