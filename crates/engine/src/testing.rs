//! Test support: scoped temporary cache directories.
//!
//! Test suites used to hand-roll `std::env::temp_dir().join(...)` paths
//! (or worse, share a working-directory `.ddtr-cache`), which leaked
//! state between runs and across suites. [`TempCacheDir`] gives every
//! test its own directory and removes it on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// An RAII temporary directory for cache/store tests: unique per process
/// *and* per instantiation, created on construction, recursively removed
/// on drop.
///
/// ```
/// let tmp = ddtr_engine::testing::TempCacheDir::new("doc");
/// assert!(tmp.path().is_dir());
/// ```
#[derive(Debug)]
pub struct TempCacheDir {
    path: PathBuf,
}

impl TempCacheDir {
    /// Creates a fresh directory under the system temp dir. `tag` keeps
    /// leftovers attributable when a crashed test skips `Drop`.
    #[must_use]
    pub fn new(tag: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ddtr-test-{tag}-{}-{id}", std::process::id()));
        // A stale directory from a crashed previous run must not leak
        // cache state into this test.
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::create_dir_all(&path);
        TempCacheDir { path }
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    #[must_use]
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_cleaned_up() {
        let first = TempCacheDir::new("unit");
        let second = TempCacheDir::new("unit");
        assert_ne!(first.path(), second.path());
        assert!(first.path().is_dir());
        let kept = first.path().to_path_buf();
        drop(first);
        assert!(!kept.exists(), "drop removes the directory");
        assert!(second.path().is_dir());
    }
}
