//! The pile store: a page-aligned, verified-on-read persistent result
//! cache that opens in O(1).
//!
//! The JSONL cache re-parses every line at open, so warm-start cost grows
//! linearly with cache size — untenable for the multi-million-entry sweep
//! matrices the methodology implies. The pile store replaces it as
//! [`crate::SimCache`]'s persistent backend (JSONL stays as the
//! import/export interchange format):
//!
//! * **Segments** (`seg-NNNNN-<nonce>.ddts`): one 4 KiB header page —
//!   magic, format version, generation counter, published length,
//!   checksum — then fixed-layout records, each zero-padded to 8-byte
//!   alignment. A fixed-width index sidecar (`.idx`) maps key
//!   fingerprints to record offsets; it is a hint, rebuilt by scan when
//!   missing or damaged.
//! * **Verify on read**: every record carries magic, format version,
//!   lengths and an FNV-1a 64 checksum over key+payload; untrusted bytes
//!   never deserialize unchecked — a damaged record is quarantined with
//!   a structured [`StoreError`], never a panic (the `no-panic-boundary`
//!   lint scope covers this module).
//! * **Crash-safe appends**: write the record, `fsync`, *then* publish
//!   the new length in the header ([`segment::SegmentWriter::publish`]).
//!   Complete-but-unpublished tail records are salvaged by scan; torn
//!   ones are detected and skipped.
//! * **O(1) open, shared reads**: [`PileStore::open`] reads only segment
//!   headers — open time is independent of record count (benchmarked in
//!   `BENCH_explore.json`, gated in CI). Any number of processes read
//!   one directory concurrently; each appending process owns its own
//!   `O_EXCL`-created segment, so writers never contend for bytes — that
//!   exclusive ownership is the append lock.
//!
//! The read path goes through one trait — [`pages::PageSource`], `pread`
//! on unix plus an aligned-chunk cache ([`pages::CachedPages`]) — the
//! workspace's `unsafe`-free stand-in for `mmap` (`unsafe_code` is
//! forbidden; see `docs/ARCHITECTURE.md` for the full format).

pub mod format;
pub mod pages;
pub mod pile;
pub mod segment;

pub use pile::{CompactReport, PileStore, SegmentReport, StoreStats, VerifyReport};

use std::fmt;

/// Why a header, index entry or record failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The magic bytes/word did not match.
    BadMagic,
    /// The format version is not the one this build reads.
    BadVersion {
        /// The version found on disk.
        found: u32,
    },
    /// A stored checksum did not match the recomputed one.
    BadChecksum,
    /// A length field is zero or beyond the format's sanity bounds.
    BadLength {
        /// The key length found on disk.
        klen: u32,
        /// The payload length found on disk.
        vlen: u32,
    },
    /// The file ends before the structure does (torn append, truncated
    /// segment, zero-length file).
    Truncated,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::BadMagic => write!(f, "bad magic"),
            CorruptKind::BadVersion { found } => write!(f, "unsupported format version {found}"),
            CorruptKind::BadChecksum => write!(f, "checksum mismatch"),
            CorruptKind::BadLength { klen, vlen } => {
                write!(f, "implausible lengths (key {klen}, payload {vlen})")
            }
            CorruptKind::Truncated => write!(f, "truncated"),
        }
    }
}

/// A structured store failure: an I/O error, or located corruption.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// Verification failed at a specific place.
    Corrupt {
        /// File name of the segment (or sidecar) involved.
        segment: String,
        /// Byte offset of the damage, relative to the record region for
        /// records and to the file start for headers.
        offset: u64,
        /// What exactly failed.
        kind: CorruptKind,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store I/O error: {err}"),
            StoreError::Corrupt {
                segment,
                offset,
                kind,
            } => write!(
                f,
                "corrupt store data in {segment} at offset {offset}: {kind}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// One detected-and-survived corruption: the record (or index entry /
/// header) was quarantined — skipped, reported, never served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreIssue {
    /// File name the damage lives in.
    pub segment: String,
    /// Byte offset of the damage (record-region relative for records).
    pub offset: u64,
    /// What failed.
    pub kind: CorruptKind,
}

impl fmt::Display for StoreIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at offset {}: {}",
            self.segment, self.offset, self.kind
        )
    }
}
