//! [`PileStore`]: the directory-level store — segment discovery, the
//! lazy fingerprint index, verified lookups, appends, verify and
//! compaction.

use super::format::{encode_record, Record, PAGE, REC_HEADER_LEN};
use super::segment::{
    file_name_of, idx_path_of, load_index, SegmentReader, SegmentWriter, SEG_EXT,
};
use super::{CorruptKind, StoreError, StoreIssue};
use crate::key::fnv1a64;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Newest payload per key, sorted — the shape compaction and export
/// walk.
type LatestByKey = BTreeMap<Vec<u8>, Vec<u8>>;

/// Appends per automatic publish: the batch size of the fsync-then-
/// publish protocol. Unpublished records are still readable on the same
/// machine (tail salvage); publishing bounds what a crash can lose.
const PUBLISH_EVERY: u64 = 64;

/// Default segment rollover size (record-region bytes).
const DEFAULT_MAX_SEGMENT_BYTES: u64 = 256 * 1024 * 1024;

/// Process-wide creation counter feeding writer nonces.
static NONCE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_nonce() -> u64 {
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
        .unwrap_or(0);
    let count = NONCE_COUNTER.fetch_add(1, Ordering::Relaxed);
    clock ^ (u64::from(std::process::id()) << 16) ^ count.rotate_left(48) | 1
}

/// Where one record lives.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: usize,
    offset: u64,
}

/// The lazily built in-memory index: key fingerprint → record locations
/// in discovery order (lookups walk candidates newest-first; the map is
/// only ever *probed*, never iterated, so hash order cannot leak into
/// results).
struct Index {
    map: HashMap<u64, Vec<Loc>>,
    records: u64,
}

/// One discovered segment file. A segment whose header failed
/// verification is kept as a quarantined slot (`reader: None`) so
/// verify/compact/clear still account for it.
struct Slot {
    path: PathBuf,
    reader: Option<SegmentReader>,
}

struct ActiveWriter {
    slot: usize,
    writer: SegmentWriter,
}

/// Per-segment result of a full [`PileStore::verify`] walk.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Segment file name.
    pub name: String,
    /// Generation counter from the header (0 when the header itself is
    /// quarantined).
    pub generation: u64,
    /// Record count the header publishes.
    pub committed_records: u64,
    /// Records that fully verified (including salvageable unpublished
    /// tail records).
    pub records_ok: u64,
    /// Bytes of the record region present on disk.
    pub data_bytes: u64,
    /// Every corruption found in this segment (empty when clean).
    pub issues: Vec<StoreIssue>,
}

/// Result of a full store verification walk.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Per-segment findings, in segment order.
    pub segments: Vec<SegmentReport>,
}

impl VerifyReport {
    /// Total records that verified across all segments.
    #[must_use]
    pub fn records_ok(&self) -> u64 {
        self.segments.iter().map(|s| s.records_ok).sum()
    }

    /// Total corruption findings across all segments.
    #[must_use]
    pub fn issue_count(&self) -> usize {
        self.segments.iter().map(|s| s.issues.len()).sum()
    }

    /// Whether the walk found no corruption at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.issue_count() == 0
    }
}

/// Result of a [`PileStore::compact`].
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Records read from the old segments (duplicates included).
    pub records_in: u64,
    /// Distinct records written to the fresh segment.
    pub records_out: u64,
    /// Segment files removed.
    pub segments_removed: usize,
    /// The new generation counter.
    pub generation: u64,
}

/// Summary counters for `ddtr cache stats`.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Segment files present.
    pub segments: usize,
    /// Records reachable (duplicates included).
    pub records: u64,
    /// Distinct key fingerprints.
    pub distinct: u64,
    /// Total on-disk bytes (segments plus index sidecars).
    pub bytes: u64,
    /// Highest generation counter among the segments.
    pub generation: u64,
    /// Corruption findings recorded so far on this handle.
    pub issues: usize,
}

/// The directory-level pile store. See the [module docs](super) for the
/// format and protocol; the short version: O(1) open (headers only),
/// verify-on-read lookups, crash-safe batched publishing, one
/// exclusively owned segment per writing process.
pub struct PileStore {
    dir: PathBuf,
    slots: Vec<Slot>,
    writer: Option<ActiveWriter>,
    index: Option<Index>,
    issues: Vec<StoreIssue>,
    generation: u64,
    next_seq: u32,
    committed_at_open: u64,
    appended: u64,
    unpublished: u64,
    max_segment_bytes: u64,
}

impl PileStore {
    /// Opens (creating if needed) the store under `dir`. Reads one
    /// header page per segment and nothing else — open cost is
    /// independent of record count. Segments with damaged headers are
    /// quarantined (recorded in [`PileStore::issues`]), never fatal.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created or
    /// listed, or a segment file cannot be opened at all.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("seg-") && name.ends_with(&format!(".{SEG_EXT}")) {
                names.push(name);
            }
        }
        names.sort();
        let mut slots = Vec::with_capacity(names.len());
        let mut issues = Vec::new();
        let mut generation = 0;
        let mut next_seq = 0;
        let mut committed = 0;
        for name in &names {
            let path = dir.join(name);
            next_seq = next_seq.max(parse_seq(name).map_or(0, |s| s.saturating_add(1)));
            match SegmentReader::open(&path) {
                Ok(reader) => {
                    generation = generation.max(reader.header.generation);
                    committed += reader.header.committed_records;
                    slots.push(Slot {
                        path,
                        reader: Some(reader),
                    });
                }
                Err(StoreError::Corrupt {
                    segment,
                    offset,
                    kind,
                }) => {
                    issues.push(StoreIssue {
                        segment,
                        offset,
                        kind,
                    });
                    ddtr_obs::counter("engine.store.corrupt").inc();
                    slots.push(Slot { path, reader: None });
                }
                Err(StoreError::Io(err)) => return Err(StoreError::Io(err)),
            }
        }
        Ok(PileStore {
            dir: dir.to_path_buf(),
            slots,
            writer: None,
            index: None,
            issues,
            generation,
            next_seq,
            committed_at_open: committed,
            appended: 0,
            unpublished: 0,
            max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records published across all segments when this handle opened
    /// (unpublished tail records surface later, via the lazy index).
    #[must_use]
    pub fn committed_at_open(&self) -> u64 {
        self.committed_at_open
    }

    /// Records appended through this handle.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of segment files (quarantined ones included).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.slots.len()
    }

    /// The store's current generation counter (bumped by compaction).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Every corruption this handle has detected and survived so far.
    #[must_use]
    pub fn issues(&self) -> &[StoreIssue] {
        &self.issues
    }

    /// Overrides the segment rollover size (tests force tiny segments).
    pub fn set_max_segment_bytes(&mut self, bytes: u64) {
        self.max_segment_bytes = bytes.max(1);
    }

    /// Looks up the newest record for `key`, fully verifying it before
    /// returning the payload. Corrupt candidates are quarantined
    /// (recorded in [`PileStore::issues`], dropped from the index) and
    /// the lookup falls through — a damaged entry reads as a miss, never
    /// a panic or a wrong answer.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only — corruption is never an error here.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.ensure_index()?;
        let fp = fnv1a64(key);
        let PileStore {
            index,
            slots,
            issues,
            ..
        } = self;
        let Some(locs) = index.as_mut().and_then(|i| i.map.get_mut(&fp)) else {
            return Ok(None);
        };
        let mut i = locs.len();
        while i > 0 {
            i -= 1;
            let Some(loc) = locs.get(i).copied() else {
                break;
            };
            let Some(reader) = slots.get(loc.seg).and_then(|s| s.reader.as_ref()) else {
                locs.remove(i);
                continue;
            };
            match reader.read_record(loc.offset) {
                Ok(rec) if rec.key == key => return Ok(Some(rec.payload)),
                Ok(_) => {} // fingerprint collision — keep probing
                Err(StoreError::Corrupt {
                    segment,
                    offset,
                    kind,
                }) => {
                    locs.remove(i);
                    issues.push(StoreIssue {
                        segment,
                        offset,
                        kind,
                    });
                    ddtr_obs::counter("engine.store.corrupt").inc();
                }
                Err(StoreError::Io(err)) => return Err(StoreError::Io(err)),
            }
        }
        Ok(None)
    }

    /// Appends one record through this handle's exclusively owned
    /// segment (created on first use — read-only stores never litter).
    /// The bytes are written immediately; durability publishing is
    /// batched (every 64 appends, on [`PileStore::flush`] and on drop).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be created or written.
    pub fn append(&mut self, key: &[u8], payload: &[u8]) -> Result<(), StoreError> {
        let record = encode_record(key, payload);
        self.ensure_writer()?;
        let fp = fnv1a64(key);
        let Some(active) = self.writer.as_mut() else {
            return Err(StoreError::Io(io::Error::other(
                "writer vanished during append",
            )));
        };
        let offset = active.writer.append(&record, fp).map_err(StoreError::Io)?;
        let seg = active.slot;
        let full = active.writer.data_len() >= self.max_segment_bytes;
        if let Some(index) = self.index.as_mut() {
            index.map.entry(fp).or_default().push(Loc { seg, offset });
            index.records += 1;
        }
        self.appended += 1;
        self.unpublished += 1;
        if self.unpublished >= PUBLISH_EVERY || full {
            self.flush().map_err(StoreError::Io)?;
        }
        if full {
            // Roll over: the next append starts a fresh segment.
            self.writer = None;
        }
        Ok(())
    }

    /// Publishes everything appended so far (fsync, then header update,
    /// then fsync — see [`SegmentWriter::publish`]).
    ///
    /// # Errors
    ///
    /// Propagates the publish I/O error; already-published state stays
    /// valid.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(active) = self.writer.as_mut() {
            active.writer.publish()?;
        }
        self.unpublished = 0;
        Ok(())
    }

    /// Number of distinct key fingerprints reachable (builds the index).
    ///
    /// # Errors
    ///
    /// Propagates index-build I/O errors.
    pub fn distinct_keys(&mut self) -> Result<u64, StoreError> {
        self.ensure_index()?;
        Ok(self.index.as_ref().map_or(0, |i| i.map.len() as u64))
    }

    /// Total records reachable, duplicates included (builds the index).
    ///
    /// # Errors
    ///
    /// Propagates index-build I/O errors.
    pub fn reachable_records(&mut self) -> Result<u64, StoreError> {
        self.ensure_index()?;
        Ok(self.index.as_ref().map_or(0, |i| i.records))
    }

    /// Summary counters for `ddtr cache stats` (builds the index).
    ///
    /// # Errors
    ///
    /// Propagates index-build or metadata I/O errors.
    pub fn stats(&mut self) -> Result<StoreStats, StoreError> {
        self.ensure_index()?;
        let mut bytes = 0;
        for slot in &self.slots {
            bytes += std::fs::metadata(&slot.path).map(|m| m.len()).unwrap_or(0);
            bytes += std::fs::metadata(idx_path_of(&slot.path))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        Ok(StoreStats {
            segments: self.slots.len(),
            records: self.index.as_ref().map_or(0, |i| i.records),
            distinct: self.index.as_ref().map_or(0, |i| i.map.len() as u64),
            bytes,
            generation: self.generation,
            issues: self.issues.len(),
        })
    }

    /// Visits the newest payload of every distinct key, in ascending key
    /// order (deterministic — the walk is segment-by-segment and the
    /// dedup map is ordered). The walk is a full verified scan, so it
    /// also recovers records a damaged index would hide.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is skipped and recorded.
    pub fn for_each_latest(
        &mut self,
        mut visit: impl FnMut(&[u8], &[u8]),
    ) -> Result<(), StoreError> {
        let (latest, _raw) = self.collect_latest()?;
        for (key, payload) in &latest {
            visit(key, payload);
        }
        Ok(())
    }

    /// Full verified walk of every segment — headers, every committed
    /// record, and the unpublished tail. Nothing is mutated; every
    /// finding is reported, none served.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors only; corruption lands in the report.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut segments = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let name = file_name_of(&slot.path);
            // Re-open fresh: verify must see current headers, not the
            // snapshot this handle took at open time.
            match SegmentReader::open(&slot.path) {
                Ok(reader) => {
                    let mut issues = Vec::new();
                    let mut ok = 0;
                    full_walk(&reader, &slot.path, &mut issues, |_, _| ok += 1)?;
                    segments.push(SegmentReport {
                        name,
                        generation: reader.header.generation,
                        committed_records: reader.header.committed_records,
                        records_ok: ok,
                        data_bytes: reader.data_len().map_err(StoreError::Io)?,
                        issues,
                    });
                }
                Err(StoreError::Corrupt {
                    segment,
                    offset,
                    kind,
                }) => {
                    let data_bytes = std::fs::metadata(&slot.path)
                        .map(|m| m.len().saturating_sub(PAGE))
                        .unwrap_or(0);
                    segments.push(SegmentReport {
                        name,
                        generation: 0,
                        committed_records: 0,
                        records_ok: 0,
                        data_bytes,
                        issues: vec![StoreIssue {
                            segment,
                            offset,
                            kind,
                        }],
                    });
                }
                Err(StoreError::Io(err)) => return Err(StoreError::Io(err)),
            }
        }
        Ok(VerifyReport { segments })
    }

    /// Rewrites the store: every reachable record's newest version goes
    /// into one fresh segment under a bumped generation counter, then
    /// the old segments (including quarantined and damaged ones) are
    /// deleted. Run this while no other process is appending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the rewrite fails — the old segments are
    /// only deleted after the new one is fully published.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        let (latest, raw) = self.collect_latest()?;
        // Seal the current writer and remember every old file.
        self.flush().map_err(StoreError::Io)?;
        self.writer = None;
        let old_paths: Vec<PathBuf> = self.slots.iter().map(|s| s.path.clone()).collect();
        let removed = old_paths.len();
        self.slots.clear();
        self.index = None;
        self.generation = self.generation.saturating_add(1);
        let records_out = latest.len() as u64;
        for (key, payload) in &latest {
            self.append(key, payload)?;
        }
        self.flush().map_err(StoreError::Io)?;
        // The fresh segment is durable; the old files can go. The new
        // writer's slot was appended after the clear, so old_paths holds
        // exactly the pre-compact files.
        for path in &old_paths {
            let _ = std::fs::remove_file(path);
            let _ = std::fs::remove_file(idx_path_of(path));
        }
        // Positions shifted: rebuild the index lazily against the new
        // slot layout.
        self.index = None;
        if let Some(active) = self.writer.as_mut() {
            active.slot = 0;
        }
        Ok(CompactReport {
            records_in: raw,
            records_out,
            segments_removed: removed,
            generation: self.generation,
        })
    }

    /// Removes every store file under `dir` (segments, index sidecars).
    /// Returns whether anything existed. The directory itself is kept.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing or removal I/O errors.
    pub fn clear_dir(dir: &Path) -> io::Result<bool> {
        if !dir.exists() {
            return Ok(false);
        }
        let mut removed = false;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_store_file = name.starts_with("seg-")
                && (name.ends_with(&format!(".{SEG_EXT}")) || name.ends_with(".idx"));
            if is_store_file {
                std::fs::remove_file(entry.path())?;
                removed = true;
            }
        }
        Ok(removed)
    }

    /// Whether `dir` contains any store segment.
    #[must_use]
    pub fn exists(dir: &Path) -> bool {
        std::fs::read_dir(dir).is_ok_and(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with("seg-") && name.ends_with(&format!(".{SEG_EXT}"))
            })
        })
    }

    /// Builds the newest-payload-per-key map via a full verified scan,
    /// returning it plus the raw (duplicate-inclusive) record count.
    fn collect_latest(&mut self) -> Result<(LatestByKey, u64), StoreError> {
        // Make sure this handle's own unindexed appends are on disk.
        self.flush().map_err(StoreError::Io)?;
        let mut latest = BTreeMap::new();
        let mut raw = 0;
        let mut issues = Vec::new();
        for slot in &self.slots {
            let Some(reader) = &slot.reader else { continue };
            full_walk(reader, &slot.path, &mut issues, |_, rec| {
                latest.insert(rec.key.clone(), rec.payload.clone());
                raw += 1;
            })?;
        }
        self.note_issues(issues);
        Ok((latest, raw))
    }

    fn ensure_index(&mut self) -> Result<(), StoreError> {
        if self.index.is_some() {
            return Ok(());
        }
        let mut map: HashMap<u64, Vec<Loc>> = HashMap::new();
        let mut records = 0;
        let mut issues = Vec::new();
        for (seg, slot) in self.slots.iter().enumerate() {
            let Some(reader) = &slot.reader else { continue };
            let data_len = reader.data_len().map_err(StoreError::Io)?;
            let entries = load_index(&slot.path, &reader.header, &mut issues);
            let mut covered = 0u64;
            for entry in &entries {
                let end = entry.offset.saturating_add(u64::from(entry.len));
                if end <= data_len && entry.len as usize >= super::format::REC_HEADER_LEN {
                    map.entry(entry.key_fp).or_default().push(Loc {
                        seg,
                        offset: entry.offset,
                    });
                    records += 1;
                    covered = covered.max(end);
                } else {
                    issues.push(StoreIssue {
                        segment: file_name_of(&slot.path),
                        offset: entry.offset,
                        kind: CorruptKind::BadLength {
                            klen: 0,
                            vlen: entry.len,
                        },
                    });
                }
            }
            // Records the sidecar does not cover yet: the unpublished
            // tail, or everything when the sidecar was unusable.
            reader
                .scan(covered, &mut issues, |offset, rec| {
                    map.entry(fnv1a64(&rec.key))
                        .or_default()
                        .push(Loc { seg, offset });
                    records += 1;
                })
                .map_err(StoreError::Io)?;
        }
        self.note_issues(issues);
        self.index = Some(Index { map, records });
        Ok(())
    }

    fn ensure_writer(&mut self) -> Result<(), StoreError> {
        if self.writer.is_some() {
            return Ok(());
        }
        for _ in 0..64 {
            let seq = self.next_seq;
            let nonce = fresh_nonce();
            let name = format!("seg-{seq:05}-{nonce:016x}.{SEG_EXT}");
            let path = self.dir.join(&name);
            match SegmentWriter::create(&path, self.generation, nonce) {
                Ok(writer) => {
                    self.next_seq = seq.saturating_add(1);
                    let reader = SegmentReader::open(&path)?;
                    self.slots.push(Slot {
                        path,
                        reader: Some(reader),
                    });
                    self.writer = Some(ActiveWriter {
                        slot: self.slots.len() - 1,
                        writer,
                    });
                    return Ok(());
                }
                Err(err) if err.kind() == io::ErrorKind::AlreadyExists => {
                    self.next_seq = self.next_seq.saturating_add(1);
                }
                Err(err) => return Err(StoreError::Io(err)),
            }
        }
        Err(StoreError::Io(io::Error::other(
            "could not create a fresh segment after 64 attempts",
        )))
    }

    fn note_issues(&mut self, new: Vec<StoreIssue>) {
        if !new.is_empty() {
            ddtr_obs::counter("engine.store.corrupt").add(new.len() as u64);
            self.issues.extend(new);
        }
    }
}

impl Drop for PileStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl std::fmt::Debug for PileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PileStore")
            .field("dir", &self.dir)
            .field("segments", &self.slots.len())
            .field("generation", &self.generation)
            .field("appended", &self.appended)
            .field("issues", &self.issues.len())
            .finish()
    }
}

/// Parses the sequence number out of `seg-NNNNN-<nonce>.ddts`.
fn parse_seq(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?.get(0..5)?.parse().ok()
}

/// Visits every verifiable record of one segment, using the
/// self-checksummed index sidecar to resync across records whose
/// *headers* are stomped (a raw scan cannot find the next boundary
/// there). Falls back to a plain scan where the sidecar stops helping,
/// so a store with no usable index is still fully walkable.
fn full_walk(
    reader: &SegmentReader,
    seg_path: &Path,
    issues: &mut Vec<StoreIssue>,
    mut visit: impl FnMut(u64, &Record),
) -> Result<u64, StoreError> {
    let entries = load_index(seg_path, &reader.header, issues);
    let data_len = reader.data_len().map_err(StoreError::Io)?;
    let mut at = 0u64;
    for entry in &entries {
        // The sidecar is contiguous by construction; a gap or an
        // implausible entry means it stopped being trustworthy here.
        let end = entry.offset.saturating_add(u64::from(entry.len));
        if entry.offset != at || end > data_len || (entry.len as usize) < REC_HEADER_LEN {
            break;
        }
        match reader.read_record(entry.offset) {
            Ok(rec) => visit(entry.offset, &rec),
            Err(StoreError::Corrupt {
                segment,
                offset,
                kind,
            }) => issues.push(StoreIssue {
                segment,
                offset,
                kind,
            }),
            Err(StoreError::Io(err)) => return Err(StoreError::Io(err)),
        }
        at = end;
    }
    // The unindexed tail — or the whole segment when no sidecar helped.
    reader
        .scan(at, issues, |offset, rec| visit(offset, rec))
        .map_err(StoreError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ddtr-pile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = temp_dir("rt");
        {
            let mut store = PileStore::open(&dir).expect("open");
            store.append(b"k1", b"v1").expect("append");
            store.append(b"k2", b"v2").expect("append");
            assert_eq!(store.get(b"k1").expect("get"), Some(b"v1".to_vec()));
        }
        let mut reopened = PileStore::open(&dir).expect("reopen");
        assert_eq!(reopened.committed_at_open(), 2, "drop published");
        assert_eq!(reopened.get(b"k2").expect("get"), Some(b"v2".to_vec()));
        assert_eq!(reopened.get(b"nope").expect("get"), None);
        assert!(reopened.verify().expect("verify").is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_append_wins_and_compact_dedups() {
        let dir = temp_dir("dedup");
        let mut store = PileStore::open(&dir).expect("open");
        store.append(b"k", b"old").expect("append");
        store.append(b"k", b"new").expect("append");
        assert_eq!(store.get(b"k").expect("get"), Some(b"new".to_vec()));
        let report = store.compact().expect("compact");
        assert_eq!(report.records_out, 1);
        assert_eq!(report.generation, 1);
        assert_eq!(store.get(b"k").expect("get"), Some(b"new".to_vec()));
        assert_eq!(store.segment_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rollover_spreads_records() {
        let dir = temp_dir("roll");
        let mut store = PileStore::open(&dir).expect("open");
        store.set_max_segment_bytes(256);
        for i in 0..20 {
            let key = format!("key-{i}");
            store
                .append(key.as_bytes(), b"payload-payload")
                .expect("append");
        }
        assert!(store.segment_count() > 1, "rollover splits segments");
        for i in 0..20 {
            let key = format!("key-{i}");
            assert!(store.get(key.as_bytes()).expect("get").is_some(), "{key}");
        }
        let mut reopened = PileStore::open(&dir).expect("reopen");
        assert_eq!(
            reopened.distinct_keys().expect("distinct"),
            20,
            "all records survive reopen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_writers_share_one_directory() {
        let dir = temp_dir("share");
        let mut a = PileStore::open(&dir).expect("open a");
        let mut b = PileStore::open(&dir).expect("open b");
        a.append(b"from-a", b"1").expect("append a");
        b.append(b"from-b", b"2").expect("append b");
        a.flush().expect("flush a");
        b.flush().expect("flush b");
        let mut fresh = PileStore::open(&dir).expect("open fresh");
        assert_eq!(fresh.get(b"from-a").expect("get"), Some(b"1".to_vec()));
        assert_eq!(fresh.get(b"from-b").expect("get"), Some(b"2".to_vec()));
        assert_eq!(fresh.segment_count(), 2, "one exclusive segment each");
        assert!(fresh.verify().expect("verify").is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_order_is_key_sorted() {
        let dir = temp_dir("order");
        let mut store = PileStore::open(&dir).expect("open");
        store.append(b"zebra", b"1").expect("append");
        store.append(b"alpha", b"2").expect("append");
        let mut keys = Vec::new();
        store
            .for_each_latest(|k, _| keys.push(k.to_vec()))
            .expect("walk");
        assert_eq!(keys, vec![b"alpha".to_vec(), b"zebra".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
