//! The read path's one abstraction: positional byte access to an
//! immutable-once-written file.
//!
//! A real `mmap` needs `unsafe` (forbidden workspace-wide), so the store
//! gets the same access pattern — random positional reads with no shared
//! cursor, cheap enough to issue per record — from [`PageSource`]:
//! `pread` on unix ([`std::os::unix::fs::FileExt::read_at`] is a safe
//! API), a seek-under-mutex fallback elsewhere, and [`CachedPages`], a
//! small aligned-chunk cache that gives clustered lookups memory-speed
//! re-reads, the way a mapped page stays hot after its first fault.

use std::fs::File;
use std::io;
use std::sync::Mutex;

/// Positional reads into a file that only ever grows at the tail.
pub trait PageSource {
    /// Current length of the underlying file in bytes.
    ///
    /// # Errors
    ///
    /// Propagates the metadata query's I/O error.
    fn len(&self) -> io::Result<u64>;

    /// Whether the underlying file is currently empty.
    ///
    /// # Errors
    ///
    /// Propagates the metadata query's I/O error.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads up to `buf.len()` bytes at `offset`, returning how many were
    /// read (0 at end of file). Never moves any shared cursor.
    ///
    /// # Errors
    ///
    /// Propagates the positional read's I/O error.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Fills `buf` entirely from `offset`, or fails with
    /// [`io::ErrorKind::UnexpectedEof`] when the file is too short.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; short files surface as `UnexpectedEof`.
    fn read_exact_at(&self, mut offset: u64, mut buf: &mut [u8]) -> io::Result<()> {
        while !buf.is_empty() {
            let n = self.read_at(offset, buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "positional read past end of file",
                ));
            }
            offset += n as u64;
            buf = buf.get_mut(n..).unwrap_or(&mut []);
        }
        Ok(())
    }
}

/// `pread`-backed [`PageSource`] over one open file descriptor.
#[derive(Debug)]
pub struct FilePages {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl FilePages {
    /// Wraps an open (read-capable) file.
    #[must_use]
    pub fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            FilePages { file }
        }
        #[cfg(not(unix))]
        {
            FilePages {
                file: Mutex::new(file),
            }
        }
    }
}

#[cfg(unix)]
impl PageSource for FilePages {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(&self.file, buf, offset)
    }
}

#[cfg(not(unix))]
impl PageSource for FilePages {
    fn len(&self) -> io::Result<u64> {
        let file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(file.metadata()?.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.seek(SeekFrom::Start(offset))?;
        file.read(buf)
    }
}

/// Chunk size of [`CachedPages`] — a small multiple of the 4 KiB segment
/// page so one cached chunk usually covers a whole record.
pub const CHUNK_BYTES: usize = 32 * 1024;

/// How many chunks one [`CachedPages`] retains (LRU), bounding each open
/// segment reader to ~1 MiB of cache.
pub const CHUNK_CAPACITY: usize = 32;

/// One cached aligned chunk. `valid` may be short when the chunk covered
/// the growing tail of the file at read time; a later request past
/// `valid` re-reads the chunk, so appends are never masked by stale
/// cached zeros.
struct Chunk {
    /// Chunk index (`file offset / CHUNK_BYTES`).
    no: u64,
    /// Bytes actually read into `data`.
    valid: usize,
    /// The chunk bytes.
    data: Vec<u8>,
}

/// An aligned-chunk read cache over any [`PageSource`] — the store's
/// stand-in for the page cache an `mmap` would borrow from the kernel.
///
/// Deterministic by construction: a `Vec` in most-recently-used order
/// (no hash-order anywhere), and reads are pure so cache state never
/// changes observable bytes.
pub struct CachedPages<S> {
    inner: S,
    chunks: Mutex<Vec<Chunk>>,
}

impl<S: PageSource> CachedPages<S> {
    /// Wraps a source with an empty cache.
    #[must_use]
    pub fn new(inner: S) -> Self {
        CachedPages {
            inner,
            chunks: Mutex::new(Vec::new()),
        }
    }

    /// Looks up a chunk, returning a copy of the requested span when the
    /// cached chunk covers `[start, start+len)` fully.
    fn cached_span(&self, no: u64, start: usize, len: usize) -> Option<Vec<u8>> {
        let mut chunks = self
            .chunks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let at = chunks.iter().position(|c| c.no == no)?;
        if start + len > chunks.get(at)?.valid {
            return None;
        }
        // Move to the MRU end, then copy the span out.
        let chunk = chunks.remove(at);
        let span = chunk.data.get(start..start + len).map(<[u8]>::to_vec);
        chunks.push(chunk);
        span
    }

    /// Inserts a freshly read chunk, evicting the least-recently-used
    /// one past capacity.
    fn install(&self, no: u64, valid: usize, data: Vec<u8>) {
        let mut chunks = self
            .chunks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        chunks.retain(|c| c.no != no);
        chunks.push(Chunk { no, valid, data });
        if chunks.len() > CHUNK_CAPACITY {
            chunks.remove(0);
        }
    }
}

impl<S: PageSource> PageSource for CachedPages<S> {
    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let no = offset / CHUNK_BYTES as u64;
        let start = (offset % CHUNK_BYTES as u64) as usize;
        // Serve what fits inside this one chunk; callers loop for more.
        let want = buf.len().min(CHUNK_BYTES - start);
        if let Some(span) = self.cached_span(no, start, want) {
            if let Some(dst) = buf.get_mut(0..span.len()) {
                dst.copy_from_slice(&span);
            }
            return Ok(span.len());
        }
        // Miss (or a previously short chunk): read the whole aligned
        // chunk once, install it, serve from the fresh copy.
        let mut data = vec![0u8; CHUNK_BYTES];
        let mut valid = 0;
        loop {
            let slice = data.get_mut(valid..).unwrap_or(&mut []);
            if slice.is_empty() {
                break;
            }
            let n = self
                .inner
                .read_at(no * CHUNK_BYTES as u64 + valid as u64, slice)?;
            if n == 0 {
                break;
            }
            valid += n;
        }
        let served = want.min(valid.saturating_sub(start));
        if let (Some(dst), Some(src)) = (buf.get_mut(0..served), data.get(start..start + served)) {
            dst.copy_from_slice(src);
        }
        self.install(no, valid, data);
        Ok(served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, bytes: &[u8]) -> File {
        let path = std::env::temp_dir().join(format!(
            "ddtr-pages-{tag}-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        let mut f = File::create(&path).expect("create");
        f.write_all(bytes).expect("write");
        File::open(&path).expect("reopen")
    }

    #[test]
    fn file_pages_reads_positionally() {
        let src = FilePages::new(temp_file("pread", b"hello positional world"));
        let mut buf = [0u8; 10];
        src.read_exact_at(6, &mut buf).expect("read");
        assert_eq!(&buf, b"positional");
        assert_eq!(src.len().expect("len"), 22);
    }

    #[test]
    fn cached_pages_serves_identical_bytes_and_handles_growth() {
        let path = std::env::temp_dir().join(format!("ddtr-pages-grow-{}", std::process::id()));
        let mut writer = File::create(&path).expect("create");
        writer.write_all(b"first half").expect("write");
        writer.flush().expect("flush");
        let cached = CachedPages::new(FilePages::new(File::open(&path).expect("open")));
        let mut buf = [0u8; 10];
        cached.read_exact_at(0, &mut buf).expect("read");
        assert_eq!(&buf, b"first half");
        // The file grows past what the cached (short) chunk saw; the next
        // read must see the new bytes, not stale zeros.
        writer.write_all(b" and the rest").expect("append");
        writer.flush().expect("flush");
        let mut grown = [0u8; 23];
        cached.read_exact_at(0, &mut grown).expect("read grown");
        assert_eq!(&grown[..], b"first half and the rest");
        // And a repeated read is served from cache, still byte-identical.
        let mut again = [0u8; 23];
        cached.read_exact_at(0, &mut again).expect("reread");
        assert_eq!(grown, again);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cached_pages_crosses_chunk_boundaries() {
        let mut bytes = vec![0u8; CHUNK_BYTES + 100];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let cached = CachedPages::new(FilePages::new(temp_file("cross", &bytes)));
        let mut buf = vec![0u8; 200];
        let at = CHUNK_BYTES as u64 - 100;
        cached.read_exact_at(at, &mut buf).expect("read");
        assert_eq!(buf, bytes[CHUNK_BYTES - 100..CHUNK_BYTES + 100].to_vec());
    }
}
