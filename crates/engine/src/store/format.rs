//! On-disk layout of the pile store: byte-level encode/decode of segment
//! headers, index headers, index entries and records.
//!
//! Everything in this module is pure bytes-in/bytes-out — no I/O — so the
//! corruption-injection and property suites can exercise every decode
//! path directly. All integers are little-endian. Decoders never trust
//! their input: every accessor bounds-checks and returns a
//! [`CorruptKind`] instead of slicing blind.

use super::{CorruptKind, StoreError};
use crate::key::fnv1a64;

/// Magic bytes opening every data segment file.
pub const SEG_MAGIC: [u8; 8] = *b"DDTRPILE";
/// Magic bytes opening every index sidecar file.
pub const IDX_MAGIC: [u8; 8] = *b"DDTRPIDX";
/// Magic word opening every record.
pub const REC_MAGIC: u32 = 0xD7A7_CA5E;
/// Version of the store's on-disk layout. Bumping it orphans old
/// segments (they are quarantined, not misread).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Segment files start with one page-aligned header; records follow it.
pub const PAGE: u64 = 4096;
/// Meaningful bytes of the segment header (rest of the page is zero).
pub const SEG_HEADER_LEN: usize = 56;
/// Bytes of the index sidecar header.
pub const IDX_HEADER_LEN: usize = 40;
/// Bytes of one fixed-width index entry.
pub const IDX_ENTRY_LEN: usize = 32;
/// Bytes of one record header (key and payload bytes follow).
pub const REC_HEADER_LEN: usize = 24;
/// Records are zero-padded to this alignment.
pub const REC_ALIGN: u64 = 8;
/// Upper bound on one key's length — anything larger is corruption.
pub const MAX_KEY_LEN: u32 = 1 << 16;
/// Upper bound on one payload's length — anything larger is corruption.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 28;

/// The mutable fields of a segment header (the generation counter, the
/// published length and the record count), plus the writer nonce tying
/// the segment to its index sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegHeader {
    /// Compaction generation this segment belongs to.
    pub generation: u64,
    /// Published (fsynced) bytes of the record region, excluding the
    /// header page.
    pub committed_bytes: u64,
    /// Published record count.
    pub committed_records: u64,
    /// Random-ish id stamped by the creating writer; the index sidecar
    /// repeats it so a stale `.idx` from a recreated segment is rejected.
    pub writer_nonce: u64,
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at + 4)?.try_into().ok().map(u32::from_le_bytes)
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at + 8)?.try_into().ok().map(u64::from_le_bytes)
}

impl SegHeader {
    /// Encodes the header into its on-disk form (one [`SEG_HEADER_LEN`]
    /// prefix of the header page; callers pad the page with zeros).
    #[must_use]
    pub fn encode(&self) -> [u8; SEG_HEADER_LEN] {
        let mut buf = [0u8; SEG_HEADER_LEN];
        buf[0..8].copy_from_slice(&SEG_MAGIC);
        buf[8..12].copy_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        // bytes 12..16 reserved (zero).
        buf[16..24].copy_from_slice(&self.generation.to_le_bytes());
        buf[24..32].copy_from_slice(&self.committed_bytes.to_le_bytes());
        buf[32..40].copy_from_slice(&self.committed_records.to_le_bytes());
        buf[40..48].copy_from_slice(&self.writer_nonce.to_le_bytes());
        let sum = fnv1a64(&buf[0..48]);
        buf[48..56].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes and verifies a segment header read from disk.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CorruptKind`] — truncated header, wrong
    /// magic, unknown format version, or checksum mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, CorruptKind> {
        let fixed = buf.get(0..SEG_HEADER_LEN).ok_or(CorruptKind::Truncated)?;
        if fixed.get(0..8) != Some(&SEG_MAGIC[..]) {
            return Err(CorruptKind::BadMagic);
        }
        let version = read_u32(fixed, 8).ok_or(CorruptKind::Truncated)?;
        if version != STORE_FORMAT_VERSION {
            return Err(CorruptKind::BadVersion { found: version });
        }
        let stored = read_u64(fixed, 48).ok_or(CorruptKind::Truncated)?;
        if stored != fnv1a64(&fixed[0..48]) {
            return Err(CorruptKind::BadChecksum);
        }
        Ok(SegHeader {
            generation: read_u64(fixed, 16).ok_or(CorruptKind::Truncated)?,
            committed_bytes: read_u64(fixed, 24).ok_or(CorruptKind::Truncated)?,
            committed_records: read_u64(fixed, 32).ok_or(CorruptKind::Truncated)?,
            writer_nonce: read_u64(fixed, 40).ok_or(CorruptKind::Truncated)?,
        })
    }
}

/// Header of an index sidecar file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdxHeader {
    /// Must match the data segment's [`SegHeader::writer_nonce`].
    pub writer_nonce: u64,
    /// Published entry count.
    pub committed_entries: u64,
}

impl IdxHeader {
    /// Encodes the index header into its on-disk form.
    #[must_use]
    pub fn encode(&self) -> [u8; IDX_HEADER_LEN] {
        let mut buf = [0u8; IDX_HEADER_LEN];
        buf[0..8].copy_from_slice(&IDX_MAGIC);
        buf[8..12].copy_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        // bytes 12..16 reserved (zero).
        buf[16..24].copy_from_slice(&self.writer_nonce.to_le_bytes());
        buf[24..32].copy_from_slice(&self.committed_entries.to_le_bytes());
        let sum = fnv1a64(&buf[0..32]);
        buf[32..40].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes and verifies an index header read from disk.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CorruptKind`] on any mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, CorruptKind> {
        let fixed = buf.get(0..IDX_HEADER_LEN).ok_or(CorruptKind::Truncated)?;
        if fixed.get(0..8) != Some(&IDX_MAGIC[..]) {
            return Err(CorruptKind::BadMagic);
        }
        let version = read_u32(fixed, 8).ok_or(CorruptKind::Truncated)?;
        if version != STORE_FORMAT_VERSION {
            return Err(CorruptKind::BadVersion { found: version });
        }
        let stored = read_u64(fixed, 32).ok_or(CorruptKind::Truncated)?;
        if stored != fnv1a64(&fixed[0..32]) {
            return Err(CorruptKind::BadChecksum);
        }
        Ok(IdxHeader {
            writer_nonce: read_u64(fixed, 16).ok_or(CorruptKind::Truncated)?,
            committed_entries: read_u64(fixed, 24).ok_or(CorruptKind::Truncated)?,
        })
    }
}

/// One fixed-width index entry: where a record with a given key
/// fingerprint lives inside the segment's record region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdxEntry {
    /// FNV-1a 64 fingerprint of the record's key bytes.
    pub key_fp: u64,
    /// Record offset inside the record region (0 = first record).
    pub offset: u64,
    /// The record's padded on-disk length in bytes.
    pub len: u32,
}

impl IdxEntry {
    /// Encodes the entry into its self-checksummed on-disk form.
    #[must_use]
    pub fn encode(&self) -> [u8; IDX_ENTRY_LEN] {
        let mut buf = [0u8; IDX_ENTRY_LEN];
        buf[0..8].copy_from_slice(&self.key_fp.to_le_bytes());
        buf[8..16].copy_from_slice(&self.offset.to_le_bytes());
        buf[16..20].copy_from_slice(&self.len.to_le_bytes());
        // bytes 20..24 reserved (zero).
        let sum = fnv1a64(&buf[0..24]);
        buf[24..32].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes one entry, rejecting torn or bit-flipped ones via the
    /// embedded checksum.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CorruptKind`] on any mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, CorruptKind> {
        let fixed = buf.get(0..IDX_ENTRY_LEN).ok_or(CorruptKind::Truncated)?;
        let stored = read_u64(fixed, 24).ok_or(CorruptKind::Truncated)?;
        if stored != fnv1a64(&fixed[0..24]) {
            return Err(CorruptKind::BadChecksum);
        }
        Ok(IdxEntry {
            key_fp: read_u64(fixed, 0).ok_or(CorruptKind::Truncated)?,
            offset: read_u64(fixed, 8).ok_or(CorruptKind::Truncated)?,
            len: read_u32(fixed, 16).ok_or(CorruptKind::Truncated)?,
        })
    }
}

/// The checksum a record stores and a reader recomputes: FNV-1a 64 over
/// the length-prefixed key and payload (length prefixes keep
/// `("ab","c")` and `("a","bc")` distinct).
#[must_use]
pub fn record_checksum(key: &[u8], payload: &[u8]) -> u64 {
    let klen = key.len() as u32;
    let vlen = payload.len() as u32;
    let mut bytes = Vec::with_capacity(8 + key.len() + payload.len());
    bytes.extend_from_slice(&klen.to_le_bytes());
    bytes.extend_from_slice(key);
    bytes.extend_from_slice(&vlen.to_le_bytes());
    bytes.extend_from_slice(payload);
    fnv1a64(&bytes)
}

/// The padded on-disk length of a record with the given key and payload
/// sizes.
#[must_use]
pub fn record_len(klen: usize, vlen: usize) -> u64 {
    let raw = REC_HEADER_LEN as u64 + klen as u64 + vlen as u64;
    raw.div_ceil(REC_ALIGN) * REC_ALIGN
}

/// Encodes one record (header, key, payload, zero padding).
#[must_use]
pub fn encode_record(key: &[u8], payload: &[u8]) -> Vec<u8> {
    let total = record_len(key.len(), payload.len()) as usize;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&REC_MAGIC.to_le_bytes());
    buf.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(payload);
    buf.resize(total, 0);
    buf
}

/// Validates a record *header* alone — magic, format version, length
/// sanity — and returns the record's padded on-disk length, so a reader
/// can size the full-record read without trusting unbounded lengths.
///
/// # Errors
///
/// Returns the specific [`CorruptKind`] on any mismatch.
pub fn peek_record_len(header: &[u8]) -> Result<u64, CorruptKind> {
    let fixed = header
        .get(0..REC_HEADER_LEN)
        .ok_or(CorruptKind::Truncated)?;
    let magic = read_u32(fixed, 0).ok_or(CorruptKind::Truncated)?;
    if magic != REC_MAGIC {
        return Err(CorruptKind::BadMagic);
    }
    let version = read_u32(fixed, 4).ok_or(CorruptKind::Truncated)?;
    if version != STORE_FORMAT_VERSION {
        return Err(CorruptKind::BadVersion { found: version });
    }
    let klen = read_u32(fixed, 8).ok_or(CorruptKind::Truncated)?;
    let vlen = read_u32(fixed, 12).ok_or(CorruptKind::Truncated)?;
    if klen == 0 || klen > MAX_KEY_LEN || vlen > MAX_PAYLOAD_LEN {
        return Err(CorruptKind::BadLength { klen, vlen });
    }
    Ok(record_len(klen as usize, vlen as usize))
}

/// A record decoded and verified from untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's key bytes.
    pub key: Vec<u8>,
    /// The record's payload bytes.
    pub payload: Vec<u8>,
    /// The record's padded on-disk length.
    pub disk_len: u64,
}

/// Decodes the record starting at the front of `buf`, verifying magic,
/// format version, length sanity and the key+payload checksum before a
/// single payload byte is handed out.
///
/// # Errors
///
/// Returns the specific [`CorruptKind`]; callers turn it into a
/// [`StoreError::Corrupt`] with the segment/offset context.
pub fn decode_record(buf: &[u8]) -> Result<Record, CorruptKind> {
    let header = buf.get(0..REC_HEADER_LEN).ok_or(CorruptKind::Truncated)?;
    let magic = read_u32(header, 0).ok_or(CorruptKind::Truncated)?;
    if magic != REC_MAGIC {
        return Err(CorruptKind::BadMagic);
    }
    let version = read_u32(header, 4).ok_or(CorruptKind::Truncated)?;
    if version != STORE_FORMAT_VERSION {
        return Err(CorruptKind::BadVersion { found: version });
    }
    let klen = read_u32(header, 8).ok_or(CorruptKind::Truncated)?;
    let vlen = read_u32(header, 12).ok_or(CorruptKind::Truncated)?;
    if klen == 0 || klen > MAX_KEY_LEN || vlen > MAX_PAYLOAD_LEN {
        return Err(CorruptKind::BadLength { klen, vlen });
    }
    let stored = read_u64(header, 16).ok_or(CorruptKind::Truncated)?;
    let key_at = REC_HEADER_LEN;
    let payload_at = key_at + klen as usize;
    let end = payload_at + vlen as usize;
    let key = buf.get(key_at..payload_at).ok_or(CorruptKind::Truncated)?;
    let payload = buf.get(payload_at..end).ok_or(CorruptKind::Truncated)?;
    if stored != record_checksum(key, payload) {
        return Err(CorruptKind::BadChecksum);
    }
    Ok(Record {
        key: key.to_vec(),
        payload: payload.to_vec(),
        disk_len: record_len(klen as usize, vlen as usize),
    })
}

/// Turns a [`CorruptKind`] into a located [`StoreError::Corrupt`].
#[must_use]
pub fn locate(kind: CorruptKind, segment: &str, offset: u64) -> StoreError {
    StoreError::Corrupt {
        segment: segment.to_string(),
        offset,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_header_round_trips() {
        let h = SegHeader {
            generation: 3,
            committed_bytes: 4096,
            committed_records: 17,
            writer_nonce: 0xABCD,
        };
        assert_eq!(SegHeader::decode(&h.encode()), Ok(h));
    }

    #[test]
    fn seg_header_rejects_each_field_class() {
        let h = SegHeader {
            generation: 1,
            committed_bytes: 0,
            committed_records: 0,
            writer_nonce: 9,
        };
        let good = h.encode();
        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        assert_eq!(SegHeader::decode(&bad_magic), Err(CorruptKind::BadMagic));
        let mut bad_version = good;
        bad_version[8] = 99;
        // A version flip also breaks the checksum; re-sign to isolate it.
        let sum = fnv1a64(&bad_version[0..48]);
        bad_version[48..56].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SegHeader::decode(&bad_version),
            Err(CorruptKind::BadVersion { found: 99 })
        );
        let mut flipped = good;
        flipped[20] ^= 0x01;
        assert_eq!(SegHeader::decode(&flipped), Err(CorruptKind::BadChecksum));
        assert_eq!(SegHeader::decode(&good[..10]), Err(CorruptKind::Truncated));
    }

    #[test]
    fn idx_entry_round_trips_and_rejects_bitflips() {
        let e = IdxEntry {
            key_fp: 42,
            offset: 4096,
            len: 64,
        };
        assert_eq!(IdxEntry::decode(&e.encode()), Ok(e));
        let mut bad = e.encode();
        bad[9] ^= 0x40;
        assert_eq!(IdxEntry::decode(&bad), Err(CorruptKind::BadChecksum));
    }

    #[test]
    fn record_round_trips_with_padding() {
        let buf = encode_record(b"key-1", b"payload bytes");
        assert_eq!(buf.len() as u64 % REC_ALIGN, 0);
        let rec = decode_record(&buf).expect("decode");
        assert_eq!(rec.key, b"key-1");
        assert_eq!(rec.payload, b"payload bytes");
        assert_eq!(rec.disk_len, buf.len() as u64);
    }

    #[test]
    fn record_rejects_magic_version_length_and_checksum_damage() {
        let good = encode_record(b"k", b"v");
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_record(&bad_magic), Err(CorruptKind::BadMagic));
        let mut stale = good.clone();
        stale[4..8].copy_from_slice(&77u32.to_le_bytes());
        assert_eq!(
            decode_record(&stale),
            Err(CorruptKind::BadVersion { found: 77 })
        );
        let mut huge = good.clone();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_record(&huge),
            Err(CorruptKind::BadLength { .. })
        ));
        let mut flipped = good.clone();
        // The final bytes are padding; flip the payload byte instead.
        flipped[REC_HEADER_LEN + 1] ^= 0x04;
        assert_eq!(decode_record(&flipped), Err(CorruptKind::BadChecksum));
        assert_eq!(
            decode_record(&good[..good.len() - 8]),
            Err(CorruptKind::Truncated)
        );
    }
}
