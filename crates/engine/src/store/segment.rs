//! One segment of the pile: a page-aligned header, then fixed-layout
//! records — plus the index sidecar and the crash-safe append protocol.
//!
//! A [`SegmentReader`] verifies the header once at open (O(1): one
//! `pread` of the header page, never a record scan) and then serves
//! verified-on-read record lookups through the [`PageSource`] trait. A
//! [`SegmentWriter`] owns the append end: records are written, `fsync`ed,
//! and only then *published* by rewriting the header's committed length —
//! a reader never trusts bytes the protocol hasn't fsynced first, and a
//! torn tail past the published length is salvage, not gospel.

use super::format::{
    decode_record, peek_record_len, IdxEntry, IdxHeader, Record, SegHeader, IDX_ENTRY_LEN,
    IDX_HEADER_LEN, PAGE,
};
use super::pages::{CachedPages, FilePages, PageSource};
use super::{CorruptKind, StoreError, StoreIssue};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File extension of data segments.
pub const SEG_EXT: &str = "ddts";
/// File extension of index sidecars.
pub const IDX_EXT: &str = "idx";

/// Read access to one segment: the verified header plus positional
/// record reads behind the page cache.
pub struct SegmentReader {
    /// The segment's file name (diagnostics and reports key on it).
    pub name: String,
    /// The segment's header as verified at open time.
    pub header: SegHeader,
    pages: CachedPages<FilePages>,
}

impl SegmentReader {
    /// Opens a segment and verifies its header page — the only I/O is
    /// one positional header read, independent of record count.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened;
    /// [`StoreError::Corrupt`] when the header fails verification
    /// (including the zero-length-file case, reported as `Truncated`).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let name = file_name_of(path);
        let file = File::open(path).map_err(StoreError::Io)?;
        let pages = CachedPages::new(FilePages::new(file));
        let mut buf = [0u8; super::format::SEG_HEADER_LEN];
        let mut got = 0;
        while got < buf.len() {
            let slice = buf.get_mut(got..).unwrap_or(&mut []);
            if slice.is_empty() {
                break;
            }
            let n = pages.read_at(got as u64, slice).map_err(StoreError::Io)?;
            if n == 0 {
                break;
            }
            got += n;
        }
        let header = SegHeader::decode(buf.get(0..got).unwrap_or(&[]))
            .map_err(|kind| super::format::locate(kind, &name, 0))?;
        Ok(SegmentReader {
            name,
            header,
            pages,
        })
    }

    /// Bytes available in the record region right now (file length minus
    /// the header page; the tail past the published length is included).
    ///
    /// # Errors
    ///
    /// Propagates the length query's I/O error.
    pub fn data_len(&self) -> io::Result<u64> {
        Ok(self.pages.len()?.saturating_sub(PAGE))
    }

    /// Reads and fully verifies the record at `offset` (relative to the
    /// record region) — magic, version, lengths, checksum — before any
    /// payload byte is returned.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any verification failure,
    /// [`StoreError::Io`] when the read itself fails.
    pub fn read_record(&self, offset: u64) -> Result<Record, StoreError> {
        let mut header = [0u8; super::format::REC_HEADER_LEN];
        self.read_data(offset, &mut header)?;
        let total =
            peek_record_len(&header).map_err(|k| super::format::locate(k, &self.name, offset))?;
        let mut buf = vec![0u8; total as usize];
        self.read_data(offset, &mut buf)?;
        decode_record(&buf).map_err(|k| super::format::locate(k, &self.name, offset))
    }

    /// Walks records from `from` (record-region offset), calling `visit`
    /// for each verified record. A record whose *header* is sane but
    /// whose body fails the checksum is quarantined and *skipped* (the
    /// header gives its boundary); scanning only stops where the next
    /// boundary is unknowable — a stomped header or a torn tail — whose
    /// issue is appended to `issues`. Returns the offset scanning
    /// stopped at.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (corruption is *not* an error here — it
    /// lands in `issues`).
    pub fn scan(
        &self,
        from: u64,
        issues: &mut Vec<StoreIssue>,
        mut visit: impl FnMut(u64, &Record),
    ) -> io::Result<u64> {
        let end = self.data_len()?;
        let mut at = from;
        while at < end {
            let mut header = [0u8; super::format::REC_HEADER_LEN];
            match self.read_data(at, &mut header) {
                Ok(()) => {}
                Err(StoreError::Corrupt {
                    segment,
                    offset,
                    kind,
                }) => {
                    issues.push(StoreIssue {
                        segment,
                        offset,
                        kind,
                    });
                    break;
                }
                Err(StoreError::Io(err)) => return Err(err),
            }
            let total = match peek_record_len(&header) {
                Ok(total) => total,
                Err(kind) => {
                    issues.push(StoreIssue {
                        segment: self.name.clone(),
                        offset: at,
                        kind,
                    });
                    break;
                }
            };
            let mut buf = vec![0u8; total as usize];
            match self.read_data(at, &mut buf) {
                Ok(()) => {}
                Err(StoreError::Corrupt {
                    segment,
                    offset,
                    kind,
                }) => {
                    issues.push(StoreIssue {
                        segment,
                        offset,
                        kind,
                    });
                    break;
                }
                Err(StoreError::Io(err)) => return Err(err),
            }
            match decode_record(&buf) {
                Ok(rec) => visit(at, &rec),
                Err(kind) => {
                    // Header sane, body rotten: the boundary is known,
                    // so quarantine this record and keep walking.
                    issues.push(StoreIssue {
                        segment: self.name.clone(),
                        offset: at,
                        kind,
                    });
                }
            }
            at += total;
        }
        Ok(at)
    }

    fn read_data(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.pages.read_exact_at(PAGE + offset, buf).map_err(|err| {
            if err.kind() == io::ErrorKind::UnexpectedEof {
                super::format::locate(CorruptKind::Truncated, &self.name, offset)
            } else {
                StoreError::Io(err)
            }
        })
    }
}

/// Loads the index sidecar next to a segment: self-checksummed
/// fixed-width entries mapping key fingerprints to record offsets.
///
/// The sidecar is a *hint*, never trusted blind: a missing, stale
/// (nonce-mismatched) or damaged index degrades to an empty entry list
/// (with issues recorded) and the caller re-scans the data segment —
/// the store stays readable with no index at all.
pub fn load_index(
    seg_path: &Path,
    seg_header: &SegHeader,
    issues: &mut Vec<StoreIssue>,
) -> Vec<IdxEntry> {
    let path = idx_path_of(seg_path);
    let name = file_name_of(&path);
    let Ok(bytes) = std::fs::read(&path) else {
        return Vec::new();
    };
    let header = match IdxHeader::decode(&bytes) {
        Ok(h) => h,
        Err(kind) => {
            issues.push(StoreIssue {
                segment: name,
                offset: 0,
                kind,
            });
            return Vec::new();
        }
    };
    if header.writer_nonce != seg_header.writer_nonce {
        issues.push(StoreIssue {
            segment: name,
            offset: 0,
            kind: CorruptKind::BadChecksum,
        });
        return Vec::new();
    }
    let avail = (bytes.len().saturating_sub(IDX_HEADER_LEN)) / IDX_ENTRY_LEN;
    let count = (header.committed_entries as usize).min(avail);
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = IDX_HEADER_LEN + i * IDX_ENTRY_LEN;
        match IdxEntry::decode(bytes.get(at..at + IDX_ENTRY_LEN).unwrap_or(&[])) {
            Ok(entry) => entries.push(entry),
            Err(kind) => issues.push(StoreIssue {
                segment: name.clone(),
                offset: at as u64,
                kind,
            }),
        }
    }
    entries
}

/// The append end of one segment. Exactly one writer ever exists per
/// segment file: creation uses `O_EXCL` (`create_new`), so two processes
/// sharing a store directory can never interleave writes into one file —
/// that exclusivity *is* the append lock.
pub struct SegmentWriter {
    /// The segment's file name.
    pub name: String,
    data: File,
    idx: File,
    header: SegHeader,
    /// Record-region bytes written (published or not).
    data_len: u64,
    /// Records written (published or not).
    records: u64,
    /// Index entries written (published or not).
    idx_entries: u64,
}

impl SegmentWriter {
    /// Creates a brand-new segment (and its index sidecar) with
    /// `create_new`, writing and flushing both headers immediately so a
    /// concurrent open never sees a zero-length file from a healthy
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; `AlreadyExists` means the name is taken
    /// (the caller retries with a fresh name).
    pub fn create(seg_path: &Path, generation: u64, writer_nonce: u64) -> io::Result<Self> {
        let mut data = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(seg_path)?;
        let idx_path = idx_path_of(seg_path);
        let mut idx = match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&idx_path)
        {
            Ok(f) => f,
            Err(err) => {
                // Never leave a headerless data segment behind.
                let _ = std::fs::remove_file(seg_path);
                return Err(err);
            }
        };
        let header = SegHeader {
            generation,
            committed_bytes: 0,
            committed_records: 0,
            writer_nonce,
        };
        let mut page = vec![0u8; PAGE as usize];
        page.get_mut(0..super::format::SEG_HEADER_LEN)
            .unwrap_or(&mut [])
            .copy_from_slice(&header.encode());
        data.write_all(&page)?;
        data.sync_data()?;
        let idx_header = IdxHeader {
            writer_nonce,
            committed_entries: 0,
        };
        idx.write_all(&idx_header.encode())?;
        idx.sync_data()?;
        Ok(SegmentWriter {
            name: file_name_of(seg_path),
            data,
            idx,
            header,
            data_len: 0,
            records: 0,
            idx_entries: 0,
        })
    }

    /// Appends one encoded record plus its index entry. The bytes hit
    /// the file immediately (visible to same-machine readers via tail
    /// salvage) but are only *published* — header-committed and crash
    /// durable — by the next [`SegmentWriter::publish`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; nothing is published on failure.
    pub fn append(&mut self, record: &[u8], key_fp: u64) -> io::Result<u64> {
        let offset = self.data_len;
        self.data.seek(SeekFrom::Start(PAGE + offset))?;
        self.data.write_all(record)?;
        self.data_len += record.len() as u64;
        self.records += 1;
        let entry = IdxEntry {
            key_fp,
            offset,
            len: record.len() as u32,
        };
        self.idx.seek(SeekFrom::Start(
            (IDX_HEADER_LEN + self.idx_entries as usize * IDX_ENTRY_LEN) as u64,
        ))?;
        self.idx.write_all(&entry.encode())?;
        self.idx_entries += 1;
        Ok(offset)
    }

    /// Publishes everything appended so far: `fsync` the record bytes,
    /// *then* rewrite the header with the new committed length, then
    /// `fsync` again — so a crash at any point leaves either the old
    /// published state or the new one, never a header that claims
    /// unsynced bytes. The index sidecar publishes after the data (it is
    /// only ever a hint).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the previously published state remains
    /// valid on failure.
    pub fn publish(&mut self) -> io::Result<()> {
        if self.header.committed_bytes == self.data_len
            && self.header.committed_records == self.records
        {
            return Ok(());
        }
        self.data.sync_data()?;
        self.header.committed_bytes = self.data_len;
        self.header.committed_records = self.records;
        self.data.seek(SeekFrom::Start(0))?;
        self.data.write_all(&self.header.encode())?;
        self.data.sync_data()?;
        let idx_header = IdxHeader {
            writer_nonce: self.header.writer_nonce,
            committed_entries: self.idx_entries,
        };
        self.idx.sync_data()?;
        self.idx.seek(SeekFrom::Start(0))?;
        self.idx.write_all(&idx_header.encode())?;
        self.idx.sync_data()?;
        Ok(())
    }

    /// Record-region bytes written so far (published or not).
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Records written so far (published or not).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// The index sidecar path belonging to a data segment path.
#[must_use]
pub fn idx_path_of(seg_path: &Path) -> PathBuf {
    seg_path.with_extension(IDX_EXT)
}

/// A path's file name as a `String` (lossy, for diagnostics).
#[must_use]
pub fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::super::format::encode_record;
    use super::*;

    fn temp_seg(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ddtr-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("seg-00000-0000000000000001.ddts")
    }

    #[test]
    fn writer_publishes_and_reader_verifies() {
        let path = temp_seg("roundtrip");
        let mut w = SegmentWriter::create(&path, 1, 7).expect("create");
        let rec = encode_record(b"alpha", b"payload-a");
        let off = w.append(&rec, 11).expect("append");
        assert_eq!(off, 0);
        w.publish().expect("publish");
        let r = SegmentReader::open(&path).expect("open");
        assert_eq!(r.header.committed_records, 1);
        assert_eq!(r.header.committed_bytes, rec.len() as u64);
        let back = r.read_record(0).expect("read");
        assert_eq!(back.key, b"alpha");
        assert_eq!(back.payload, b"payload-a");
        let entries = load_index(&path, &r.header, &mut Vec::new());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key_fp, 11);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn unpublished_tail_is_scannable_salvage() {
        let path = temp_seg("tail");
        let mut w = SegmentWriter::create(&path, 1, 7).expect("create");
        w.append(&encode_record(b"a", b"1"), 1).expect("append");
        w.publish().expect("publish");
        // Appended but never published: header still says 1 record.
        w.append(&encode_record(b"b", b"2"), 2).expect("append");
        let r = SegmentReader::open(&path).expect("open");
        assert_eq!(r.header.committed_records, 1);
        let mut seen = Vec::new();
        let mut issues = Vec::new();
        r.scan(0, &mut issues, |_, rec| seen.push(rec.key.clone()))
            .expect("scan");
        assert_eq!(seen, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(issues.is_empty(), "clean tail: {issues:?}");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}
