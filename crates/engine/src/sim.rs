//! Single-simulation runner and the simulation log record.

use crate::combo::{combo_label, Combo};
use crate::key::ConfigKey;
use ddtr_apps::{AppKind, AppParams, SlotProfile};
use ddtr_mem::{CostReport, MemoryConfig, MemorySystem};
use ddtr_trace::{Packet, StreamSpec, Trace};
use serde::{Deserialize, Serialize};

/// One simulation's log record — the unit the paper's "Gigabytes of log
/// files" are made of.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimLog {
    /// Application simulated.
    pub app: AppKind,
    /// DDT combination label (e.g. `"AR+DLL"`).
    pub combo: String,
    /// Network the input trace came from.
    pub network: String,
    /// Application-parameter label (e.g. `"radix128"`).
    pub params: String,
    /// The four cost metrics.
    pub report: CostReport,
}

impl SimLog {
    /// The metrics as the canonical `[energy, time, accesses, footprint]`
    /// minimisation vector.
    #[must_use]
    pub fn objectives(&self) -> [f64; 4] {
        self.report.as_array()
    }

    /// Structured configuration key (network × parameter variant) grouping
    /// logs per step-2 configuration. Its [`std::fmt::Display`] renders the
    /// familiar `network/params` log form.
    #[must_use]
    pub fn config_key(&self) -> ConfigKey {
        ConfigKey::new(self.network.clone(), self.params.clone())
    }
}

/// Runs one (application, combination, configuration) simulation: "an
/// execution of an application under study using as input a network
/// trace".
#[derive(Debug, Clone)]
pub struct Simulator {
    mem_cfg: MemoryConfig,
}

impl Simulator {
    /// Creates a simulator for the given platform memory configuration.
    #[must_use]
    pub fn new(mem_cfg: MemoryConfig) -> Self {
        Simulator { mem_cfg }
    }

    /// Simulates `app` with `combo` in its dominant slots over `trace`,
    /// returning the four-metric log record. Table construction is part of
    /// the measured execution, exactly like the paper's host runs.
    #[must_use]
    pub fn run(&self, app: AppKind, combo: Combo, params: &AppParams, trace: &Trace) -> SimLog {
        let (report, _) = self.run_with_profiles(app, combo, params, trace);
        SimLog {
            app,
            combo: combo_label(combo),
            network: trace.network.clone(),
            params: params.label(app),
            report,
        }
    }

    /// Like [`Simulator::run`] but also returns the per-slot access
    /// profiles (used by the profiling step).
    #[must_use]
    pub fn run_with_profiles(
        &self,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        trace: &Trace,
    ) -> (CostReport, Vec<SlotProfile>) {
        self.simulate(app, combo, params, trace.iter())
    }

    /// The one simulation loop both the materialized and streamed entry
    /// points drain — their byte-identical metrics come from sharing this
    /// body, not from keeping two copies in sync.
    fn simulate<B: std::borrow::Borrow<Packet>>(
        &self,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        packets: impl IntoIterator<Item = B>,
    ) -> (CostReport, Vec<SlotProfile>) {
        let mut mem = MemorySystem::new(self.mem_cfg);
        let mut instance = app.instantiate(combo, params, &mut mem);
        for pkt in packets {
            instance.process(pkt.borrow(), &mut mem);
        }
        (mem.report(), instance.slot_profiles())
    }

    /// Simulates `app` over a packet *stream* instead of a materialized
    /// trace: packets are consumed as they are produced, so memory stays
    /// constant regardless of workload length. For the same packets this
    /// yields exactly the metrics of [`Simulator::run`].
    ///
    /// `network` names the configuration in the resulting log (streams
    /// carry no [`Trace`] to take it from).
    #[must_use]
    pub fn run_stream(
        &self,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        network: &str,
        packets: impl IntoIterator<Item = Packet>,
    ) -> SimLog {
        let (report, _) = self.run_stream_with_profiles(app, combo, params, packets);
        SimLog {
            app,
            combo: combo_label(combo),
            network: network.to_owned(),
            params: params.label(app),
            report,
        }
    }

    /// Like [`Simulator::run_stream`] but returns the cost report and the
    /// per-slot access profiles — the streamed counterpart of
    /// [`Simulator::run_with_profiles`], so the profiling substep also
    /// runs in constant memory.
    #[must_use]
    pub fn run_stream_with_profiles(
        &self,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        packets: impl IntoIterator<Item = Packet>,
    ) -> (CostReport, Vec<SlotProfile>) {
        self.simulate(app, combo, params, packets)
    }

    /// Simulates `app` over a [`StreamSpec`] workload, streaming its
    /// (possibly multi-phase) packets in constant memory.
    #[must_use]
    pub fn run_spec(
        &self,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        spec: &StreamSpec,
    ) -> SimLog {
        self.run_stream(app, combo, params, spec.name(), spec.stream())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_ddt::DdtKind;
    use ddtr_trace::NetworkPreset;

    fn sim() -> Simulator {
        Simulator::new(MemoryConfig::embedded_default())
    }

    fn quick_params() -> AppParams {
        AppParams {
            route_table_size: 32,
            firewall_rules: 8,
            table_cap: 16,
            ..AppParams::default()
        }
    }

    #[test]
    fn run_produces_nonzero_metrics_for_every_app() {
        let trace = NetworkPreset::DartmouthBerry.generate(60);
        for app in AppKind::ALL {
            let log = sim().run(app, [DdtKind::Array, DdtKind::Sll], &quick_params(), &trace);
            assert!(log.report.accesses > 0, "{app}");
            assert!(log.report.cycles > 0, "{app}");
            assert!(log.report.energy_nj > 0.0, "{app}");
            assert!(log.report.peak_footprint_bytes > 0, "{app}");
            assert_eq!(
                log.config_key(),
                ConfigKey::new("BWY-I", log.params.clone())
            );
            assert_eq!(
                log.config_key().to_string(),
                format!("BWY-I/{}", log.params)
            );
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = NetworkPreset::NlanrAix.generate(80);
        let a = sim().run(
            AppKind::Url,
            [DdtKind::SllRov, DdtKind::DllChunk],
            &quick_params(),
            &trace,
        );
        let b = sim().run(
            AppKind::Url,
            [DdtKind::SllRov, DdtKind::DllChunk],
            &quick_params(),
            &trace,
        );
        assert_eq!(a.report.accesses, b.report.accesses);
        assert_eq!(a.report.cycles, b.report.cycles);
    }

    #[test]
    fn different_combos_cost_differently() {
        let trace = NetworkPreset::DartmouthBerry.generate(100);
        let a = sim().run(
            AppKind::Drr,
            [DdtKind::Array, DdtKind::Array],
            &quick_params(),
            &trace,
        );
        let b = sim().run(
            AppKind::Drr,
            [DdtKind::Sll, DdtKind::Sll],
            &quick_params(),
            &trace,
        );
        assert_ne!(
            a.report.accesses, b.report.accesses,
            "AR+AR vs SLL+SLL must differ"
        );
    }

    #[test]
    fn streamed_run_matches_materialized_run_exactly() {
        use ddtr_trace::{StreamSpec, TraceGenerator};
        let preset = NetworkPreset::DartmouthBerry;
        let trace = preset.generate(120);
        for combo in [
            [DdtKind::Array, DdtKind::Sll],
            [DdtKind::DllRov, DdtKind::SllChunk],
        ] {
            let direct = sim().run(AppKind::Drr, combo, &quick_params(), &trace);
            let generator = TraceGenerator::new(preset.spec());
            let streamed = sim().run_stream(
                AppKind::Drr,
                combo,
                &quick_params(),
                &trace.network,
                generator.stream(120),
            );
            assert_eq!(
                serde_json::to_string(&streamed).expect("ser"),
                serde_json::to_string(&direct).expect("ser"),
                "streamed and materialized logs must be byte-identical"
            );
            let spec = StreamSpec::single(preset.spec(), 120).expect("valid");
            let via_spec = sim().run_spec(AppKind::Drr, combo, &quick_params(), &spec);
            assert_eq!(via_spec.report.accesses, direct.report.accesses);
            assert_eq!(via_spec.report.cycles, direct.report.cycles);
        }
    }

    #[test]
    fn log_serialises_to_json_and_back() {
        let trace = NetworkPreset::DartmouthBerry.generate(30);
        let log = sim().run(
            AppKind::Ipchains,
            [DdtKind::Dll, DdtKind::Dll],
            &quick_params(),
            &trace,
        );
        let json = serde_json::to_string(&log).expect("serialise");
        let back: SimLog = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.combo, log.combo);
        assert_eq!(back.report.accesses, log.report.accesses);
    }

    #[test]
    fn objectives_order_is_energy_time_accesses_footprint() {
        let trace = NetworkPreset::DartmouthBerry.generate(20);
        let log = sim().run(
            AppKind::Drr,
            [DdtKind::Array, DdtKind::Array],
            &quick_params(),
            &trace,
        );
        let o = log.objectives();
        assert_eq!(o[0], log.report.energy_nj);
        assert_eq!(o[1], log.report.cycles as f64);
        assert_eq!(o[2], log.report.accesses as f64);
        assert_eq!(o[3], log.report.peak_footprint_bytes as f64);
    }
}
