//! Content-addressed simulation-result cache, persisted in the
//! [`crate::store`] pile format.
//!
//! Every executed simulation is stored under its [`CacheKey`] identity.
//! With a cache directory attached, entries are appended to a
//! [`PileStore`] — page-aligned segments, verified on read, O(1) warm
//! open — so a later process (a re-run of `ddtr explore`, a resumed
//! sweep, a `ddtr serve` worker, the bench harness) replays hits instead
//! of re-simulating, without paying a load proportional to cache size.
//! Records are fetched and verified lazily, on first lookup of each key.
//!
//! JSON lines (one `{"key": …, "log": …}` object per line) remain the
//! interchange format: `ddtr cache export`/`import` write and read it,
//! and a legacy `sim-cache.jsonl` store is migrated into the pile
//! automatically the first time the directory is opened.

use crate::key::CacheKey;
use crate::sim::SimLog;
use crate::store::{CompactReport, PileStore, StoreError, StoreStats, VerifyReport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// File name of the legacy JSONL store inside the cache directory —
/// still the interchange format for `ddtr cache export`/`import`, and
/// migrated into the pile store when found at open.
pub const CACHE_FILE: &str = "sim-cache.jsonl";

/// Suffix a migrated legacy store is renamed to (kept as a backup).
const MIGRATED_SUFFIX: &str = ".migrated";

/// One persisted cache entry: the structured key plus its result. Its
/// JSON serialization is both the pile-record payload and the JSONL
/// interchange line, so export/import round-trips byte-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    /// The structured content address.
    key: CacheKey,
    /// The cached simulation log.
    log: SimLog,
}

/// Counters describing what the cache did for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Results currently materialized in memory (inserted this run, or
    /// faulted in from the store by a lookup).
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to execute a simulation.
    pub misses: usize,
    /// Records available from the on-disk store when the cache was
    /// opened (published records; read lazily, not at open).
    pub loaded: usize,
}

/// Where a [`SimCache`] keeps results beyond the in-memory map.
#[derive(Debug)]
enum Backend {
    /// No persistence.
    Memory,
    /// The pile store under the attached cache directory (boxed — the
    /// store holds per-segment state and dwarfs the empty variant).
    Pile(Box<PileStore>),
}

/// The engine's result cache: an in-memory map in front of an optional
/// verified-on-read [`PileStore`].
#[derive(Debug)]
pub struct SimCache {
    map: HashMap<String, SimLog>,
    backend: Backend,
    dir: Option<PathBuf>,
    hits: usize,
    misses: usize,
    loaded: usize,
}

impl SimCache {
    /// A purely in-memory cache (no persistence).
    #[must_use]
    pub fn in_memory() -> Self {
        SimCache {
            map: HashMap::new(),
            backend: Backend::Memory,
            dir: None,
            hits: 0,
            misses: 0,
            loaded: 0,
        }
    }

    /// Opens (creating if needed) the pile store under `dir`. This is
    /// O(1) in the number of cached results: only segment headers are
    /// read; records are verified lazily on lookup. A legacy
    /// `sim-cache.jsonl` store found here is imported once and renamed
    /// aside.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or the
    /// store cannot be opened. Damaged segments or records are
    /// quarantined at read time, never fatal.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let mut store = PileStore::open(dir).map_err(store_to_io)?;
        let mut loaded = usize::try_from(store.committed_at_open()).unwrap_or(usize::MAX);
        let legacy = dir.join(CACHE_FILE);
        if legacy.exists() && store.segment_count() == 0 {
            // One-time migration from the JSONL era. The original is
            // kept (renamed) as a backup; the pile is authoritative from
            // here on.
            let migrated = import_lines(&mut store, &legacy)?;
            let mut backup = legacy.clone().into_os_string();
            backup.push(MIGRATED_SUFFIX);
            let _ = std::fs::rename(&legacy, PathBuf::from(backup));
            loaded += migrated;
        }
        ddtr_obs::counter("engine.cache.load").add(loaded as u64);
        Ok(SimCache {
            map: HashMap::new(),
            backend: Backend::Pile(Box::new(store)),
            dir: Some(dir.to_path_buf()),
            hits: 0,
            misses: 0,
            loaded,
        })
    }

    /// The cache directory, when persistence is attached.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up a result by key identity, counting a hit when present.
    /// Store-backed entries are read and verified on demand; a damaged
    /// record reads as a miss (and is quarantined), never a panic.
    pub fn get(&mut self, id: &str) -> Option<SimLog> {
        if let Some(log) = self.map.get(id) {
            self.hits += 1;
            ddtr_obs::counter("engine.cache.hit").inc();
            return Some(log.clone());
        }
        let Backend::Pile(store) = &mut self.backend else {
            return None;
        };
        let payload = match store.get(id.as_bytes()) {
            Ok(Some(payload)) => payload,
            Ok(None) => return None,
            // An I/O failure on the read path degrades to a miss: the
            // engine re-executes and the run stays correct.
            Err(_) => return None,
        };
        let entry = std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| serde_json::from_str::<CacheEntry>(text).ok())?;
        self.map.insert(id.to_string(), entry.log.clone());
        self.hits += 1;
        ddtr_obs::counter("engine.cache.hit").inc();
        Some(entry.log)
    }

    /// Counts an executed simulation whose result is *not* retained — used
    /// when caching is disabled, so the miss accounting stays truthful.
    pub fn note_miss(&mut self) {
        self.misses += 1;
        ddtr_obs::counter("engine.cache.miss").inc();
    }

    /// Records one executed simulation, appending it to the pile store
    /// when one is attached. Persistence failures degrade to in-memory
    /// caching (the run's results stay correct either way).
    pub fn insert(&mut self, key: &CacheKey, log: SimLog) {
        self.misses += 1;
        ddtr_obs::counter("engine.cache.miss").inc();
        if let Backend::Pile(store) = &mut self.backend {
            let entry = CacheEntry {
                key: key.clone(),
                log: log.clone(),
            };
            if let Ok(line) = serde_json::to_string(&entry) {
                if store.append(key.id().as_bytes(), line.as_bytes()).is_ok() {
                    ddtr_obs::counter("engine.cache.store").inc();
                }
            }
        }
        self.map.insert(key.id(), log);
    }

    /// Publishes any appended-but-unpublished records (fsync + header
    /// update). Also runs on drop; exposed for long-lived sessions that
    /// want durability at a known point.
    ///
    /// # Errors
    ///
    /// Propagates the publish I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.backend {
            Backend::Memory => Ok(()),
            Backend::Pile(store) => store.flush(),
        }
    }

    /// The cache's counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            hits: self.hits,
            misses: self.misses,
            loaded: self.loaded,
        }
    }

    /// Inspects a cache directory without opening it for writing: number
    /// of distinct entries and the store's size in bytes. Both are zero
    /// when no store exists yet. Falls back to counting a legacy JSONL
    /// store when no pile segments exist.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing store cannot be read.
    pub fn inspect(dir: &Path) -> io::Result<(usize, u64)> {
        if PileStore::exists(dir) {
            let stats = Self::store_stats(dir)?;
            return Ok((
                usize::try_from(stats.distinct).unwrap_or(usize::MAX),
                stats.bytes,
            ));
        }
        let path = dir.join(CACHE_FILE);
        if !path.exists() {
            return Ok((0, 0));
        }
        let bytes = std::fs::metadata(&path)?.len();
        let mut ids = std::collections::HashSet::new();
        for line in BufReader::new(File::open(&path)?).lines() {
            let line = line?;
            if let Ok(entry) = serde_json::from_str::<CacheEntry>(&line) {
                ids.insert(entry.key.id());
            }
        }
        Ok((ids.len(), bytes))
    }

    /// Deletes the on-disk store under `dir` — pile segments, index
    /// sidecars and any legacy JSONL file; the directory itself is kept.
    /// Returns whether a store existed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store exists but cannot be removed.
    pub fn clear(dir: &Path) -> io::Result<bool> {
        let mut removed = PileStore::clear_dir(dir)?;
        let path = dir.join(CACHE_FILE);
        if path.exists() {
            std::fs::remove_file(&path)?;
            removed = true;
        }
        Ok(removed)
    }

    /// Summary counters of the pile store under `dir` (for
    /// `ddtr cache stats`).
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors.
    pub fn store_stats(dir: &Path) -> io::Result<StoreStats> {
        let mut store = PileStore::open(dir).map_err(store_to_io)?;
        store.stats().map_err(store_to_io)
    }

    /// Fully verifies the pile store under `dir`: every header, every
    /// committed record, the unpublished tail. Nothing is mutated.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption lands in the report, not here.
    pub fn verify_store(dir: &Path) -> io::Result<VerifyReport> {
        let store = PileStore::open(dir).map_err(store_to_io)?;
        store.verify().map_err(store_to_io)
    }

    /// Compacts the pile store under `dir`: rewrites the newest version
    /// of every record into one fresh segment under a bumped generation,
    /// dropping duplicates and quarantined bytes. Offline admin
    /// operation — run it while nothing else appends to the store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; old segments are deleted only after the
    /// replacement is fully published.
    pub fn compact_store(dir: &Path) -> io::Result<CompactReport> {
        let mut store = PileStore::open(dir).map_err(store_to_io)?;
        store.compact().map_err(store_to_io)
    }

    /// Exports the store under `dir` as JSON lines (the interchange
    /// format) to `out`, newest version of each entry, key-sorted.
    /// Returns the number of lines written.
    ///
    /// # Errors
    ///
    /// Propagates store-read and file-write I/O errors.
    pub fn export_store(dir: &Path, out: &Path) -> io::Result<usize> {
        let mut store = PileStore::open(dir).map_err(store_to_io)?;
        let mut file = File::create(out)?;
        let mut written = 0;
        let mut failed = false;
        store
            .for_each_latest(|_, payload| {
                if !failed && file.write_all(payload).is_ok() && file.write_all(b"\n").is_ok() {
                    written += 1;
                } else {
                    failed = true;
                }
            })
            .map_err(store_to_io)?;
        if failed {
            return Err(io::Error::other("export interrupted by a write failure"));
        }
        file.flush()?;
        Ok(written)
    }

    /// Imports JSON lines from `input` into the store under `dir`.
    /// Malformed lines are skipped. Returns the number of entries
    /// imported.
    ///
    /// # Errors
    ///
    /// Propagates file-read and store-append I/O errors.
    pub fn import_store(dir: &Path, input: &Path) -> io::Result<usize> {
        let mut store = PileStore::open(dir).map_err(store_to_io)?;
        import_lines(&mut store, input)
    }
}

/// Flattens a [`StoreError`] into `io::Error` for the cache's public
/// `io::Result` signatures.
fn store_to_io(err: StoreError) -> io::Error {
    match err {
        StoreError::Io(err) => err,
        corrupt => io::Error::other(corrupt.to_string()),
    }
}

/// Appends every parseable JSONL entry from `path` into `store`,
/// skipping garbage (torn tails, stray lines), then publishes.
fn import_lines(store: &mut PileStore, path: &Path) -> io::Result<usize> {
    let mut imported = 0;
    for line in BufReader::new(File::open(path)?).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = serde_json::from_str::<CacheEntry>(&line) else {
            continue;
        };
        store
            .append(entry.key.id().as_bytes(), line.as_bytes())
            .map_err(store_to_io)?;
        imported += 1;
    }
    store.flush()?;
    Ok(imported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::fingerprint_trace;
    use crate::testing::TempCacheDir;
    use ddtr_apps::{AppKind, AppParams};
    use ddtr_ddt::DdtKind;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::NetworkPreset;
    use std::fs::OpenOptions;

    fn sample() -> (CacheKey, SimLog) {
        let trace = NetworkPreset::DartmouthBerry.generate(20);
        let params = AppParams::default();
        let combo = [DdtKind::Array, DdtKind::Dll];
        let key = CacheKey::new(
            AppKind::Drr,
            combo,
            &params,
            &trace,
            fingerprint_trace(&trace),
            &MemoryConfig::embedded_default(),
        );
        let log = crate::Simulator::new(MemoryConfig::embedded_default()).run(
            AppKind::Drr,
            combo,
            &params,
            &trace,
        );
        (key, log)
    }

    #[test]
    fn in_memory_cache_hits_after_insert() {
        let (key, log) = sample();
        let mut cache = SimCache::in_memory();
        assert!(cache.get(&key.id()).is_none());
        cache.insert(&key, log.clone());
        let back = cache.get(&key.id()).expect("hit");
        assert_eq!(back.report.accesses, log.report.accesses);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn disk_store_round_trips_across_instances() {
        let tmp = TempCacheDir::new("cache-roundtrip");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(tmp.path()).expect("open");
            assert_eq!(cache.stats().loaded, 0);
            cache.insert(&key, log.clone());
        }
        let mut reopened = SimCache::open(tmp.path()).expect("reopen");
        assert_eq!(reopened.stats().loaded, 1);
        let back = reopened.get(&key.id()).expect("persisted hit");
        assert_eq!(back.report.cycles, log.report.cycles);
        assert_eq!(back.combo, log.combo);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.entries), (1, 1), "faulted in on demand");
    }

    #[test]
    fn duplicate_inserts_collapse_on_lookup_and_inspect() {
        let tmp = TempCacheDir::new("cache-dedup");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(tmp.path()).expect("open");
            cache.insert(&key, log.clone());
        }
        {
            // A second writer stores the same entry again (its own
            // segment — concurrent processes never share bytes).
            let mut cache = SimCache::open(tmp.path()).expect("open second");
            cache.insert(&key, log.clone());
        }
        let mut reopened = SimCache::open(tmp.path()).expect("reopen");
        assert!(reopened.get(&key.id()).is_some(), "one hit, latest wins");
        let (entries, bytes) = SimCache::inspect(tmp.path()).expect("inspect");
        assert_eq!(entries, 1, "duplicates collapse to one distinct entry");
        assert!(bytes > 0);
        let report = SimCache::compact_store(tmp.path()).expect("compact");
        assert_eq!(report.records_out, 1);
    }

    #[test]
    fn legacy_jsonl_store_migrates_on_first_open() {
        let tmp = TempCacheDir::new("cache-migrate");
        let (key, log) = sample();
        let entry = CacheEntry {
            key: key.clone(),
            log,
        };
        {
            // A cache directory from the JSONL era: one good line, one
            // duplicate, one torn line from a crashed append.
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(tmp.join(CACHE_FILE))
                .expect("legacy store");
            let line = serde_json::to_string(&entry).expect("ser");
            writeln!(f, "{line}").expect("write");
            writeln!(f, "{line}").expect("write dup");
            writeln!(f, "{{\"torn").expect("write torn");
        }
        let mut cache = SimCache::open(tmp.path()).expect("open migrates");
        assert_eq!(cache.stats().loaded, 2, "both parseable lines imported");
        assert!(cache.get(&key.id()).is_some());
        assert!(
            !tmp.join(CACHE_FILE).exists(),
            "legacy file renamed aside after migration"
        );
        drop(cache);
        // The migration happened once: a reopen loads from the pile.
        let mut again = SimCache::open(tmp.path()).expect("reopen");
        assert!(again.get(&key.id()).is_some());
        let (entries, _) = SimCache::inspect(tmp.path()).expect("inspect");
        assert_eq!(entries, 1);
    }

    #[test]
    fn export_import_round_trips_to_identical_lookups() {
        let tmp = TempCacheDir::new("cache-export");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(tmp.path()).expect("open");
            cache.insert(&key, log.clone());
        }
        let out = tmp.join("dump.jsonl");
        let exported = SimCache::export_store(tmp.path(), &out).expect("export");
        assert_eq!(exported, 1);
        let fresh = TempCacheDir::new("cache-import");
        let imported = SimCache::import_store(fresh.path(), &out).expect("import");
        assert_eq!(imported, 1);
        let mut cache = SimCache::open(fresh.path()).expect("open imported");
        let back = cache.get(&key.id()).expect("imported hit");
        assert_eq!(back.report.cycles, log.report.cycles);
    }

    #[test]
    fn clear_removes_the_store() {
        let tmp = TempCacheDir::new("cache-clear");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(tmp.path()).expect("open");
            cache.insert(&key, log);
        }
        assert!(SimCache::clear(tmp.path()).expect("clear"));
        assert!(
            !SimCache::clear(tmp.path()).expect("second clear"),
            "already gone"
        );
        assert_eq!(SimCache::inspect(tmp.path()).expect("inspect"), (0, 0));
    }
}
