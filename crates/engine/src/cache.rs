//! Content-addressed simulation-result cache with a JSON-lines disk store.
//!
//! Every executed simulation is stored under its [`CacheKey`] identity.
//! With a cache directory attached, entries are also appended to
//! `sim-cache.jsonl` (one `{"key": …, "log": …}` object per line), so a
//! later process — a re-run of `ddtr explore`, a resumed sweep, the bench
//! harness — replays hits instead of re-simulating. The store is
//! append-only and keyed by content, so concurrent writers and repeated
//! runs are safe: duplicate lines collapse to one entry on load.

use crate::key::CacheKey;
use crate::sim::SimLog;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// File name of the on-disk store inside the cache directory.
pub const CACHE_FILE: &str = "sim-cache.jsonl";

/// One persisted cache line: the structured key plus its result.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    /// The structured content address.
    key: CacheKey,
    /// The cached simulation log.
    log: SimLog,
}

/// Counters describing what the cache did for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Results currently held (in memory, including those loaded from
    /// disk).
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to execute a simulation.
    pub misses: usize,
    /// Entries read from the on-disk store when the cache was opened.
    pub loaded: usize,
}

/// The engine's result cache: an in-memory map plus an optional appending
/// JSONL store.
#[derive(Debug)]
pub struct SimCache {
    map: HashMap<String, SimLog>,
    store: Option<File>,
    dir: Option<PathBuf>,
    hits: usize,
    misses: usize,
    loaded: usize,
}

impl SimCache {
    /// A purely in-memory cache (no persistence).
    #[must_use]
    pub fn in_memory() -> Self {
        SimCache {
            map: HashMap::new(),
            store: None,
            dir: None,
            hits: 0,
            misses: 0,
            loaded: 0,
        }
    }

    /// Opens (creating if needed) the on-disk store under `dir` and loads
    /// every existing entry.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created, or the
    /// store cannot be read or opened for appending. Malformed lines
    /// (truncated by a crash mid-append) are skipped, not fatal.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_FILE);
        let mut map = HashMap::new();
        let mut loaded = 0;
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(entry) = serde_json::from_str::<CacheEntry>(&line) else {
                    continue;
                };
                if map.insert(entry.key.id(), entry.log).is_none() {
                    loaded += 1;
                }
            }
        }
        let store = OpenOptions::new().create(true).append(true).open(&path)?;
        ddtr_obs::counter("engine.cache.load").add(loaded as u64);
        Ok(SimCache {
            map,
            store: Some(store),
            dir: Some(dir.to_path_buf()),
            hits: 0,
            misses: 0,
            loaded,
        })
    }

    /// The cache directory, when persistence is attached.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up a result by key identity, counting a hit when present.
    pub fn get(&mut self, id: &str) -> Option<SimLog> {
        match self.map.get(id) {
            Some(log) => {
                self.hits += 1;
                ddtr_obs::counter("engine.cache.hit").inc();
                Some(log.clone())
            }
            None => None,
        }
    }

    /// Counts an executed simulation whose result is *not* retained — used
    /// when caching is disabled, so the miss accounting stays truthful.
    pub fn note_miss(&mut self) {
        self.misses += 1;
        ddtr_obs::counter("engine.cache.miss").inc();
    }

    /// Records one executed simulation, appending it to the disk store when
    /// one is attached. Persistence failures degrade to in-memory caching
    /// (the run's results stay correct either way).
    pub fn insert(&mut self, key: &CacheKey, log: SimLog) {
        self.misses += 1;
        ddtr_obs::counter("engine.cache.miss").inc();
        if let Some(store) = &mut self.store {
            let entry = CacheEntry {
                key: key.clone(),
                log: log.clone(),
            };
            if let Ok(line) = serde_json::to_string(&entry) {
                let _ = writeln!(store, "{line}");
                ddtr_obs::counter("engine.cache.store").inc();
            }
        }
        self.map.insert(key.id(), log);
    }

    /// The cache's counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            hits: self.hits,
            misses: self.misses,
            loaded: self.loaded,
        }
    }

    /// Inspects a cache directory without opening it for writing: number
    /// of distinct entries and the store's size in bytes. Both are zero
    /// when no store exists yet.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing store cannot be read.
    pub fn inspect(dir: &Path) -> std::io::Result<(usize, u64)> {
        let path = dir.join(CACHE_FILE);
        if !path.exists() {
            return Ok((0, 0));
        }
        let bytes = std::fs::metadata(&path)?.len();
        let mut ids = std::collections::HashSet::new();
        for line in BufReader::new(File::open(&path)?).lines() {
            let line = line?;
            if let Ok(entry) = serde_json::from_str::<CacheEntry>(&line) {
                ids.insert(entry.key.id());
            }
        }
        Ok((ids.len(), bytes))
    }

    /// Deletes the on-disk store under `dir` (the directory itself is
    /// kept). Returns whether a store existed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store exists but cannot be removed.
    pub fn clear(dir: &Path) -> std::io::Result<bool> {
        let path = dir.join(CACHE_FILE);
        if path.exists() {
            std::fs::remove_file(&path)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::fingerprint_trace;
    use ddtr_apps::{AppKind, AppParams};
    use ddtr_ddt::DdtKind;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::NetworkPreset;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ddtr-engine-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (CacheKey, SimLog) {
        let trace = NetworkPreset::DartmouthBerry.generate(20);
        let params = AppParams::default();
        let combo = [DdtKind::Array, DdtKind::Dll];
        let key = CacheKey::new(
            AppKind::Drr,
            combo,
            &params,
            &trace,
            fingerprint_trace(&trace),
            &MemoryConfig::embedded_default(),
        );
        let log = crate::Simulator::new(MemoryConfig::embedded_default()).run(
            AppKind::Drr,
            combo,
            &params,
            &trace,
        );
        (key, log)
    }

    #[test]
    fn in_memory_cache_hits_after_insert() {
        let (key, log) = sample();
        let mut cache = SimCache::in_memory();
        assert!(cache.get(&key.id()).is_none());
        cache.insert(&key, log.clone());
        let back = cache.get(&key.id()).expect("hit");
        assert_eq!(back.report.accesses, log.report.accesses);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn disk_store_round_trips_across_instances() {
        let dir = temp_dir("roundtrip");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(&dir).expect("open");
            assert_eq!(cache.stats().loaded, 0);
            cache.insert(&key, log.clone());
        }
        let mut reopened = SimCache::open(&dir).expect("reopen");
        assert_eq!(reopened.stats().loaded, 1);
        let back = reopened.get(&key.id()).expect("persisted hit");
        assert_eq!(back.report.cycles, log.report.cycles);
        assert_eq!(back.combo, log.combo);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_lines_collapse_and_garbage_is_skipped() {
        let dir = temp_dir("dedup");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(&dir).expect("open");
            cache.insert(&key, log.clone());
        }
        {
            // A second writer appends the same entry plus a torn line.
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(CACHE_FILE))
                .expect("append");
            let entry = CacheEntry {
                key: key.clone(),
                log,
            };
            writeln!(f, "{}", serde_json::to_string(&entry).expect("ser")).expect("write");
            writeln!(f, "{{\"torn").expect("write");
        }
        let cache = SimCache::open(&dir).expect("reopen");
        assert_eq!(cache.stats().loaded, 1, "duplicates collapse");
        let (entries, bytes) = SimCache::inspect(&dir).expect("inspect");
        assert_eq!(entries, 1);
        assert!(bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_the_store() {
        let dir = temp_dir("clear");
        let (key, log) = sample();
        {
            let mut cache = SimCache::open(&dir).expect("open");
            cache.insert(&key, log);
        }
        assert!(SimCache::clear(&dir).expect("clear"));
        assert!(
            !SimCache::clear(&dir).expect("second clear"),
            "already gone"
        );
        assert_eq!(SimCache::inspect(&dir).expect("inspect"), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
