//! Structured, collision-safe identification of simulation points.
//!
//! The seed code keyed everything by ad-hoc strings (`"{network}/{params}"`
//! concatenations), which silently collide once a network name contains the
//! separator and cannot carry the content fingerprints the result cache
//! needs. This module replaces them with two structured types:
//!
//! * [`ConfigKey`] — the step-2 grouping key (network × application
//!   parameters), with a `Display` impl preserving the familiar
//!   `network/params` log form.
//! * [`CacheKey`] — the full content address of one simulation:
//!   application, combination, configuration labels **and** 64-bit
//!   fingerprints of the application parameters, the input trace, and the
//!   platform memory configuration. Two simulations share a [`CacheKey`]
//!   only if they compute the same result.

use crate::combo::{combo_label, Combo};
use ddtr_apps::{AppKind, AppParams};
use ddtr_mem::MemoryConfig;
use ddtr_trace::{StreamSpec, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version stamped into every cache identity; bump when the simulation
/// semantics or the fingerprint encoding change so stale on-disk entries
/// can never replay.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The step-2 configuration key: which network and which
/// application-parameter variant a simulation ran under.
///
/// Replaces the stringly `SimLog::config_key` of the seed: ordering,
/// hashing and equality act on the structured fields, while [`fmt::Display`]
/// keeps the `network/params` form the logs always used.
///
/// # Example
///
/// ```
/// use ddtr_engine::ConfigKey;
///
/// let key = ConfigKey::new("BWY-I", "radix128");
/// assert_eq!(key.to_string(), "BWY-I/radix128");
/// assert_eq!(key, "BWY-I/radix128"); // string comparisons still work
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConfigKey {
    /// Name of the network the input trace came from.
    pub network: String,
    /// Application-parameter label (e.g. `"radix128"`).
    pub params: String,
}

impl ConfigKey {
    /// Creates a configuration key.
    #[must_use]
    pub fn new(network: impl Into<String>, params: impl Into<String>) -> Self {
        ConfigKey {
            network: network.into(),
            params: params.into(),
        }
    }
}

impl fmt::Display for ConfigKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Honour width/alignment options by formatting the joined form.
        fmt::Display::fmt(&format!("{}/{}", self.network, self.params), f)
    }
}

impl PartialEq<str> for ConfigKey {
    /// Compares against the joined `network/params` form — a convenience
    /// for assertions and log readability. The joined form is inherently
    /// ambiguous when a network name itself contains `/`; only the
    /// structured comparison (`ConfigKey == ConfigKey`) is collision-safe.
    fn eq(&self, other: &str) -> bool {
        other
            .strip_prefix(self.network.as_str())
            .and_then(|rest| rest.strip_prefix('/'))
            == Some(self.params.as_str())
    }
}

impl PartialEq<&str> for ConfigKey {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

/// The full content address of one `(application, combination,
/// configuration)` simulation — the key of the engine's result cache.
///
/// Human-readable labels make cache files greppable; the three fingerprints
/// make the key collision-safe: changing a single packet of the trace, an
/// application parameter, or the platform memory model changes the key.
///
/// `mem_fp` is what makes the memory-hierarchy sweep axis cacheable for
/// free: every platform of a `ddtr sweep` addresses its own cache entries,
/// so sweep cells are individually reusable — a repeated sweep executes
/// nothing, and adding one platform column re-executes only that column.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// Application simulated.
    pub app: AppKind,
    /// DDT combination label (e.g. `"AR+DLL"`).
    pub combo: String,
    /// Network × parameter-variant the simulation ran under.
    pub config: ConfigKey,
    /// Fingerprint of the full [`AppParams`] contents.
    pub params_fp: u64,
    /// Fingerprint of the input trace (name and every packet).
    pub trace_fp: u64,
    /// Fingerprint of the platform [`MemoryConfig`].
    pub mem_fp: u64,
}

impl CacheKey {
    /// Builds the key for one simulation point, fingerprinting the
    /// parameters and memory configuration. The trace fingerprint is taken
    /// as an argument because traces are shared across many points — use
    /// [`fingerprint_trace`] once per trace.
    #[must_use]
    pub fn new(
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        trace: &Trace,
        trace_fp: u64,
        mem: &MemoryConfig,
    ) -> Self {
        Self::for_network(app, combo, params, &trace.network, trace_fp, mem)
    }

    /// Builds the key from a network name and a precomputed trace/stream
    /// fingerprint — the constructor shared by the materialized and
    /// streamed paths (a streamed simulation has no [`Trace`] to name the
    /// network from, only its [`StreamSpec`]).
    #[must_use]
    pub fn for_network(
        app: AppKind,
        combo: Combo,
        params: &AppParams,
        network: &str,
        trace_fp: u64,
        mem: &MemoryConfig,
    ) -> Self {
        CacheKey {
            app,
            combo: combo_label(combo),
            config: ConfigKey::new(network, params.label(app)),
            params_fp: fingerprint_value(params),
            trace_fp,
            mem_fp: fingerprint_value(mem),
        }
    }

    /// The content-address string used as the cache identity: every
    /// structured field plus the format version, so distinct keys can never
    /// map to the same identity.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "v{}:{}:{}:{}:{}:{:016x}:{:016x}:{:016x}",
            CACHE_FORMAT_VERSION,
            self.app,
            self.combo,
            self.config.network,
            self.config.params,
            self.params_fp,
            self.trace_fp,
            self.mem_fp
        )
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} on {} [{:016x}/{:016x}/{:016x}]",
            self.app, self.combo, self.config, self.params_fp, self.trace_fp, self.mem_fp
        )
    }
}

/// 64-bit FNV-1a over a byte stream.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content fingerprint of any serialisable value: FNV-1a over its canonical
/// JSON encoding. Deterministic across runs and processes for a given
/// build, which is all the on-disk cache needs (the format version guards
/// against encoding changes).
#[must_use]
pub fn fingerprint_value<T: Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("fingerprinted values serialise");
    fnv1a64(json.as_bytes())
}

/// Content fingerprint of a [`Trace`]: its network name, length and every
/// packet. Compute once per trace and share across the batch — traces are
/// by far the largest key component.
#[must_use]
pub fn fingerprint_trace(trace: &Trace) -> u64 {
    fingerprint_value(trace)
}

/// Content fingerprint of a [`StreamSpec`]: its name and every phase's
/// full parameter set. Constant-time in the stream's packet count — this
/// is what lets the cache address million-packet workloads without ever
/// hashing (or holding) their packets. Domain-separated from trace
/// fingerprints so a spec hash can never collide with a packet hash.
#[must_use]
pub fn fingerprint_stream_spec(spec: &StreamSpec) -> u64 {
    let json = serde_json::to_string(spec).expect("stream specs serialise");
    fnv1a64(format!("stream:{json}").as_bytes())
}

// Everything `fingerprint_value`/`fingerprint_stream_spec` serialise into a
// cache identity, field by field. `ddtr-lint`'s cache-key-coverage rule
// cross-checks this manifest against the real struct definitions: adding a
// field to any of these structs (or hiding one with `#[serde(skip)]`)
// fails the lint until the manifest — and therefore this file, where
// `CACHE_FORMAT_VERSION` lives — is revisited. That is the point: a field
// that changes simulation semantics must also bump the format version.
//
// ddtr-lint: cache-key-coverage begin
// AppParams @ crates/apps/src/params.rs: route_table_size, firewall_rules, drr_quantum, url_patterns, nat_ports, table_cap, seed
// MemoryConfig @ crates/mem/src/config.rs: l1, l2, spm, dram, alloc_cost, fit_policy, cpu_op_cycles, heap_base
// CacheConfig @ crates/mem/src/config.rs: capacity_bytes, line_bytes, ways, hit_cycles, replacement
// SpmConfig @ crates/mem/src/config.rs: capacity_bytes, access_cycles
// DramConfig @ crates/mem/src/config.rs: access_cycles, capacity_bytes
// AllocCostModel @ crates/mem/src/config.rs: accesses_per_alloc, accesses_per_free, cycles_per_alloc, cycles_per_free
// TraceSpec @ crates/trace/src/spec.rs: name, nodes, mean_rate_pps, sizes, flows, flow_skew, url_fraction, burstiness, seed
// SizeProfile @ crates/trace/src/spec.rs: small, medium, large, mtu
// BurstProfile @ crates/trace/src/spec.rs: mean_burst_pkts, off_gap_factor, locality
// StreamSpec @ crates/trace/src/stream.rs: name, phases
// StreamPhase @ crates/trace/src/stream.rs: spec, packets
// Trace @ crates/trace/src/packet.rs: network, packets
// Packet @ crates/trace/src/packet.rs: ts_us, src, dst, sport, dport, proto, bytes, payload
// ddtr-lint: cache-key-coverage end

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_ddt::DdtKind;
    use ddtr_trace::NetworkPreset;

    fn params() -> AppParams {
        AppParams::default()
    }

    fn key_for(trace: &Trace, combo: Combo) -> CacheKey {
        CacheKey::new(
            AppKind::Drr,
            combo,
            &params(),
            trace,
            fingerprint_trace(trace),
            &MemoryConfig::embedded_default(),
        )
    }

    #[test]
    fn config_key_displays_like_the_legacy_string() {
        let key = ConfigKey::new("BWY-I", "q512");
        assert_eq!(key.to_string(), "BWY-I/q512");
        // Width/alignment options reach the joined form.
        assert_eq!(format!("{key:>12}"), "  BWY-I/q512");
    }

    #[test]
    fn config_key_string_equality_is_not_fooled_by_separators() {
        // "a/b" + "c" and "a" + "b/c" render identically but are distinct
        // structured keys — the collision the stringly form had.
        let left = ConfigKey::new("a/b", "c");
        let right = ConfigKey::new("a", "b/c");
        assert_eq!(left.to_string(), right.to_string());
        assert_ne!(left, right);
        // String comparison goes through the joined form, so it inherits
        // the ambiguity — both keys match it. Structured equality above is
        // the collision-safe comparison.
        assert_eq!(right, "a/b/c");
        assert_eq!(left, "a/b/c");
    }

    #[test]
    fn cache_key_distinguishes_every_dimension() {
        let trace = NetworkPreset::DartmouthBerry.generate(40);
        let base = key_for(&trace, [DdtKind::Array, DdtKind::Sll]);

        let other_combo = key_for(&trace, [DdtKind::Sll, DdtKind::Array]);
        assert_ne!(base.id(), other_combo.id());

        let longer = NetworkPreset::DartmouthBerry.generate(41);
        let other_trace = key_for(&longer, [DdtKind::Array, DdtKind::Sll]);
        assert_ne!(base.id(), other_trace.id());

        let mut p = params();
        p.drr_quantum += 1;
        let other_params = CacheKey::new(
            AppKind::Drr,
            [DdtKind::Array, DdtKind::Sll],
            &p,
            &trace,
            fingerprint_trace(&trace),
            &MemoryConfig::embedded_default(),
        );
        assert_ne!(base.id(), other_params.id());

        let other_mem = CacheKey::new(
            AppKind::Drr,
            [DdtKind::Array, DdtKind::Sll],
            &params(),
            &trace,
            fingerprint_trace(&trace),
            &MemoryConfig::with_l2(),
        );
        assert_ne!(base.id(), other_mem.id());
    }

    #[test]
    fn cache_key_is_stable_for_identical_inputs() {
        let trace = NetworkPreset::NlanrAix.generate(30);
        let a = key_for(&trace, [DdtKind::Dll, DdtKind::Dll]);
        let b = key_for(&trace, [DdtKind::Dll, DdtKind::Dll]);
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn cache_key_serialises_round_trip() {
        let trace = NetworkPreset::DartmouthBerry.generate(10);
        let key = key_for(&trace, [DdtKind::Array, DdtKind::Dll]);
        let json = serde_json::to_string(&key).expect("serialise");
        let back: CacheKey = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, key);
        assert_eq!(back.id(), key.id());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
