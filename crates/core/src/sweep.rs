//! The scenarios × platforms sweep: one run over the whole platform
//! family.
//!
//! The scenario matrix ([`crate::scenarios`]) varies *what the network is
//! going through*; this module adds the orthogonal axis the paper's
//! methodology is actually parameterised by — *which platform the
//! application runs on*. A sweep evaluates every (application, scenario,
//! memory preset) cell to its Pareto front and then answers the
//! cross-platform question directly: **which DDT combinations stay
//! Pareto-optimal across the platform family?** ([`SweepMatrix::survivors`]).
//!
//! Everything streams through the engine, and because the engine's
//! [`CacheKey`](ddtr_engine::CacheKey) fingerprints the memory
//! configuration, sweep cells are individually reusable: a repeated sweep
//! executes nothing, and adding one platform column re-executes only that
//! column (both test-enforced).

use crate::error::ExploreError;
use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_engine::{combos_from, fingerprint_stream_spec, ExploreEngine, SimLog, SimUnit};
use ddtr_mem::MemoryPreset;
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::{NetworkPreset, Scenario, StreamSpec};
use serde::{Deserialize, Serialize};

/// Configuration of one scenarios × platforms sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Applications forming the matrix rows.
    pub apps: Vec<AppKind>,
    /// Scenarios forming the workload axis.
    pub scenarios: Vec<Scenario>,
    /// Memory presets forming the platform axis.
    pub mem_presets: Vec<MemoryPreset>,
    /// Base network preset every scenario is derived from.
    pub base: NetworkPreset,
    /// The DDT candidate set explored per cell.
    pub candidates: Vec<DdtKind>,
    /// Packets streamed per simulation.
    pub packets_per_sim: usize,
    /// Application parameters of the runs.
    pub params: AppParams,
}

impl SweepConfig {
    /// The full sweep: all four paper applications × all scenarios × the
    /// whole platform catalog, paper-sized traces.
    #[must_use]
    pub fn paper(base: NetworkPreset) -> Self {
        SweepConfig {
            apps: AppKind::ALL.to_vec(),
            scenarios: Scenario::ALL.to_vec(),
            mem_presets: MemoryPreset::ALL.to_vec(),
            base,
            candidates: DdtKind::ALL.to_vec(),
            packets_per_sim: 400,
            params: AppParams::default(),
        }
    }

    /// A reduced sweep for tests and examples: one app row, two
    /// scenarios, two platforms, short traces.
    #[must_use]
    pub fn quick(base: NetworkPreset) -> Self {
        let params = AppParams {
            route_table_size: 48,
            firewall_rules: 16,
            table_cap: 24,
            ..AppParams::default()
        };
        SweepConfig {
            apps: vec![AppKind::Drr],
            scenarios: vec![Scenario::Baseline, Scenario::FlashCrowd],
            mem_presets: vec![MemoryPreset::Embedded, MemoryPreset::L2],
            packets_per_sim: 80,
            params,
            ..Self::paper(base)
        }
    }

    /// Number of sweep cells (apps × scenarios × presets).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.apps.len() * self.scenarios.len() * self.mem_presets.len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidConfig`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.apps.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one application is required".into(),
            ));
        }
        if self.scenarios.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one scenario is required".into(),
            ));
        }
        if self.mem_presets.is_empty() {
            return Err(ExploreError::InvalidConfig(format!(
                "at least one memory preset is required (expected {})",
                MemoryPreset::names()
            )));
        }
        // Duplicates on any axis would silently double-count cells in the
        // survivors aggregation — reject them all.
        fn distinct<T: Ord + Clone>(axis: &[T], what: &str) -> Result<(), ExploreError> {
            let mut seen = axis.to_vec();
            seen.sort();
            seen.dedup();
            if seen.len() != axis.len() {
                return Err(ExploreError::InvalidConfig(format!(
                    "{what} must be distinct (duplicates would double-count sweep cells)"
                )));
            }
            Ok(())
        }
        distinct(&self.mem_presets, "memory presets")?;
        distinct(&self.scenarios, "scenarios")?;
        distinct(&self.apps, "applications")?;
        if self.candidates.len() < 2 {
            return Err(ExploreError::InvalidConfig(
                "at least two DDT candidates are required".into(),
            ));
        }
        if self.packets_per_sim == 0 {
            return Err(ExploreError::InvalidConfig(
                "packets_per_sim must be non-zero".into(),
            ));
        }
        self.params
            .validate()
            .map_err(ExploreError::InvalidConfig)?;
        for preset in &self.mem_presets {
            preset
                .config()
                .validate()
                .map_err(ExploreError::InvalidConfig)?;
        }
        Ok(())
    }
}

/// One sweep cell: the Pareto front of one application under one scenario
/// on one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Application of this cell.
    pub app: AppKind,
    /// Scenario of this cell.
    pub scenario: Scenario,
    /// Platform (memory preset) of this cell.
    pub mem: MemoryPreset,
    /// Scenario-qualified network name (e.g. `"BWY-I#flash-crowd"`).
    pub network: String,
    /// Combinations evaluated for this cell.
    pub evaluations: usize,
    /// The cell's Pareto-optimal logs, in canonical combination order.
    pub front: Vec<SimLog>,
}

impl SweepCell {
    /// Labels of the front combinations, in order.
    #[must_use]
    pub fn front_labels(&self) -> Vec<String> {
        self.front.iter().map(|l| l.combo.clone()).collect()
    }
}

/// Cross-platform standing of one DDT combination: how many sweep cells
/// keep it on their Pareto front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSurvivor {
    /// The combination label (e.g. `"AR+SLL(AR)"`).
    pub combo: String,
    /// Cells whose Pareto front contains the combination.
    pub cells_on_front: usize,
}

/// Result of a sweep: one cell per (application, scenario, preset), plus
/// the cross-platform aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepMatrix {
    /// The configuration swept.
    pub config: SweepConfig,
    /// The cells, in `apps × scenarios × presets` order.
    pub cells: Vec<SweepCell>,
    /// Every combination appearing on at least one cell front, with its
    /// cell count — ordered by count (descending), then label.
    pub survivors: Vec<SweepSurvivor>,
}

impl SweepMatrix {
    fn from_cells(config: SweepConfig, cells: Vec<SweepCell>) -> Self {
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for cell in &cells {
            for log in &cell.front {
                *counts.entry(log.combo.as_str()).or_insert(0) += 1;
            }
        }
        let mut survivors: Vec<SweepSurvivor> = counts
            .into_iter()
            .map(|(combo, cells_on_front)| SweepSurvivor {
                combo: combo.to_owned(),
                cells_on_front,
            })
            .collect();
        // BTreeMap iteration already ordered by label; a stable sort by
        // descending count keeps the label order within equal counts.
        survivors.sort_by_key(|s| std::cmp::Reverse(s.cells_on_front));
        SweepMatrix {
            config,
            cells,
            survivors,
        }
    }

    /// The cell of one (application, scenario, preset) triple, if present.
    #[must_use]
    pub fn cell(&self, app: AppKind, scenario: Scenario, mem: MemoryPreset) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.app == app && c.scenario == scenario && c.mem == mem)
    }

    /// Total combinations evaluated across all cells (cache hits
    /// included; the engine's stats report how many actually executed).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.cells.iter().map(|c| c.evaluations).sum()
    }

    /// Labels of the combinations on the Pareto front of **at least `k`**
    /// cells — the "which DDTs survive across the platform family?"
    /// answer. `robust_combos(cells.len())` is the intersection of every
    /// front.
    #[must_use]
    pub fn robust_combos(&self, k: usize) -> Vec<&str> {
        self.survivors
            .iter()
            .filter(|s| s.cells_on_front >= k)
            .map(|s| s.combo.as_str())
            .collect()
    }
}

/// Runs the sweep on a fresh in-memory engine. See [`explore_sweep_with`].
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_sweep(cfg: &SweepConfig) -> Result<SweepMatrix, ExploreError> {
    explore_sweep_with(&mut ExploreEngine::in_memory(), cfg)
}

/// Runs the scenarios × platforms sweep on an explicit engine. See
/// [`explore_sweep_observed`] for the streaming variant the service uses.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
///
/// # Example
///
/// ```
/// use ddtr_core::{explore_sweep, SweepConfig};
/// use ddtr_trace::NetworkPreset;
///
/// let mut cfg = SweepConfig::quick(NetworkPreset::DartmouthBerry);
/// cfg.packets_per_sim = 40;
/// let matrix = explore_sweep(&cfg)?;
/// assert_eq!(matrix.cells.len(), 4); // 1 app x 2 scenarios x 2 platforms
/// // Some combination survives on every platform cell.
/// assert!(!matrix.robust_combos(matrix.cells.len()).is_empty());
/// # Ok::<(), ddtr_core::ExploreError>(())
/// ```
pub fn explore_sweep_with(
    engine: &mut ExploreEngine,
    cfg: &SweepConfig,
) -> Result<SweepMatrix, ExploreError> {
    explore_sweep_observed(engine, cfg, |_, _, _| {})
}

/// Runs the sweep, invoking `on_cell(&cell, done, total)` after each cell
/// completes — the hook `ddtr serve` streams per-cell progress from.
/// Cells complete in deterministic `apps × scenarios × presets` order.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation, and propagates engine failures (including cancellation).
pub fn explore_sweep_observed(
    engine: &mut ExploreEngine,
    cfg: &SweepConfig,
    mut on_cell: impl FnMut(&SweepCell, usize, usize),
) -> Result<SweepMatrix, ExploreError> {
    cfg.validate()?;
    let combos = combos_from(&cfg.candidates);
    let total = cfg.cells();
    let mut cells = Vec::with_capacity(total);
    for &app in &cfg.apps {
        for &scenario in &cfg.scenarios {
            let spec: StreamSpec = scenario.stream_spec(cfg.base, cfg.packets_per_sim);
            let fp = fingerprint_stream_spec(&spec);
            for &mem in &cfg.mem_presets {
                let _cell_span = ddtr_obs::Span::enter("core.sweep.cell");
                let mem_cfg = mem.config();
                let units: Vec<SimUnit> = combos
                    .iter()
                    .map(|&combo| {
                        SimUnit::from_source(
                            app,
                            combo,
                            &cfg.params,
                            ddtr_engine::TraceSource::Streamed(&spec),
                            fp,
                            mem_cfg,
                        )
                    })
                    .collect();
                let logs = engine.try_evaluate_batch(&units)?;
                let points: Vec<[f64; 4]> = logs.iter().map(SimLog::objectives).collect();
                let front: Vec<SimLog> = pareto_front_indices(&points)
                    .into_iter()
                    .map(|i| logs[i].clone())
                    .collect();
                let cell = SweepCell {
                    app,
                    scenario,
                    mem,
                    network: spec.name().to_owned(),
                    evaluations: logs.len(),
                    front,
                };
                on_cell(&cell, cells.len() + 1, total);
                cells.push(cell);
            }
        }
    }
    Ok(SweepMatrix::from_cells(cfg.clone(), cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_engine::EngineSession;

    fn tiny() -> SweepConfig {
        let mut cfg = SweepConfig::quick(NetworkPreset::DartmouthBerry);
        cfg.packets_per_sim = 40;
        cfg
    }

    #[test]
    fn sweep_covers_every_cell_and_aggregates_survivors() {
        let mut cfg = tiny();
        cfg.apps = vec![AppKind::Drr, AppKind::Url];
        let matrix = explore_sweep(&cfg).expect("sweep");
        assert_eq!(matrix.cells.len(), 8, "2 apps x 2 scenarios x 2 presets");
        assert_eq!(matrix.evaluations(), 8 * 100);
        for cell in &matrix.cells {
            assert!(
                !cell.front.is_empty(),
                "{}/{}/{}",
                cell.app,
                cell.scenario,
                cell.mem
            );
            assert!(cell.network.contains('#'));
        }
        assert!(matrix
            .cell(AppKind::Drr, Scenario::Baseline, MemoryPreset::L2)
            .is_some());
        assert!(matrix
            .cell(AppKind::Drr, Scenario::Baseline, MemoryPreset::Deep)
            .is_none());
        // Survivor counts are consistent with the cells.
        let total_front_entries: usize = matrix.cells.iter().map(|c| c.front.len()).sum();
        assert_eq!(
            matrix
                .survivors
                .iter()
                .map(|s| s.cells_on_front)
                .sum::<usize>(),
            total_front_entries
        );
        // Ordered by count descending.
        assert!(matrix
            .survivors
            .windows(2)
            .all(|w| w[0].cells_on_front >= w[1].cells_on_front));
        // robust_combos(1) lists everything; the intersection is a subset.
        assert_eq!(matrix.robust_combos(1).len(), matrix.survivors.len());
        assert!(matrix.robust_combos(matrix.cells.len()).len() <= matrix.survivors.len());
    }

    #[test]
    fn platforms_shift_the_measured_costs() {
        // The point of the axis: the same (app, scenario) must measure
        // differently on different platforms.
        let matrix = explore_sweep(&tiny()).expect("sweep");
        let cycles = |mem: MemoryPreset| {
            matrix
                .cell(AppKind::Drr, Scenario::Baseline, mem)
                .expect("cell")
                .front
                .first()
                .expect("front")
                .report
                .cycles
        };
        assert_ne!(cycles(MemoryPreset::Embedded), cycles(MemoryPreset::L2));
    }

    #[test]
    fn sweep_is_deterministic_at_any_worker_count() {
        let cfg = tiny();
        let a = explore_sweep_with(&mut ExploreEngine::with_jobs(1), &cfg).expect("1 job");
        let b = explore_sweep_with(&mut ExploreEngine::with_jobs(8), &cfg).expect("8 jobs");
        assert_eq!(
            serde_json::to_string(&a.cells).expect("ser"),
            serde_json::to_string(&b.cells).expect("ser"),
        );
        assert_eq!(
            serde_json::to_string(&a.survivors).expect("ser"),
            serde_json::to_string(&b.survivors).expect("ser"),
        );
    }

    #[test]
    fn repeated_sweep_executes_nothing_and_a_new_preset_only_its_column() {
        // Through the session — the resident-service shape — so the
        // counters are per-request-exact.
        let session = EngineSession::new(ddtr_engine::EngineConfig::with_jobs(2)).expect("session");
        let cfg = tiny();

        let mut cold = session.engine();
        let first = explore_sweep_with(&mut cold, &cfg).expect("cold");
        let cold_executed = cold.control().progress().executed;
        assert_eq!(cold_executed, 4 * 100, "every cell simulates");

        // Identical sweep: 0 executions, byte-identical matrix.
        let mut warm = session.engine();
        let second = explore_sweep_with(&mut warm, &cfg).expect("warm");
        let warm_progress = warm.control().progress();
        assert_eq!(warm_progress.executed, 0, "warm sweep executes nothing");
        assert_eq!(warm_progress.hits, 4 * 100);
        assert_eq!(
            serde_json::to_string(&first.cells).expect("ser"),
            serde_json::to_string(&second.cells).expect("ser"),
        );

        // Swap one platform column: only that column's cells execute.
        let mut wider = cfg.clone();
        wider.mem_presets = vec![MemoryPreset::Embedded, MemoryPreset::L2, MemoryPreset::Deep];
        let mut column = session.engine();
        explore_sweep_with(&mut column, &wider).expect("new column");
        let progress = column.control().progress();
        assert_eq!(
            progress.executed,
            2 * 100,
            "only the new preset's column (1 app x 2 scenarios) executes"
        );
        assert_eq!(progress.hits, 4 * 100, "the old columns replay from cache");
    }

    #[test]
    fn observer_sees_every_cell_in_order() {
        let mut seen = Vec::new();
        let matrix = explore_sweep_observed(
            &mut ExploreEngine::in_memory(),
            &tiny(),
            |cell, done, total| {
                seen.push((cell.app, cell.scenario, cell.mem, done, total));
            },
        )
        .expect("sweep");
        assert_eq!(seen.len(), matrix.cells.len());
        for (i, (app, scenario, mem, done, total)) in seen.iter().enumerate() {
            assert_eq!(*done, i + 1);
            assert_eq!(*total, matrix.cells.len());
            let cell = &matrix.cells[i];
            assert_eq!((cell.app, cell.scenario, cell.mem), (*app, *scenario, *mem));
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = tiny();
        cfg.apps.clear();
        assert!(explore_sweep(&cfg).is_err());
        let mut cfg = tiny();
        cfg.scenarios.clear();
        assert!(explore_sweep(&cfg).is_err());
        let mut cfg = tiny();
        cfg.mem_presets.clear();
        let err = explore_sweep(&cfg).unwrap_err().to_string();
        assert!(err.contains("embedded"), "lists the catalog: {err}");
        let mut cfg = tiny();
        cfg.mem_presets = vec![MemoryPreset::L2, MemoryPreset::L2];
        let err = explore_sweep(&cfg).unwrap_err().to_string();
        assert!(err.contains("distinct"), "{err}");
        // Duplicates on the other axes would double-count survivors too.
        let mut cfg = tiny();
        cfg.scenarios = vec![Scenario::Baseline, Scenario::Baseline];
        let err = explore_sweep(&cfg).unwrap_err().to_string();
        assert!(err.contains("distinct"), "{err}");
        let mut cfg = tiny();
        cfg.apps = vec![AppKind::Drr, AppKind::Drr];
        let err = explore_sweep(&cfg).unwrap_err().to_string();
        assert!(err.contains("distinct"), "{err}");
        let mut cfg = tiny();
        cfg.candidates.truncate(1);
        assert!(explore_sweep(&cfg).is_err());
        let mut cfg = tiny();
        cfg.packets_per_sim = 0;
        assert!(explore_sweep(&cfg).is_err());
    }

    #[test]
    fn sweep_matrix_serialises_round_trip() {
        let matrix = explore_sweep(&tiny()).expect("sweep");
        let json = serde_json::to_string(&matrix).expect("ser");
        let back: SweepMatrix = serde_json::from_str(&json).expect("de");
        assert_eq!(serde_json::to_string(&back).expect("ser"), json);
    }
}
