//! The full three-step methodology pipeline.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::profile::{profile_application, ProfileReport};
use crate::step1::{explore_application_level_with, Step1Result};
use crate::step2::{explore_network_level_with, Step2Result};
use crate::step3::{explore_pareto_level, ParetoReport};
use ddtr_engine::ExploreEngine;
use serde::{Deserialize, Serialize};

/// Simulation accounting, reproducing the paper's Table 1 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCounts {
    /// Simulations an exhaustive exploration would need.
    pub exhaustive: usize,
    /// Simulations the methodology actually ran (step 1 + step 2).
    pub reduced: usize,
    /// Pareto-optimal design points offered to the designer.
    pub pareto_optimal: usize,
}

impl SimCounts {
    /// Fraction of simulations avoided versus exhaustive exploration.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.exhaustive == 0 {
            0.0
        } else {
            1.0 - self.reduced as f64 / self.exhaustive as f64
        }
    }
}

/// How the execution engine served one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Worker threads the engine's batches ran on.
    pub jobs: usize,
    /// Simulations answered from the result cache.
    pub cache_hits: usize,
    /// Simulations actually executed.
    pub executed: usize,
}

/// Everything the methodology produces for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodologyOutcome {
    /// The configuration explored.
    pub config: MethodologyConfig,
    /// Dominant-container profiling (step 1, first substep).
    pub profile: ProfileReport,
    /// Application-level exploration (step 1).
    pub step1: Step1Result,
    /// Network-level exploration (step 2).
    pub step2: Step2Result,
    /// Pareto-level exploration (step 3).
    pub pareto: ParetoReport,
    /// Simulation accounting.
    pub counts: SimCounts,
    /// Execution-engine accounting for this run (absent in logs persisted
    /// before the engine existed).
    #[serde(default)]
    pub engine: EngineReport,
}

/// The automated tool flow: profile → step 1 → step 2 → step 3.
///
/// # Example
///
/// ```
/// use ddtr_core::{Methodology, MethodologyConfig};
/// use ddtr_apps::AppKind;
///
/// let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Url)).run()?;
/// // quick mode uses only two network configurations, so the
/// // reduction is modest; the paper-sized sweeps reach ~80%.
/// assert!(outcome.counts.reduction() > 0.2);
/// # Ok::<(), ddtr_core::ExploreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Methodology {
    config: MethodologyConfig,
}

impl Methodology {
    /// Creates the pipeline for `config`.
    #[must_use]
    pub fn new(config: MethodologyConfig) -> Self {
        Methodology { config }
    }

    /// The configuration this pipeline will run.
    #[must_use]
    pub fn config(&self) -> &MethodologyConfig {
        &self.config
    }

    /// Runs all three steps on a default engine built from the
    /// configuration (see [`MethodologyConfig::default_engine`]),
    /// propagating restrictions from each step to the next (the point of
    /// the stepwise procedure: "decrease the number of total simulations
    /// needed").
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] if the configuration is invalid or a step
    /// receives unusable input.
    pub fn run(&self) -> Result<MethodologyOutcome, ExploreError> {
        self.run_with(&mut self.config.default_engine())
    }

    /// Runs all three steps on an explicit execution engine: `--jobs`
    /// parallelism, cross-step result reuse (step 2 revisits step 1's
    /// reference configuration for free) and, when the engine carries a
    /// cache directory, persistence that makes a re-run near-instant.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] if the configuration is invalid or a step
    /// receives unusable input.
    pub fn run_with(&self, engine: &mut ExploreEngine) -> Result<MethodologyOutcome, ExploreError> {
        self.config.validate()?;
        let before = engine.stats();
        let profile = {
            let _span = ddtr_obs::Span::enter("core.profile");
            profile_application(&self.config)?
        };
        let step1 = {
            let _span = ddtr_obs::Span::enter("core.step1");
            explore_application_level_with(engine, &self.config)?
        };
        let step2 = {
            let _span = ddtr_obs::Span::enter("core.step2");
            explore_network_level_with(engine, &self.config, &step1.survivor_combos())?
        };
        let pareto = {
            let _span = ddtr_obs::Span::enter("core.step3");
            explore_pareto_level(&step2)?
        };
        let counts = SimCounts {
            exhaustive: self.config.exhaustive_simulations(),
            reduced: step1.measurements.len() + step2.simulations(),
            pareto_optimal: pareto.global_front.len(),
        };
        let after = engine.stats();
        let engine_report = EngineReport {
            jobs: engine.jobs(),
            cache_hits: after.hits - before.hits,
            executed: after.misses - before.misses,
        };
        Ok(MethodologyOutcome {
            config: self.config.clone(),
            profile,
            step1,
            step2,
            pareto,
            counts,
            engine: engine_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_apps::AppKind;

    #[test]
    fn full_pipeline_on_drr() {
        let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Drr))
            .run()
            .expect("pipeline");
        // Step 1 simulated the whole application-level space.
        assert_eq!(outcome.step1.measurements.len(), 100);
        // Step 2 only simulated survivors.
        assert_eq!(
            outcome.step2.simulations(),
            outcome.step1.survivors.len() * outcome.config.configurations()
        );
        // The reduction against exhaustive exploration is substantial.
        // Quick mode has 2 configurations: exhaustive = 200, reduced =
        // 100 + survivors*2, so ~0.3 is the expected ballpark. The paper
        // -sized sweeps (benches) reach ~80%.
        assert!(
            outcome.counts.reduction() > 0.25,
            "reduction {:.2}",
            outcome.counts.reduction()
        );
        // A small Pareto set comes out.
        let p = outcome.counts.pareto_optimal;
        assert!((1..=20).contains(&p), "pareto set size {p}");
        // Profiling identified the declared dominant slots.
        assert!(outcome.profile.matches_declared());
    }

    #[test]
    fn rerun_on_a_warm_engine_is_pure_cache_and_identical() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let mut engine = ExploreEngine::in_memory();
        let cold = Methodology::new(cfg.clone())
            .run_with(&mut engine)
            .expect("cold run");
        assert!(cold.engine.executed > 0);
        let warm = Methodology::new(cfg)
            .run_with(&mut engine)
            .expect("warm run");
        assert_eq!(warm.engine.executed, 0, "warm run must be pure cache");
        assert!(warm.engine.cache_hits >= warm.counts.reduced);
        let front = |o: &MethodologyOutcome| {
            serde_json::to_string(&o.pareto.global_front).expect("serialise")
        };
        assert_eq!(front(&cold), front(&warm), "byte-identical Pareto front");
    }

    #[test]
    fn reduction_accounts_are_consistent() {
        let counts = SimCounts {
            exhaustive: 1000,
            reduced: 250,
            pareto_optimal: 5,
        };
        assert!((counts.reduction() - 0.75).abs() < 1e-12);
        let zero = SimCounts {
            exhaustive: 0,
            reduced: 0,
            pareto_optimal: 0,
        };
        assert_eq!(zero.reduction(), 0.0);
    }

    #[test]
    fn outcome_serialises() {
        let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Url))
            .run()
            .expect("pipeline");
        let json = serde_json::to_string(&outcome).expect("serialise");
        assert!(json.contains("global_front"));
    }
}
