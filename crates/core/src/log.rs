//! Persistence of exploration logs as JSON lines.
//!
//! The original tool flow wrote "Gigabytes of log files" that the Perl
//! post-processor parsed into Pareto curves. This module provides the same
//! decoupling: step 2 can stream [`SimLog`] records to a writer, and step 3
//! can be re-run later from the file alone.

use crate::error::ExploreError;
use crate::step2::Step2Result;
use ddtr_engine::SimLog;
use std::io::{BufRead, Write};

/// Writes `logs` as one JSON object per line.
///
/// A mutable reference also works as the writer (`&mut Vec<u8>`).
///
/// # Errors
///
/// Returns [`ExploreError::Log`] on serialisation or I/O failure.
pub fn write_logs<W: Write>(logs: &[SimLog], mut w: W) -> Result<(), ExploreError> {
    for log in logs {
        let line = serde_json::to_string(log).map_err(|e| ExploreError::Log(e.to_string()))?;
        writeln!(w, "{line}").map_err(|e| ExploreError::Log(e.to_string()))?;
    }
    Ok(())
}

/// Reads JSON-lines logs written by [`write_logs`]. Blank lines are
/// skipped.
///
/// # Errors
///
/// Returns [`ExploreError::Log`] naming the first malformed line.
pub fn read_logs<R: BufRead>(r: R) -> Result<Vec<SimLog>, ExploreError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ExploreError::Log(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let log: SimLog = serde_json::from_str(&line)
            .map_err(|e| ExploreError::Log(format!("line {}: {e}", i + 1)))?;
        out.push(log);
    }
    Ok(out)
}

/// Rebuilds a [`Step2Result`] from persisted logs so step 3 can run
/// without re-simulating (configuration metadata is not persisted — only
/// what step 3 needs).
#[must_use]
pub fn step2_from_logs(logs: Vec<SimLog>) -> Step2Result {
    Step2Result {
        configs: Vec::new(),
        logs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodologyConfig;
    use crate::step2::explore_network_level;
    use crate::step3::explore_pareto_level;
    use ddtr_apps::AppKind;
    use ddtr_ddt::DdtKind;

    fn sample_logs() -> Vec<SimLog> {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        explore_network_level(
            &cfg,
            &[[DdtKind::Array, DdtKind::Sll], [DdtKind::Dll, DdtKind::Dll]],
        )
        .expect("step 2 runs")
        .logs
    }

    #[test]
    fn logs_round_trip_through_jsonl() {
        let logs = sample_logs();
        let mut buf = Vec::new();
        write_logs(&logs, &mut buf).expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), logs.len());
        let back = read_logs(text.as_bytes()).expect("reads");
        assert_eq!(back.len(), logs.len());
        for (a, b) in logs.iter().zip(back.iter()) {
            assert_eq!(a.combo, b.combo);
            assert_eq!(a.config_key(), b.config_key());
            assert_eq!(a.report.accesses, b.report.accesses);
        }
    }

    #[test]
    fn step3_from_persisted_logs_equals_direct() {
        let logs = sample_logs();
        let direct = explore_pareto_level(&step2_from_logs(logs.clone())).expect("direct");
        let mut buf = Vec::new();
        write_logs(&logs, &mut buf).expect("writes");
        let reread = read_logs(buf.as_slice()).expect("reads");
        let via_file = explore_pareto_level(&step2_from_logs(reread)).expect("via file");
        let key = |r: &crate::step3::ParetoReport| {
            r.global_front
                .iter()
                .map(|p| p.combo.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&direct), key(&via_file));
    }

    #[test]
    fn malformed_line_is_located() {
        let text = "\n{not json}\n";
        let err = read_logs(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let logs = sample_logs();
        let mut buf = Vec::new();
        write_logs(&logs[..1], &mut buf).expect("writes");
        let padded = format!("\n{}\n\n", String::from_utf8(buf).expect("utf8"));
        assert_eq!(read_logs(padded.as_bytes()).expect("reads").len(), 1);
    }
}
