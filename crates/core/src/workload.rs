//! Internal bridge from configurations to the engine's packet sources.
//!
//! Every exploration step turns a [`TraceSpec`] into simulation input in
//! one of two ways: materialize the trace once and share it by reference
//! (fast when many units reuse it and it fits in memory), or keep only the
//! [`StreamSpec`] description and let each simulation stream its packets
//! in constant memory (the only option at million-packet scale). This
//! module owns that choice so step 1, step 2 and the GA share one code
//! path — and one fallible construction route through
//! [`TraceGenerator::try_new`] instead of panicking constructors.

use crate::error::ExploreError;
use ddtr_apps::{AppKind, AppParams, SlotProfile};
use ddtr_engine::{Combo, SimLog, Simulator, TraceSource};
use ddtr_mem::CostReport;
use ddtr_trace::{NetworkParams, StreamSpec, Trace, TraceError, TraceGenerator, TraceSpec};

/// A built workload: either the materialized packets or their streamed
/// description.
#[derive(Debug, Clone)]
pub(crate) enum Workload {
    /// The packets, generated up front.
    Materialized(Trace),
    /// The description; packets are generated on the fly per simulation.
    Streamed(StreamSpec),
}

impl Workload {
    /// Builds the workload for `spec`, validating it — an invalid spec
    /// surfaces as [`ExploreError::InvalidConfig`], never a panic.
    pub(crate) fn build(
        spec: TraceSpec,
        packets: usize,
        streaming: bool,
    ) -> Result<Self, ExploreError> {
        if streaming {
            Ok(Workload::Streamed(
                StreamSpec::single(spec, packets).map_err(invalid)?,
            ))
        } else {
            let generator = TraceGenerator::try_new(spec).map_err(invalid)?;
            Ok(Workload::Materialized(generator.generate(packets)))
        }
    }

    /// The engine-facing packet source.
    pub(crate) fn source(&self) -> TraceSource<'_> {
        match self {
            Workload::Materialized(trace) => TraceSource::Materialized(trace),
            Workload::Streamed(spec) => TraceSource::Streamed(spec),
        }
    }

    /// Extracts the network parameters (single pass; the streamed form
    /// never materializes the packets).
    pub(crate) fn extract_params(&self) -> NetworkParams {
        match self {
            Workload::Materialized(trace) => NetworkParams::extract(trace),
            Workload::Streamed(spec) => NetworkParams::extract_stream(spec.name(), spec.stream()),
        }
    }

    /// Runs one simulation over this workload (the baseline runs of the
    /// headline comparison).
    pub(crate) fn run(
        &self,
        sim: &Simulator,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
    ) -> SimLog {
        match self {
            Workload::Materialized(trace) => sim.run(app, combo, params, trace),
            Workload::Streamed(spec) => sim.run_spec(app, combo, params, spec),
        }
    }

    /// Runs one simulation over this workload, returning the cost report
    /// and per-slot access profiles (the profiling substep).
    pub(crate) fn run_with_profiles(
        &self,
        sim: &Simulator,
        app: AppKind,
        combo: Combo,
        params: &AppParams,
    ) -> (CostReport, Vec<SlotProfile>) {
        match self {
            Workload::Materialized(trace) => sim.run_with_profiles(app, combo, params, trace),
            Workload::Streamed(spec) => {
                sim.run_stream_with_profiles(app, combo, params, spec.stream())
            }
        }
    }
}

fn invalid(e: TraceError) -> ExploreError {
    ExploreError::InvalidConfig(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_trace::NetworkPreset;

    #[test]
    fn both_forms_expose_the_same_network_and_parameters() {
        let spec = NetworkPreset::DartmouthBerry.spec();
        let mat = Workload::build(spec.clone(), 300, false).expect("materialized");
        let str = Workload::build(spec, 300, true).expect("streamed");
        assert_eq!(mat.source().network(), str.source().network());
        assert_eq!(mat.extract_params(), str.extract_params());
        // Distinct fingerprint domains: packets versus description.
        assert_ne!(mat.source().fingerprint(), str.source().fingerprint());
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let mut spec = NetworkPreset::DartmouthBerry.spec();
        spec.nodes = 0;
        for streaming in [false, true] {
            let err = Workload::build(spec.clone(), 10, streaming).unwrap_err();
            assert!(err.to_string().contains("two nodes"), "{err}");
        }
    }
}
