//! The application × scenario exploration matrix.
//!
//! The paper explores one workload per network capture; the scenario
//! matrix asks the complementary question — *how do the Pareto-optimal DDT
//! choices shift when the same network goes through different traffic
//! regimes?* Every cell simulates the full combination space of one
//! application over one [`Scenario`] stream (bursty trains, a flash crowd,
//! a SYN flood, a mid-run phase shift) and reports that cell's Pareto
//! front. Everything runs streamed through the engine, so cells scale to
//! million-packet workloads in constant memory and repeat runs answer from
//! the result cache.

use crate::error::ExploreError;
use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_engine::{combos_from, fingerprint_stream_spec, ExploreEngine, SimLog, SimUnit};
use ddtr_mem::MemoryConfig;
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::{NetworkPreset, Scenario, StreamSpec};
use serde::{Deserialize, Serialize};

/// Configuration of one scenario-matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Applications forming the matrix rows.
    pub apps: Vec<AppKind>,
    /// Scenarios forming the matrix columns.
    pub scenarios: Vec<Scenario>,
    /// Base network preset every scenario is derived from.
    pub base: NetworkPreset,
    /// The DDT candidate set explored per cell.
    pub candidates: Vec<DdtKind>,
    /// Packets streamed per simulation.
    pub packets_per_sim: usize,
    /// Application parameters of the runs.
    pub params: AppParams,
    /// Platform memory configuration.
    pub mem: MemoryConfig,
}

impl ScenarioConfig {
    /// The full matrix: all five applications × all scenarios over
    /// `base`, paper-sized traces.
    #[must_use]
    pub fn paper(base: NetworkPreset) -> Self {
        ScenarioConfig {
            apps: AppKind::ALL.to_vec(),
            scenarios: Scenario::ALL.to_vec(),
            base,
            candidates: DdtKind::ALL.to_vec(),
            packets_per_sim: 400,
            params: AppParams::default(),
            mem: MemoryConfig::embedded_default(),
        }
    }

    /// A reduced matrix for tests and examples.
    #[must_use]
    pub fn quick(base: NetworkPreset) -> Self {
        let params = AppParams {
            route_table_size: 48,
            firewall_rules: 16,
            table_cap: 24,
            ..AppParams::default()
        };
        ScenarioConfig {
            packets_per_sim: 80,
            params,
            ..Self::paper(base)
        }
    }

    /// Number of matrix cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.apps.len() * self.scenarios.len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidConfig`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.apps.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one application is required".into(),
            ));
        }
        if self.scenarios.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one scenario is required".into(),
            ));
        }
        if self.candidates.len() < 2 {
            return Err(ExploreError::InvalidConfig(
                "at least two DDT candidates are required".into(),
            ));
        }
        if self.packets_per_sim == 0 {
            return Err(ExploreError::InvalidConfig(
                "packets_per_sim must be non-zero".into(),
            ));
        }
        self.params
            .validate()
            .map_err(ExploreError::InvalidConfig)?;
        self.mem.validate().map_err(ExploreError::InvalidConfig)?;
        Ok(())
    }
}

/// One matrix cell: the Pareto front of one application under one
/// scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Application of this cell.
    pub app: AppKind,
    /// Scenario of this cell.
    pub scenario: Scenario,
    /// Scenario-qualified network name (e.g. `"BWY-I#flash-crowd"`).
    pub network: String,
    /// Combinations evaluated for this cell (answered from the engine's
    /// cache or executed — see the engine's stats for the split).
    pub evaluations: usize,
    /// The cell's Pareto-optimal logs, in canonical combination order.
    pub front: Vec<SimLog>,
}

impl ScenarioCell {
    /// Labels of the front combinations, in order.
    #[must_use]
    pub fn front_labels(&self) -> Vec<String> {
        self.front.iter().map(|l| l.combo.clone()).collect()
    }
}

/// Result of a scenario-matrix run: one cell per (application, scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// The configuration explored.
    pub config: ScenarioConfig,
    /// The cells, in `apps × scenarios` order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioMatrix {
    /// The cell of one (application, scenario) pair, if present.
    #[must_use]
    pub fn cell(&self, app: AppKind, scenario: Scenario) -> Option<&ScenarioCell> {
        self.cells
            .iter()
            .find(|c| c.app == app && c.scenario == scenario)
    }

    /// Total combinations evaluated across all cells (cache hits
    /// included; the engine's stats report how many actually executed).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.cells.iter().map(|c| c.evaluations).sum()
    }
}

/// Runs the scenario matrix on a fresh in-memory engine. See
/// [`explore_scenarios_with`].
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_scenarios(cfg: &ScenarioConfig) -> Result<ScenarioMatrix, ExploreError> {
    explore_scenarios_with(&mut ExploreEngine::in_memory(), cfg)
}

/// Runs the application × scenario matrix on an explicit engine: every
/// cell streams its scenario workload through one engine batch (parallel
/// across `--jobs` workers, cached by the scenario's [`StreamSpec`]
/// description) and is pruned to its Pareto front.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
///
/// # Example
///
/// ```
/// use ddtr_core::{explore_scenarios, ScenarioConfig};
/// use ddtr_apps::AppKind;
/// use ddtr_trace::{NetworkPreset, Scenario};
///
/// let mut cfg = ScenarioConfig::quick(NetworkPreset::DartmouthBerry);
/// cfg.apps = vec![AppKind::Drr];
/// cfg.scenarios = vec![Scenario::Baseline, Scenario::DdosSyn];
/// let matrix = explore_scenarios(&cfg)?;
/// assert_eq!(matrix.cells.len(), 2);
/// assert!(matrix.cells.iter().all(|c| !c.front.is_empty()));
/// # Ok::<(), ddtr_core::ExploreError>(())
/// ```
pub fn explore_scenarios_with(
    engine: &mut ExploreEngine,
    cfg: &ScenarioConfig,
) -> Result<ScenarioMatrix, ExploreError> {
    cfg.validate()?;
    let combos = combos_from(&cfg.candidates);
    let mut cells = Vec::with_capacity(cfg.cells());
    for &app in &cfg.apps {
        for &scenario in &cfg.scenarios {
            let spec: StreamSpec = scenario.stream_spec(cfg.base, cfg.packets_per_sim);
            let fp = fingerprint_stream_spec(&spec);
            let units: Vec<SimUnit> = combos
                .iter()
                .map(|&combo| {
                    SimUnit::from_source(
                        app,
                        combo,
                        &cfg.params,
                        ddtr_engine::TraceSource::Streamed(&spec),
                        fp,
                        cfg.mem,
                    )
                })
                .collect();
            let logs = engine.try_evaluate_batch(&units)?;
            let points: Vec<[f64; 4]> = logs.iter().map(SimLog::objectives).collect();
            let front: Vec<SimLog> = pareto_front_indices(&points)
                .into_iter()
                .map(|i| logs[i].clone())
                .collect();
            cells.push(ScenarioCell {
                app,
                scenario,
                network: spec.name().to_owned(),
                evaluations: logs.len(),
                front,
            });
        }
    }
    Ok(ScenarioMatrix {
        config: cfg.clone(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::quick(NetworkPreset::DartmouthBerry);
        cfg.apps = vec![AppKind::Drr, AppKind::Url];
        cfg.scenarios = vec![Scenario::Baseline, Scenario::FlashCrowd, Scenario::DdosSyn];
        cfg.packets_per_sim = 40;
        cfg
    }

    #[test]
    fn matrix_covers_every_cell_with_a_front() {
        let matrix = explore_scenarios(&tiny()).expect("matrix");
        assert_eq!(matrix.cells.len(), 6);
        for cell in &matrix.cells {
            assert_eq!(cell.evaluations, 100, "{}/{}", cell.app, cell.scenario);
            assert!(!cell.front.is_empty(), "{}/{}", cell.app, cell.scenario);
            assert!(
                cell.network.contains('#'),
                "scenario-qualified name: {}",
                cell.network
            );
            for log in &cell.front {
                assert_eq!(log.network, cell.network);
            }
        }
        assert_eq!(matrix.evaluations(), 600);
        assert!(matrix.cell(AppKind::Drr, Scenario::DdosSyn).is_some());
        assert!(matrix.cell(AppKind::Route, Scenario::Baseline).is_none());
    }

    #[test]
    fn scenarios_shift_the_measured_costs() {
        // The point of the matrix: the same app must measure differently
        // under different traffic regimes.
        let mut cfg = tiny();
        cfg.apps = vec![AppKind::Drr];
        let matrix = explore_scenarios(&cfg).expect("matrix");
        let accesses = |s: Scenario| {
            matrix
                .cell(AppKind::Drr, s)
                .expect("cell")
                .front
                .first()
                .expect("front")
                .report
                .accesses
        };
        assert_ne!(accesses(Scenario::Baseline), accesses(Scenario::DdosSyn));
    }

    #[test]
    fn matrix_is_deterministic_at_any_worker_count() {
        let cfg = tiny();
        let a = explore_scenarios_with(&mut ExploreEngine::with_jobs(1), &cfg).expect("1 job");
        let b = explore_scenarios_with(&mut ExploreEngine::with_jobs(8), &cfg).expect("8 jobs");
        assert_eq!(
            serde_json::to_string(&a.cells).expect("ser"),
            serde_json::to_string(&b.cells).expect("ser"),
        );
    }

    #[test]
    fn warm_engine_replays_the_matrix_from_cache() {
        let cfg = tiny();
        let mut engine = ExploreEngine::in_memory();
        let first = explore_scenarios_with(&mut engine, &cfg).expect("cold");
        let executed = engine.stats().misses;
        assert!(executed > 0);
        let second = explore_scenarios_with(&mut engine, &cfg).expect("warm");
        assert_eq!(engine.stats().misses, executed, "warm run executes nothing");
        assert_eq!(
            serde_json::to_string(&first.cells).expect("ser"),
            serde_json::to_string(&second.cells).expect("ser"),
        );
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = tiny();
        cfg.apps.clear();
        assert!(explore_scenarios(&cfg).is_err());
        let mut cfg = tiny();
        cfg.scenarios.clear();
        assert!(explore_scenarios(&cfg).is_err());
        let mut cfg = tiny();
        cfg.candidates.truncate(1);
        assert!(explore_scenarios(&cfg).is_err());
        let mut cfg = tiny();
        cfg.packets_per_sim = 0;
        assert!(explore_scenarios(&cfg).is_err());
    }
}
