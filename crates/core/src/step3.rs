//! Step 3 — Pareto-level DDT exploration.

use crate::error::ExploreError;
use crate::step2::Step2Result;
use ddtr_engine::{ConfigKey, SimLog};
use ddtr_mem::CostReport;
use ddtr_pareto::{pareto_front_indices, tradeoff_ranges, TradeoffRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Pareto-optimal design point offered to the designer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// DDT combination label.
    pub combo: String,
    /// Its four-metric cost (per configuration, or averaged for the global
    /// front).
    pub report: CostReport,
}

/// The Pareto-optimal set of one network configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigFront {
    /// Configuration key (renders as `network/params`).
    pub config_key: ConfigKey,
    /// The non-dominated points, in log order.
    pub front: Vec<ParetoPoint>,
}

/// Result of the Pareto-level exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoReport {
    /// Pareto front per network configuration — one curve per
    /// configuration, as in the paper's Figure 4a.
    pub per_config: Vec<ConfigFront>,
    /// Global front over per-combination metrics averaged across all
    /// configurations — the set reported in the paper's Table 1.
    pub global_front: Vec<ParetoPoint>,
    /// Trade-off ranges over all per-configuration front points, in metric
    /// order `[energy, time, accesses, footprint]` — the paper's Table 2.
    pub tradeoffs: Vec<TradeoffRange>,
}

impl ParetoReport {
    /// The global-front point with the lowest value in metric `dim`
    /// (0 energy, 1 time, 2 accesses, 3 footprint).
    #[must_use]
    pub fn best_by(&self, dim: usize) -> Option<&ParetoPoint> {
        self.global_front
            .iter()
            .min_by(|a, b| a.report.as_array()[dim].total_cmp(&b.report.as_array()[dim]))
    }
}

/// Runs step 3: prune every configuration's logs to its Pareto front,
/// compute the global front over configuration-averaged metrics, and
/// derive the trade-off ranges.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when `step2` carries no logs.
pub fn explore_pareto_level(step2: &Step2Result) -> Result<ParetoReport, ExploreError> {
    if step2.logs.is_empty() {
        return Err(ExploreError::InvalidConfig(
            "step 3 needs step-2 simulation logs".into(),
        ));
    }
    // Per-configuration fronts.
    let mut grouped: BTreeMap<ConfigKey, Vec<&SimLog>> = BTreeMap::new();
    for log in &step2.logs {
        grouped.entry(log.config_key()).or_default().push(log);
    }
    let mut per_config = Vec::with_capacity(grouped.len());
    let mut pooled_front_points: Vec<[f64; 4]> = Vec::new();
    for (config_key, logs) in &grouped {
        let points: Vec<[f64; 4]> = logs.iter().map(|l| l.objectives()).collect();
        let front_idx = pareto_front_indices(&points);
        pooled_front_points.extend(front_idx.iter().map(|&i| points[i]));
        per_config.push(ConfigFront {
            config_key: config_key.clone(),
            front: front_idx
                .into_iter()
                .map(|i| ParetoPoint {
                    combo: logs[i].combo.clone(),
                    report: logs[i].report,
                })
                .collect(),
        });
    }
    // Global front over per-combination averages across configurations.
    let mut by_combo: BTreeMap<String, Vec<CostReport>> = BTreeMap::new();
    for log in &step2.logs {
        by_combo
            .entry(log.combo.clone())
            .or_default()
            .push(log.report);
    }
    let averaged: Vec<(String, CostReport)> = by_combo
        .into_iter()
        .map(|(combo, reports)| {
            let n = reports.len() as f64;
            let mean = CostReport {
                accesses: (reports.iter().map(|r| r.accesses).sum::<u64>() as f64 / n) as u64,
                cycles: (reports.iter().map(|r| r.cycles).sum::<u64>() as f64 / n) as u64,
                energy_nj: reports.iter().map(|r| r.energy_nj).sum::<f64>() / n,
                peak_footprint_bytes: (reports.iter().map(|r| r.peak_footprint_bytes).sum::<u64>()
                    as f64
                    / n) as u64,
            };
            (combo, mean)
        })
        .collect();
    let avg_points: Vec<[f64; 4]> = averaged.iter().map(|(_, r)| r.as_array()).collect();
    let global_front: Vec<ParetoPoint> = pareto_front_indices(&avg_points)
        .into_iter()
        .map(|i| ParetoPoint {
            combo: averaged[i].0.clone(),
            report: averaged[i].1,
        })
        .collect();
    // Trade-off ranges over all per-configuration front points.
    let all_idx: Vec<usize> = (0..pooled_front_points.len()).collect();
    let tradeoffs = tradeoff_ranges(&pooled_front_points, &all_idx);
    Ok(ParetoReport {
        per_config,
        global_front,
        tradeoffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step2::Step2Result;
    use ddtr_apps::AppKind;

    fn log(combo: &str, net: &str, e: f64, t: u64, a: u64, f: u64) -> SimLog {
        SimLog {
            app: AppKind::Url,
            combo: combo.into(),
            network: net.into(),
            params: "p".into(),
            report: CostReport {
                accesses: a,
                cycles: t,
                energy_nj: e,
                peak_footprint_bytes: f,
            },
        }
    }

    fn step2_fixture() -> Step2Result {
        Step2Result {
            configs: Vec::new(),
            logs: vec![
                // net1: A dominates B; A and C trade off
                log("A+A", "net1", 1.0, 10, 10, 10),
                log("B+B", "net1", 2.0, 20, 20, 20),
                log("C+C", "net1", 10.0, 1, 10, 10),
                // net2: B best everywhere
                log("A+A", "net2", 5.0, 50, 50, 50),
                log("B+B", "net2", 1.0, 1, 1, 1),
                log("C+C", "net2", 9.0, 9, 90, 90),
            ],
        }
    }

    #[test]
    fn per_config_fronts_are_correct() {
        let report = explore_pareto_level(&step2_fixture()).expect("step 3");
        assert_eq!(report.per_config.len(), 2);
        let net1 = &report.per_config[0];
        assert_eq!(net1.config_key, "net1/p");
        let combos: Vec<&str> = net1.front.iter().map(|p| p.combo.as_str()).collect();
        assert_eq!(combos, vec!["A+A", "C+C"]);
        let net2 = &report.per_config[1];
        let combos: Vec<&str> = net2.front.iter().map(|p| p.combo.as_str()).collect();
        assert_eq!(combos, vec!["B+B"]);
    }

    #[test]
    fn global_front_uses_cross_config_averages() {
        let report = explore_pareto_level(&step2_fixture()).expect("step 3");
        // Averages: A=(3,30,30,30), B=(1.5,10.5,10.5,10.5), C=(9.5,5,50,50)
        // B dominates A; C survives on time.
        let combos: Vec<&str> = report
            .global_front
            .iter()
            .map(|p| p.combo.as_str())
            .collect();
        assert_eq!(combos, vec!["B+B", "C+C"]);
    }

    #[test]
    fn best_by_selects_metric_minimum() {
        let report = explore_pareto_level(&step2_fixture()).expect("step 3");
        assert_eq!(report.best_by(0).expect("front").combo, "B+B"); // energy
        assert_eq!(report.best_by(1).expect("front").combo, "C+C"); // time
    }

    #[test]
    fn tradeoffs_cover_four_metrics() {
        let report = explore_pareto_level(&step2_fixture()).expect("step 3");
        assert_eq!(report.tradeoffs.len(), 4);
        for r in &report.tradeoffs {
            assert!(r.max >= r.min);
        }
    }

    #[test]
    fn empty_logs_rejected() {
        let empty = Step2Result {
            configs: Vec::new(),
            logs: Vec::new(),
        };
        assert!(explore_pareto_level(&empty).is_err());
    }
}
