//! The three-step Dynamic Data Type refinement methodology of the DATE 2006
//! paper, with its supporting automation.
//!
//! The methodology takes a network application whose dominant dynamic data
//! structures are pluggable (see [`ddtr_apps`]) and produces a small set of
//! Pareto-optimal DDT implementation choices:
//!
//! 1. **Application-level exploration** ([`explore_application_level`]): profile the
//!    application on a typical trace to confirm the dominant containers,
//!    then simulate *all* DDT combinations on one reference configuration
//!    and discard the ~80 % that are not best in any cost metric.
//! 2. **Network-level exploration** ([`explore_network_level`]): extract the network
//!    parameters of every configuration (networks × application
//!    parameters) and re-simulate only the surviving combinations on each.
//! 3. **Pareto-level exploration** ([`explore_pareto_level`]): prune the simulation logs
//!    into Pareto-optimal sets per configuration and globally, with the
//!    trade-off ranges the designer chooses from.
//!
//! [`Methodology`] ties the steps together; [`Simulator`] runs a single
//! (application, combination, configuration) measurement; the
//! [`headline_comparison`] helper reproduces the paper's comparison against
//! the original NetBench implementation.
//!
//! Simulation *execution* — parallel scheduling, result caching, batched
//! evaluation — is owned by the [`ddtr_engine`] crate; every step accepts
//! an [`ExploreEngine`] through its `*_with` variant, and the plain entry
//! points build a default engine from the configuration. The engine's
//! primitive types ([`Simulator`], [`SimLog`], [`Combo`], the combination
//! helpers) are re-exported here for compatibility.
//!
//! # Example
//!
//! ```
//! use ddtr_core::{Methodology, MethodologyConfig};
//! use ddtr_apps::AppKind;
//!
//! let outcome = Methodology::new(MethodologyConfig::quick(AppKind::Drr)).run()?;
//! // Step 1 pruned most of the 100 combinations...
//! assert!(outcome.step1.survivors.len() < 40);
//! // ...and step 3 produced a small Pareto-optimal set.
//! assert!(!outcome.pareto.global_front.is_empty());
//! # Ok::<(), ddtr_core::ExploreError>(())
//! ```

mod config;
mod constraints;
mod dispatch;
mod error;
mod ga;
mod headline;
mod log;
mod pipeline;
mod profile;
mod report;
mod scenarios;
mod step1;
mod step2;
mod step3;
mod sweep;
mod workload;

pub use config::MethodologyConfig;
pub use constraints::{DesignConstraints, Objective};
pub use ddtr_engine::{
    all_combos, combo_label, combos_from, fingerprint_stream_spec, parse_combo, BatchControl,
    BatchProgress, CacheKey, CacheStats, CancelToken, Combo, ConfigKey, EngineConfig,
    EngineSession, ExploreEngine, SimLog, SimUnit, Simulator, TraceSource,
};
pub use ddtr_mem::MemoryPreset;
pub use dispatch::{dispatch, dispatch_observed, dispatch_with, ExploreRequest, ExploreResult};
pub use error::ExploreError;
pub use ga::{explore_heuristic, explore_heuristic_with, GaConfig, GaOutcome, GenerationStats};
pub use headline::{headline_comparison, HeadlineReport};
pub use log::{read_logs, step2_from_logs, write_logs};
pub use pipeline::{EngineReport, Methodology, MethodologyOutcome, SimCounts};
pub use profile::{profile_application, ProfileReport};
pub use report::{
    render_pareto_chart, table1_markdown, table2_markdown, tradeoff_percentages, ParetoChartPlane,
};
pub use scenarios::{
    explore_scenarios, explore_scenarios_with, ScenarioCell, ScenarioConfig, ScenarioMatrix,
};
pub use step1::{explore_application_level, explore_application_level_with, Step1Result};
pub use step2::{explore_network_level, explore_network_level_with, NetworkConfig, Step2Result};
pub use step3::{explore_pareto_level, ConfigFront, ParetoPoint, ParetoReport};
pub use sweep::{
    explore_sweep, explore_sweep_observed, explore_sweep_with, SweepCell, SweepConfig, SweepMatrix,
    SweepSurvivor,
};
