//! Designer constraints over the Pareto set.
//!
//! The point of step 3 is that "design constraints can be implemented
//! directly in the exploration approach and get the best tradeoffs from
//! the final DDT implementation": the designer states budgets for any of
//! the four metrics and picks the best remaining Pareto point under a
//! chosen objective.

use crate::step3::{ParetoPoint, ParetoReport};
use ddtr_mem::CostReport;
use serde::{Deserialize, Serialize};

/// The metric a constrained selection minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise dissipated energy.
    Energy,
    /// Minimise execution time.
    Time,
    /// Minimise memory accesses.
    Accesses,
    /// Minimise memory footprint.
    Footprint,
}

impl Objective {
    /// Index of this objective in the canonical metric order
    /// `[energy, time, accesses, footprint]`.
    #[must_use]
    pub fn dim(self) -> usize {
        match self {
            Objective::Energy => 0,
            Objective::Time => 1,
            Objective::Accesses => 2,
            Objective::Footprint => 3,
        }
    }
}

/// Budgets of the embedded design; `None` means unconstrained.
///
/// # Example
///
/// ```
/// use ddtr_core::DesignConstraints;
/// use ddtr_mem::CostReport;
///
/// let constraints = DesignConstraints::none()
///     .with_max_energy_nj(5_000.0)
///     .with_max_footprint_bytes(8_192);
/// let candidate = CostReport {
///     accesses: 10_000,
///     cycles: 40_000,
///     energy_nj: 4_200.0,
///     peak_footprint_bytes: 6_000,
/// };
/// assert!(constraints.admits(&candidate));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Maximum energy in nanojoules.
    pub max_energy_nj: Option<f64>,
    /// Maximum execution time in cycles.
    pub max_cycles: Option<u64>,
    /// Maximum memory accesses.
    pub max_accesses: Option<u64>,
    /// Maximum peak footprint in bytes.
    pub max_footprint_bytes: Option<u64>,
}

impl DesignConstraints {
    /// No constraints (every point admitted).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the energy budget.
    #[must_use]
    pub fn with_max_energy_nj(mut self, nj: f64) -> Self {
        self.max_energy_nj = Some(nj);
        self
    }

    /// Sets the time budget.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Sets the access budget.
    #[must_use]
    pub fn with_max_accesses(mut self, accesses: u64) -> Self {
        self.max_accesses = Some(accesses);
        self
    }

    /// Sets the footprint budget.
    #[must_use]
    pub fn with_max_footprint_bytes(mut self, bytes: u64) -> Self {
        self.max_footprint_bytes = Some(bytes);
        self
    }

    /// Whether `report` satisfies every stated budget.
    #[must_use]
    pub fn admits(&self, report: &CostReport) -> bool {
        self.max_energy_nj.is_none_or(|b| report.energy_nj <= b)
            && self.max_cycles.is_none_or(|b| report.cycles <= b)
            && self.max_accesses.is_none_or(|b| report.accesses <= b)
            && self
                .max_footprint_bytes
                .is_none_or(|b| report.peak_footprint_bytes <= b)
    }
}

impl ParetoReport {
    /// Picks, from the global Pareto front, the point that satisfies
    /// `constraints` and minimises `objective`; `None` when no front point
    /// fits the budgets (the design is infeasible with these DDTs).
    #[must_use]
    pub fn select(
        &self,
        constraints: &DesignConstraints,
        objective: Objective,
    ) -> Option<&ParetoPoint> {
        self.global_front
            .iter()
            .filter(|p| constraints.admits(&p.report))
            .min_by(|a, b| {
                a.report.as_array()[objective.dim()]
                    .total_cmp(&b.report.as_array()[objective.dim()])
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step3::ParetoPoint;

    fn point(combo: &str, e: f64, t: u64, a: u64, f: u64) -> ParetoPoint {
        ParetoPoint {
            combo: combo.into(),
            report: CostReport {
                accesses: a,
                cycles: t,
                energy_nj: e,
                peak_footprint_bytes: f,
            },
        }
    }

    fn report() -> ParetoReport {
        ParetoReport {
            per_config: Vec::new(),
            global_front: vec![
                point("FAST", 9.0, 1, 5, 9),
                point("FRUGAL", 1.0, 9, 5, 9),
                point("LEAN", 5.0, 5, 5, 1),
            ],
            tradeoffs: Vec::new(),
        }
    }

    #[test]
    fn unconstrained_selection_is_the_metric_minimum() {
        let r = report();
        let c = DesignConstraints::none();
        assert_eq!(r.select(&c, Objective::Energy).unwrap().combo, "FRUGAL");
        assert_eq!(r.select(&c, Objective::Time).unwrap().combo, "FAST");
        assert_eq!(r.select(&c, Objective::Footprint).unwrap().combo, "LEAN");
    }

    #[test]
    fn budgets_filter_before_optimising() {
        let r = report();
        // An energy budget of 6 rules out FAST; best time among the rest.
        let c = DesignConstraints::none().with_max_energy_nj(6.0);
        assert_eq!(r.select(&c, Objective::Time).unwrap().combo, "LEAN");
    }

    #[test]
    fn infeasible_budgets_yield_none() {
        let r = report();
        let c = DesignConstraints::none().with_max_cycles(0);
        assert!(r.select(&c, Objective::Energy).is_none());
    }

    #[test]
    fn admits_checks_every_dimension() {
        let c = DesignConstraints::none()
            .with_max_energy_nj(10.0)
            .with_max_cycles(10)
            .with_max_accesses(10)
            .with_max_footprint_bytes(10);
        let ok = CostReport {
            accesses: 10,
            cycles: 10,
            energy_nj: 10.0,
            peak_footprint_bytes: 10,
        };
        assert!(c.admits(&ok));
        for (i, bad) in [
            CostReport {
                energy_nj: 10.1,
                ..ok
            },
            CostReport { cycles: 11, ..ok },
            CostReport { accesses: 11, ..ok },
            CostReport {
                peak_footprint_bytes: 11,
                ..ok
            },
        ]
        .into_iter()
        .enumerate()
        {
            assert!(!c.admits(&bad), "dimension {i} not enforced");
        }
    }

    #[test]
    fn objective_dims_match_metric_order() {
        assert_eq!(Objective::Energy.dim(), 0);
        assert_eq!(Objective::Time.dim(), 1);
        assert_eq!(Objective::Accesses.dim(), 2);
        assert_eq!(Objective::Footprint.dim(), 3);
    }
}
