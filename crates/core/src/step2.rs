//! Step 2 — network-level DDT exploration.

use crate::combo::Combo;
use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::sim::{SimLog, Simulator};
use ddtr_apps::AppParams;
use ddtr_trace::{NetworkParams, NetworkPreset, Trace, TraceGenerator};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One network configuration of step 2: a network preset combined with an
/// application-parameter variant, plus the parameters the tool extracted
/// from the trace (the Perl-parser output of the original flow).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// The network preset.
    pub network: NetworkPreset,
    /// The application-parameter label.
    pub params_label: String,
    /// Parameters extracted from the generated trace.
    pub extracted: NetworkParams,
}

/// Result of the network-level exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step2Result {
    /// Every configuration explored.
    pub configs: Vec<NetworkConfig>,
    /// One log per (survivor combination × configuration).
    pub logs: Vec<SimLog>,
}

impl Step2Result {
    /// Number of simulations this step performed.
    #[must_use]
    pub fn simulations(&self) -> usize {
        self.logs.len()
    }

    /// The logs belonging to one configuration key (`network/params`).
    #[must_use]
    pub fn logs_for(&self, config_key: &str) -> Vec<&SimLog> {
        self.logs
            .iter()
            .filter(|l| l.config_key() == config_key)
            .collect()
    }
}

/// Runs step 2: for every network configuration (network × application
/// parameters), parse the trace to extract its network parameters, then
/// simulate each surviving combination on it.
///
/// With `cfg.parallel`, configurations are processed by a `std::thread::scope` worker
/// pool; results are deterministic either way because each simulation is
/// independent and logs are re-sorted canonically.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_network_level(
    cfg: &MethodologyConfig,
    survivors: &[Combo],
) -> Result<Step2Result, ExploreError> {
    cfg.validate()?;
    if survivors.is_empty() {
        return Err(ExploreError::InvalidConfig(
            "step 2 needs at least one surviving combination".into(),
        ));
    }
    // Build every configuration's trace once and extract its parameters.
    let mut jobs: Vec<(NetworkPreset, AppParams, Trace)> = Vec::new();
    for &network in &cfg.networks {
        let trace = TraceGenerator::new(network.spec()).generate(cfg.packets_per_sim);
        for params in &cfg.param_variants {
            jobs.push((network, params.clone(), trace.clone()));
        }
    }
    let configs: Vec<NetworkConfig> = jobs
        .iter()
        .map(|(network, params, trace)| NetworkConfig {
            network: *network,
            params_label: params.label(cfg.app),
            extracted: NetworkParams::extract(trace),
        })
        .collect();

    let sim = Simulator::new(cfg.mem);
    let mut logs: Vec<SimLog> = if cfg.parallel {
        run_parallel(cfg, &sim, &jobs, survivors)
    } else {
        let mut out = Vec::with_capacity(jobs.len() * survivors.len());
        for (_, params, trace) in &jobs {
            for &combo in survivors {
                out.push(sim.run(cfg.app, combo, params, trace));
            }
        }
        out
    };
    logs.sort_by(|a, b| (a.config_key(), &a.combo).cmp(&(b.config_key(), &b.combo)));
    Ok(Step2Result { configs, logs })
}

/// Worker-pool execution over (configuration, combination) tasks.
fn run_parallel(
    cfg: &MethodologyConfig,
    sim: &Simulator,
    jobs: &[(NetworkPreset, AppParams, Trace)],
    survivors: &[Combo],
) -> Vec<SimLog> {
    let tasks: Vec<(usize, Combo)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(j, _)| survivors.iter().map(move |&c| (j, c)))
        .collect();
    let next = Mutex::new(0usize);
    let logs = Mutex::new(Vec::with_capacity(tasks.len()));
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = {
                    let mut guard = next.lock();
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let Some(&(job_idx, combo)) = tasks.get(i) else {
                    break;
                };
                let (_, params, trace) = &jobs[job_idx];
                let log = sim.run(cfg.app, combo, params, trace);
                logs.lock().push(log);
            });
        }
    });
    logs.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodologyConfig;
    use ddtr_apps::AppKind;
    use ddtr_ddt::DdtKind;

    fn survivors() -> Vec<Combo> {
        vec![
            [DdtKind::Array, DdtKind::Array],
            [DdtKind::Sll, DdtKind::Sll],
            [DdtKind::Array, DdtKind::Dll],
        ]
    }

    #[test]
    fn simulates_survivors_times_configs() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        assert_eq!(result.configs.len(), cfg.configurations());
        assert_eq!(result.simulations(), 3 * cfg.configurations());
    }

    #[test]
    fn extracted_parameters_accompany_each_config() {
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        for config in &result.configs {
            assert!(config.extracted.is_usable(), "{}", config.network);
            assert!(config.extracted.nodes_observed >= 2);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.parallel = false;
        let seq = explore_network_level(&cfg, &survivors()).expect("sequential");
        cfg.parallel = true;
        let par = explore_network_level(&cfg, &survivors()).expect("parallel");
        let key = |l: &SimLog| (l.config_key(), l.combo.clone(), l.report.accesses);
        let a: Vec<_> = seq.logs.iter().map(key).collect();
        let b: Vec<_> = par.logs.iter().map(key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn logs_group_by_config_key() {
        let cfg = MethodologyConfig::quick(AppKind::Ipchains);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        let key = result.logs[0].config_key();
        assert_eq!(result.logs_for(&key).len(), 3);
    }

    #[test]
    fn empty_survivors_rejected() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        assert!(explore_network_level(&cfg, &[]).is_err());
    }

    #[test]
    fn network_configuration_changes_the_metrics() {
        // The same combination must measure differently on different
        // networks — the reason step 2 exists at all.
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let result = explore_network_level(&cfg, &[[DdtKind::Sll, DdtKind::Sll]]).expect("step 2");
        let accesses: Vec<u64> = result.logs.iter().map(|l| l.report.accesses).collect();
        assert_eq!(accesses.len(), 2);
        assert_ne!(accesses[0], accesses[1]);
    }
}
