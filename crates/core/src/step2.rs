//! Step 2 — network-level DDT exploration.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::workload::Workload;
use ddtr_engine::{Combo, ConfigKey, ExploreEngine, SimLog, SimUnit};
use ddtr_trace::{NetworkParams, NetworkPreset};
use serde::{Deserialize, Serialize};

/// One network configuration of step 2: a network preset combined with an
/// application-parameter variant, plus the parameters the tool extracted
/// from the trace (the Perl-parser output of the original flow).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// The network preset.
    pub network: NetworkPreset,
    /// The application-parameter label.
    pub params_label: String,
    /// Parameters extracted from the generated trace.
    pub extracted: NetworkParams,
}

/// Result of the network-level exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step2Result {
    /// Every configuration explored.
    pub configs: Vec<NetworkConfig>,
    /// One log per (survivor combination × configuration).
    pub logs: Vec<SimLog>,
}

impl Step2Result {
    /// Number of simulations this step performed.
    #[must_use]
    pub fn simulations(&self) -> usize {
        self.logs.len()
    }

    /// The logs belonging to one configuration (network × parameter
    /// variant).
    #[must_use]
    pub fn logs_for(&self, key: &ConfigKey) -> Vec<&SimLog> {
        self.logs
            .iter()
            .filter(|l| &l.config_key() == key)
            .collect()
    }
}

/// Runs step 2 on a default engine built from the configuration
/// (`cfg.parallel` selects auto worker count versus one). See
/// [`explore_network_level_with`].
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_network_level(
    cfg: &MethodologyConfig,
    survivors: &[Combo],
) -> Result<Step2Result, ExploreError> {
    explore_network_level_with(&mut cfg.default_engine(), cfg, survivors)
}

/// Runs step 2: for every network configuration (network × application
/// parameters), parse the trace to extract its network parameters, then
/// simulate each surviving combination on it.
///
/// The whole `(configuration × survivor)` cross product is one engine
/// batch: the engine's work-stealing pool spreads it over `--jobs` workers
/// and its cache answers points simulated before (by step 1, a previous
/// run, or another application sharing a trace). Logs are re-sorted
/// canonically, so the result is byte-identical at any worker count.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_network_level_with(
    engine: &mut ExploreEngine,
    cfg: &MethodologyConfig,
    survivors: &[Combo],
) -> Result<Step2Result, ExploreError> {
    cfg.validate()?;
    if survivors.is_empty() {
        return Err(ExploreError::InvalidConfig(
            "step 2 needs at least one surviving combination".into(),
        ));
    }
    // Build every network's workload once (materialized or streamed, per
    // `cfg.streaming`) and extract its parameters in a single pass —
    // once per network, shared across its parameter variants (a streamed
    // extraction regenerates the whole packet stream, so repeating it
    // per variant would multiply that cost for an identical result).
    let mut workloads: Vec<(NetworkPreset, Workload, u64, NetworkParams)> = Vec::new();
    for &network in &cfg.networks {
        let workload = Workload::build(network.spec(), cfg.packets_per_sim, cfg.streaming)?;
        let fp = workload.source().fingerprint();
        let extracted = workload.extract_params();
        workloads.push((network, workload, fp, extracted));
    }
    let configs: Vec<NetworkConfig> = workloads
        .iter()
        .flat_map(|(network, _, _, extracted)| {
            cfg.param_variants.iter().map(move |params| NetworkConfig {
                network: *network,
                params_label: params.label(cfg.app),
                extracted: extracted.clone(),
            })
        })
        .collect();

    let units: Vec<SimUnit> = workloads
        .iter()
        .flat_map(|(_, workload, fp, _)| {
            cfg.param_variants.iter().flat_map(move |params| {
                survivors.iter().map(move |&combo| {
                    SimUnit::from_source(cfg.app, combo, params, workload.source(), *fp, cfg.mem)
                })
            })
        })
        .collect();
    let mut logs = engine.try_evaluate_batch(&units)?;
    logs.sort_by(|a, b| (a.config_key(), &a.combo).cmp(&(b.config_key(), &b.combo)));
    Ok(Step2Result { configs, logs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodologyConfig;
    use ddtr_apps::AppKind;
    use ddtr_ddt::DdtKind;

    fn survivors() -> Vec<Combo> {
        vec![
            [DdtKind::Array, DdtKind::Array],
            [DdtKind::Sll, DdtKind::Sll],
            [DdtKind::Array, DdtKind::Dll],
        ]
    }

    #[test]
    fn simulates_survivors_times_configs() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        assert_eq!(result.configs.len(), cfg.configurations());
        assert_eq!(result.simulations(), 3 * cfg.configurations());
    }

    #[test]
    fn extracted_parameters_accompany_each_config() {
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        for config in &result.configs {
            assert!(config.extracted.is_usable(), "{}", config.network);
            assert!(config.extracted.nodes_observed >= 2);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let seq = explore_network_level_with(&mut ExploreEngine::with_jobs(1), &cfg, &survivors())
            .expect("sequential");
        let par = explore_network_level_with(&mut ExploreEngine::with_jobs(8), &cfg, &survivors())
            .expect("parallel");
        let key = |l: &SimLog| (l.config_key(), l.combo.clone(), l.report.accesses);
        let a: Vec<_> = seq.logs.iter().map(key).collect();
        let b: Vec<_> = par.logs.iter().map(key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn logs_group_by_config_key() {
        let cfg = MethodologyConfig::quick(AppKind::Ipchains);
        let result = explore_network_level(&cfg, &survivors()).expect("step 2");
        let key = result.logs[0].config_key();
        assert_eq!(result.logs_for(&key).len(), 3);
    }

    #[test]
    fn empty_survivors_rejected() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        assert!(explore_network_level(&cfg, &[]).is_err());
    }

    #[test]
    fn network_configuration_changes_the_metrics() {
        // The same combination must measure differently on different
        // networks — the reason step 2 exists at all.
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let result = explore_network_level(&cfg, &[[DdtKind::Sll, DdtKind::Sll]]).expect("step 2");
        let accesses: Vec<u64> = result.logs.iter().map(|l| l.report.accesses).collect();
        assert_eq!(accesses.len(), 2);
        assert_ne!(accesses[0], accesses[1]);
    }

    #[test]
    fn streamed_step2_is_byte_identical_to_materialized() {
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let mut streamed_cfg = cfg.clone();
        streamed_cfg.streaming = true;
        let materialized = explore_network_level(&cfg, &survivors()).expect("materialized");
        let streamed = explore_network_level(&streamed_cfg, &survivors()).expect("streamed");
        assert_eq!(
            serde_json::to_string(&streamed.logs).expect("ser"),
            serde_json::to_string(&materialized.logs).expect("ser"),
        );
        assert_eq!(
            serde_json::to_string(&streamed.configs).expect("ser"),
            serde_json::to_string(&materialized.configs).expect("ser"),
            "extracted parameters must match the single-pass streamed extraction"
        );
    }

    #[test]
    fn step1_results_warm_the_step2_cache() {
        // Step 1 simulates the reference network; step 2 revisits it for
        // the same combinations — with a shared engine those points are
        // pure cache hits.
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let mut engine = ExploreEngine::in_memory();
        crate::step1::explore_application_level_with(&mut engine, &cfg).expect("step 1");
        let before = engine.stats();
        explore_network_level_with(&mut engine, &cfg, &survivors()).expect("step 2");
        let after = engine.stats();
        assert!(
            after.hits > before.hits,
            "step 2 must reuse step-1 simulations of the reference network"
        );
    }
}
