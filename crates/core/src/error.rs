//! Error type of the exploration pipeline.

use std::fmt;

/// Errors surfaced by the methodology pipeline.
#[derive(Debug)]
pub enum ExploreError {
    /// The exploration configuration is unusable.
    InvalidConfig(String),
    /// A serialisation or log-handling failure.
    Log(String),
    /// The execution engine failed (e.g. its cache store is unusable).
    Engine(String),
    /// The exploration was cancelled mid-run (its engine's
    /// [`ddtr_engine::BatchControl`] token fired). Completed simulations
    /// stay in the result cache, so a re-submitted run resumes.
    Cancelled,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidConfig(why) => write!(f, "invalid exploration config: {why}"),
            ExploreError::Log(why) => write!(f, "exploration log error: {why}"),
            ExploreError::Engine(why) => write!(f, "{why}"),
            ExploreError::Cancelled => write!(f, "exploration cancelled"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<ddtr_engine::EngineError> for ExploreError {
    fn from(e: ddtr_engine::EngineError) -> Self {
        ExploreError::Engine(e.to_string())
    }
}

impl From<ddtr_engine::Cancelled> for ExploreError {
    fn from(_: ddtr_engine::Cancelled) -> Self {
        ExploreError::Cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ExploreError::InvalidConfig("zero packets".into());
        assert!(e.to_string().contains("zero packets"));
        let e = ExploreError::Log("disk full".into());
        assert!(e.to_string().contains("disk full"));
    }
}
