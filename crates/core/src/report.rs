//! Report formatting: the paper's tables and figure data.

use crate::pipeline::MethodologyOutcome;
use ddtr_engine::SimLog;
use ddtr_pareto::ScatterChart;
use std::fmt::Write as _;

/// Which 2-D plane of the four metrics a chart shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParetoChartPlane {
    /// Execution time (x) versus energy (y) — Figures 3, 4a, 4b.
    TimeEnergy,
    /// Memory accesses (x) versus memory footprint (y) — Figure 4c.
    AccessesFootprint,
}

impl ParetoChartPlane {
    /// Metric indices (into `[energy, time, accesses, footprint]`) of the
    /// x and y axes.
    #[must_use]
    pub fn dims(self) -> (usize, usize) {
        match self {
            ParetoChartPlane::TimeEnergy => (1, 0),
            ParetoChartPlane::AccessesFootprint => (2, 3),
        }
    }

    /// Axis labels.
    #[must_use]
    pub fn labels(self) -> (&'static str, &'static str) {
        match self {
            ParetoChartPlane::TimeEnergy => ("execution time [cycles]", "energy [nJ]"),
            ParetoChartPlane::AccessesFootprint => ("memory accesses", "memory footprint [bytes]"),
        }
    }
}

/// Renders one configuration's exploration space in the requested plane as
/// an ASCII scatter chart (Pareto points highlighted), exactly what the
/// paper's post-processing tool draws from the log files.
#[must_use]
pub fn render_pareto_chart(logs: &[&SimLog], plane: ParetoChartPlane) -> String {
    let (x, y) = plane.dims();
    let (xl, yl) = plane.labels();
    let points: Vec<[f64; 2]> = logs
        .iter()
        .map(|l| {
            let o = l.objectives();
            [o[x], o[y]]
        })
        .collect();
    ScatterChart::new(xl, yl).render(&points)
}

/// One row of the paper's Table 1 ("Reduction of total simulations needed
/// to explore the design space") in Markdown.
#[must_use]
pub fn table1_markdown(outcomes: &[&MethodologyOutcome]) -> String {
    let mut out = String::from(
        "| Network application | Exhaustive simulations | Reduced simulations | Pareto optimal |\n|---|---|---|---|\n",
    );
    for o in outcomes {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            o.config.app, o.counts.exhaustive, o.counts.reduced, o.counts.pareto_optimal
        );
    }
    out
}

/// The percentage trade-offs of one outcome, in the paper's Table 2 metric
/// order `[energy, time, accesses, footprint]`.
#[must_use]
pub fn tradeoff_percentages(outcome: &MethodologyOutcome) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (i, r) in outcome.pareto.tradeoffs.iter().take(4).enumerate() {
        out[i] = r.spread_percent();
    }
    out
}

/// The paper's Table 2 ("Trade-offs achieved among Pareto-optimal points")
/// in Markdown.
#[must_use]
pub fn table2_markdown(outcomes: &[&MethodologyOutcome]) -> String {
    let mut out = String::from(
        "| Application | Energy | Exec. Time | Mem. Accesses | Mem. Footprint |\n|---|---|---|---|---|\n",
    );
    for o in outcomes {
        let [e, t, a, f] = tradeoff_percentages(o);
        let _ = writeln!(out, "| {} | {e}% | {t}% | {a}% | {f}% |", o.config.app);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodologyConfig;
    use crate::pipeline::Methodology;
    use ddtr_apps::AppKind;

    fn outcome() -> MethodologyOutcome {
        Methodology::new(MethodologyConfig::quick(AppKind::Drr))
            .run()
            .expect("pipeline")
    }

    #[test]
    fn tables_render_markdown() {
        let o = outcome();
        let t1 = table1_markdown(&[&o]);
        assert!(t1.contains("| DRR |"));
        assert!(t1.contains("Exhaustive"));
        let t2 = table2_markdown(&[&o]);
        assert!(t2.contains('%'));
        assert!(t2.contains("| DRR |"));
    }

    #[test]
    fn chart_renders_both_planes() {
        let o = outcome();
        let key = o.step2.logs[0].config_key();
        let logs = o.step2.logs_for(&key);
        for plane in [
            ParetoChartPlane::TimeEnergy,
            ParetoChartPlane::AccessesFootprint,
        ] {
            let chart = render_pareto_chart(&logs, plane);
            assert!(chart.contains('o'), "chart must mark Pareto points");
        }
    }

    #[test]
    fn plane_dims_are_consistent_with_labels() {
        assert_eq!(ParetoChartPlane::TimeEnergy.dims(), (1, 0));
        assert_eq!(ParetoChartPlane::AccessesFootprint.dims(), (2, 3));
        assert!(ParetoChartPlane::TimeEnergy.labels().1.contains("energy"));
    }

    #[test]
    fn tradeoff_percentages_are_bounded() {
        let o = outcome();
        for p in tradeoff_percentages(&o) {
            assert!(p <= 100);
        }
    }
}
