//! Step 1 — application-level DDT exploration.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::workload::Workload;
use ddtr_engine::{combos_from, parse_combo, Combo, ExploreEngine, SimLog, SimUnit};
use ddtr_pareto::pareto_front_indices;
use serde::{Deserialize, Serialize};

/// Result of the application-level exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step1Result {
    /// One log per simulated combination (all 100).
    pub measurements: Vec<SimLog>,
    /// Combination labels that survive into step 2.
    pub survivors: Vec<String>,
}

impl Step1Result {
    /// The surviving combinations as typed values.
    ///
    /// # Panics
    ///
    /// Panics if a survivor label was corrupted (cannot happen for results
    /// produced by [`explore_application_level`]).
    #[must_use]
    pub fn survivor_combos(&self) -> Vec<Combo> {
        self.survivors
            .iter()
            .map(|s| parse_combo(s).expect("survivor labels are well-formed"))
            .collect()
    }

    /// Fraction of the design space discarded by this step.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.measurements.is_empty() {
            return 0.0;
        }
        1.0 - self.survivors.len() as f64 / self.measurements.len() as f64
    }
}

/// Runs step 1 on a default engine built from the configuration
/// (`cfg.parallel` selects auto worker count versus one). See
/// [`explore_application_level_with`].
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_application_level(cfg: &MethodologyConfig) -> Result<Step1Result, ExploreError> {
    explore_application_level_with(&mut cfg.default_engine(), cfg)
}

/// Runs step 1: simulate **all** DDT combinations on the reference
/// configuration and keep only those that are best in at least one metric —
/// the 4-D Pareto front, topped up (or capped) to the configured survivor
/// fraction by normalised overall score.
///
/// The whole combination space is handed to `engine` as one batch: the
/// engine spreads it over its worker pool and answers repeat points from
/// its cache, while the returned measurements keep canonical combination
/// order at any worker count.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn explore_application_level_with(
    engine: &mut ExploreEngine,
    cfg: &MethodologyConfig,
) -> Result<Step1Result, ExploreError> {
    cfg.validate()?;
    let workload = Workload::build(
        cfg.reference_network.spec(),
        cfg.packets_per_sim,
        cfg.streaming,
    )?;
    let trace_fp = workload.source().fingerprint();
    let params = cfg
        .param_variants
        .first()
        .expect("validated config has at least one variant");
    let combos = combos_from(&cfg.candidates);
    let units: Vec<SimUnit> = combos
        .iter()
        .map(|&combo| {
            SimUnit::from_source(cfg.app, combo, params, workload.source(), trace_fp, cfg.mem)
        })
        .collect();
    let measurements = engine.try_evaluate_batch(&units)?;
    let survivors = select_survivors(&measurements, cfg.survivor_fraction);
    Ok(Step1Result {
        survivors,
        measurements,
    })
}

/// Survivor selection: the 4-D Pareto-optimal combinations, plus the best
/// remaining combinations by normalised score until the target count is
/// reached. The front is never truncated — pruning must stay loss-free for
/// step 3 (see the `ablation_pruning` bench for the empirical check).
pub(crate) fn select_survivors(measurements: &[SimLog], fraction: f64) -> Vec<String> {
    if measurements.is_empty() {
        return Vec::new();
    }
    let points: Vec<[f64; 4]> = measurements.iter().map(SimLog::objectives).collect();
    let target = ((measurements.len() as f64 * fraction).ceil() as usize).max(1);
    let mut keep: Vec<usize> = pareto_front_indices(&points);
    if keep.len() < target {
        // Normalise each metric to [0, 1] and rank the rest by total score.
        let mut maxima = [f64::MIN_POSITIVE; 4];
        for p in &points {
            for d in 0..4 {
                maxima[d] = maxima[d].max(p[d]);
            }
        }
        let mut rest: Vec<usize> = (0..points.len()).filter(|i| !keep.contains(i)).collect();
        rest.sort_by(|&a, &b| {
            let score = |i: usize| -> f64 {
                points[i]
                    .iter()
                    .zip(maxima.iter())
                    .map(|(v, m)| v / m)
                    .sum()
            };
            // total_cmp: a NaN score gets a deterministic position (IEEE
            // total order: after +inf, or before -inf when negative)
            // instead of panicking mid-sort.
            score(a).total_cmp(&score(b))
        });
        keep.extend(rest.into_iter().take(target - keep.len()));
    }
    keep.sort_unstable();
    keep.into_iter()
        .map(|i| measurements[i].combo.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_apps::AppKind;
    use ddtr_mem::CostReport;

    fn fake_log(combo: &str, e: f64, t: u64, a: u64, f: u64) -> SimLog {
        SimLog {
            app: AppKind::Drr,
            combo: combo.into(),
            network: "X".into(),
            params: "p".into(),
            report: CostReport {
                accesses: a,
                cycles: t,
                energy_nj: e,
                peak_footprint_bytes: f,
            },
        }
    }

    #[test]
    fn survivors_include_per_metric_winners() {
        let logs = vec![
            fake_log("A+A", 1.0, 900, 900, 900),   // best energy
            fake_log("B+B", 900.0, 1, 900, 900),   // best time
            fake_log("C+C", 900.0, 900, 1, 900),   // best accesses
            fake_log("D+D", 900.0, 900, 900, 1),   // best footprint
            fake_log("E+E", 999.0, 999, 999, 999), // dominated
        ];
        let survivors = select_survivors(&logs, 0.2);
        for label in ["A+A", "B+B", "C+C", "D+D"] {
            assert!(survivors.contains(&label.to_string()), "{label}");
        }
        assert!(!survivors.contains(&"E+E".to_string()));
    }

    #[test]
    fn front_is_never_truncated() {
        // Six mutually non-dominated points with a 10% target: all kept.
        let logs: Vec<SimLog> = (0u32..6)
            .map(|i| {
                fake_log(
                    &format!("K{i}+K{i}"),
                    f64::from(i + 1),
                    u64::from(6 - i),
                    10,
                    10,
                )
            })
            .collect();
        let survivors = select_survivors(&logs, 0.1);
        assert_eq!(survivors.len(), 6);
    }

    #[test]
    fn target_filled_from_best_scores() {
        // One dominating point; fraction demands three survivors.
        let logs = vec![
            fake_log("A+A", 1.0, 1, 1, 1),
            fake_log("B+B", 2.0, 2, 2, 2),
            fake_log("C+C", 3.0, 3, 3, 3),
            fake_log("D+D", 9.0, 9, 9, 9),
        ];
        let survivors = select_survivors(&logs, 0.75);
        assert_eq!(survivors.len(), 3);
        assert!(survivors.contains(&"A+A".to_string()));
        assert!(survivors.contains(&"B+B".to_string()));
        assert!(survivors.contains(&"C+C".to_string()));
    }

    #[test]
    fn full_step1_prunes_most_of_the_space() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let result = explore_application_level(&cfg).expect("step 1");
        assert_eq!(result.measurements.len(), 100);
        assert!(
            result.pruned_fraction() >= 0.6,
            "pruned only {:.0}%",
            result.pruned_fraction() * 100.0
        );
        assert!(!result.survivors.is_empty());
        assert_eq!(result.survivor_combos().len(), result.survivors.len());
    }

    #[test]
    fn empty_input_yields_no_survivors() {
        assert!(select_survivors(&[], 0.5).is_empty());
    }

    #[test]
    fn parallel_and_sequential_step1_agree() {
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let seq = explore_application_level_with(&mut ExploreEngine::with_jobs(1), &cfg)
            .expect("sequential");
        let par = explore_application_level_with(&mut ExploreEngine::with_jobs(4), &cfg)
            .expect("parallel");
        assert_eq!(seq.survivors, par.survivors);
        let key = |l: &SimLog| (l.combo.clone(), l.report.accesses, l.report.cycles);
        let a: Vec<_> = seq.measurements.iter().map(key).collect();
        let b: Vec<_> = par.measurements.iter().map(key).collect();
        assert_eq!(a, b, "parallel step 1 must be order-preserving");
    }

    #[test]
    fn streamed_step1_is_byte_identical_to_materialized() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let mut streamed_cfg = cfg.clone();
        streamed_cfg.streaming = true;
        let materialized = explore_application_level(&cfg).expect("materialized");
        let streamed = explore_application_level(&streamed_cfg).expect("streamed");
        assert_eq!(streamed.survivors, materialized.survivors);
        assert_eq!(
            serde_json::to_string(&streamed.measurements).expect("ser"),
            serde_json::to_string(&materialized.measurements).expect("ser"),
        );
    }

    #[test]
    fn warm_engine_skips_re_simulation() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let mut engine = ExploreEngine::in_memory();
        let first = explore_application_level_with(&mut engine, &cfg).expect("cold");
        assert_eq!(engine.stats().misses, 100);
        let second = explore_application_level_with(&mut engine, &cfg).expect("warm");
        assert_eq!(engine.stats().misses, 100, "warm step 1 executes nothing");
        assert_eq!(first.survivors, second.survivors);
    }
}
