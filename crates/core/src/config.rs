//! Configuration of the methodology pipeline.

use crate::error::ExploreError;
use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_engine::ExploreEngine;
use ddtr_mem::MemoryConfig;
use ddtr_trace::NetworkPreset;
use serde::{Deserialize, Serialize};

fn default_candidates() -> Vec<DdtKind> {
    DdtKind::ALL.to_vec()
}

/// Everything the three-step pipeline needs to explore one application.
///
/// Use [`MethodologyConfig::paper`] for the full paper-sized sweeps and
/// [`MethodologyConfig::quick`] for test/example-sized ones.
///
/// # Example
///
/// ```
/// use ddtr_core::MethodologyConfig;
/// use ddtr_apps::AppKind;
///
/// let cfg = MethodologyConfig::paper(AppKind::Route);
/// assert_eq!(cfg.exhaustive_simulations(), 1400); // 100 combos x 14 configs
/// let cfg = MethodologyConfig::paper(AppKind::Ipchains);
/// assert_eq!(cfg.exhaustive_simulations(), 2100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodologyConfig {
    /// The application under exploration.
    pub app: AppKind,
    /// The DDT candidate set explored for every dominant slot — the
    /// paper's ten by default; pass [`DdtKind::EXTENDED`] to include the
    /// extension DDTs.
    #[serde(default = "default_candidates")]
    pub candidates: Vec<DdtKind>,
    /// Packets simulated per run.
    pub packets_per_sim: usize,
    /// The "typical input trace" network used by step 1.
    pub reference_network: NetworkPreset,
    /// Fraction of combinations surviving step 1 (the paper keeps ~20 %).
    pub survivor_fraction: f64,
    /// Platform memory configuration.
    pub mem: MemoryConfig,
    /// The network configurations of step 2.
    pub networks: Vec<NetworkPreset>,
    /// The application-parameter variants of step 2.
    pub param_variants: Vec<AppParams>,
    /// Spread simulations over worker threads.
    pub parallel: bool,
    /// Stream packets into each simulation instead of materializing traces
    /// up front: memory stays constant in `packets_per_sim`, results are
    /// byte-identical. Defaults to `false` (absent in persisted configs
    /// written before streaming existed).
    #[serde(default)]
    pub streaming: bool,
}

impl MethodologyConfig {
    /// The paper-sized configuration: all of the application's networks
    /// and parameter variants, 400-packet simulations.
    #[must_use]
    pub fn paper(app: AppKind) -> Self {
        MethodologyConfig {
            app,
            candidates: default_candidates(),
            packets_per_sim: 400,
            reference_network: NetworkPreset::DartmouthBerry,
            survivor_fraction: 0.2,
            mem: MemoryConfig::embedded_default(),
            networks: app.networks().to_vec(),
            param_variants: AppParams::variants_for(app),
            parallel: true,
            streaming: false,
        }
    }

    /// A reduced configuration for tests and examples: two networks, one
    /// parameter variant, short traces.
    #[must_use]
    pub fn quick(app: AppKind) -> Self {
        let params = AppParams {
            route_table_size: 48,
            firewall_rules: 16,
            table_cap: 24,
            ..AppParams::default()
        };
        params.validate().expect("quick params valid");
        MethodologyConfig {
            app,
            candidates: default_candidates(),
            packets_per_sim: 80,
            reference_network: NetworkPreset::DartmouthBerry,
            survivor_fraction: 0.2,
            mem: MemoryConfig::embedded_default(),
            networks: vec![NetworkPreset::DartmouthBerry, NetworkPreset::NlanrAix],
            param_variants: vec![params],
            parallel: false,
            streaming: false,
        }
    }

    /// Builds the engine the plain (engine-less) entry points run on: one
    /// worker per core when `parallel` is set, a single worker otherwise,
    /// with in-memory caching only. Callers wanting persistent caching or
    /// an explicit `--jobs` build their own [`ExploreEngine`] and use the
    /// `*_with` variants.
    #[must_use]
    pub fn default_engine(&self) -> ExploreEngine {
        ExploreEngine::with_jobs(usize::from(!self.parallel))
    }

    /// Number of step-2 configurations (networks × parameter variants).
    #[must_use]
    pub fn configurations(&self) -> usize {
        self.networks.len() * self.param_variants.len()
    }

    /// Simulations an exhaustive exploration would need (the paper's
    /// Table 1 "Exhaustive simulations" column): all combinations on every
    /// configuration.
    #[must_use]
    pub fn exhaustive_simulations(&self) -> usize {
        self.candidates.len().pow(2) * self.configurations()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidConfig`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.candidates.len() < 2 {
            return Err(ExploreError::InvalidConfig(
                "at least two DDT candidates are required".into(),
            ));
        }
        if self.packets_per_sim == 0 {
            return Err(ExploreError::InvalidConfig(
                "packets_per_sim must be non-zero".into(),
            ));
        }
        if !(0.01..=1.0).contains(&self.survivor_fraction) {
            return Err(ExploreError::InvalidConfig(format!(
                "survivor fraction {} outside (0.01, 1.0]",
                self.survivor_fraction
            )));
        }
        if self.networks.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one network configuration is required".into(),
            ));
        }
        if self.param_variants.is_empty() {
            return Err(ExploreError::InvalidConfig(
                "at least one application-parameter variant is required".into(),
            ));
        }
        for p in &self.param_variants {
            p.validate().map_err(ExploreError::InvalidConfig)?;
        }
        self.mem.validate().map_err(ExploreError::InvalidConfig)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_table_one() {
        assert_eq!(
            MethodologyConfig::paper(AppKind::Route).exhaustive_simulations(),
            1400
        );
        assert_eq!(
            MethodologyConfig::paper(AppKind::Url).exhaustive_simulations(),
            500
        );
        assert_eq!(
            MethodologyConfig::paper(AppKind::Ipchains).exhaustive_simulations(),
            2100
        );
        assert_eq!(
            MethodologyConfig::paper(AppKind::Drr).exhaustive_simulations(),
            500
        );
    }

    #[test]
    fn configs_validate() {
        for app in AppKind::ALL {
            MethodologyConfig::paper(app).validate().expect("paper");
            MethodologyConfig::quick(app).validate().expect("quick");
        }
    }

    #[test]
    fn extended_candidates_enlarge_the_space() {
        let mut cfg = MethodologyConfig::paper(AppKind::Url);
        cfg.candidates = DdtKind::EXTENDED.to_vec();
        cfg.validate().expect("extended set is valid");
        assert_eq!(cfg.exhaustive_simulations(), 144 * 5);
    }

    #[test]
    fn config_without_candidates_field_deserialises_to_paper_library() {
        // Logs written before the extension carry no `candidates` field;
        // they must replay against the paper's ten.
        let mut v = serde_json::to_value(MethodologyConfig::quick(AppKind::Drr)).expect("ser");
        v.as_object_mut().expect("object").remove("candidates");
        let cfg: MethodologyConfig = serde_json::from_value(v).expect("de");
        assert_eq!(cfg.candidates, DdtKind::ALL.to_vec());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.candidates.truncate(1);
        assert!(cfg.validate().is_err());

        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.packets_per_sim = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.survivor_fraction = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.networks.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.param_variants.clear();
        assert!(cfg.validate().is_err());
    }
}
