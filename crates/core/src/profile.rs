//! Dominant-container profiling — the first substep of the methodology.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::workload::Workload;
use ddtr_apps::SlotProfile;
use ddtr_ddt::DdtKind;
use ddtr_engine::Simulator;
use serde::{Deserialize, Serialize};

/// Result of profiling the application on a typical input trace.
///
/// The paper: "we attach to each candidate DDT of the network application
/// a profile object and run the application for some typical input traces.
/// The profiling reveals the dominant data structures of the application
/// (i.e. the ones that are accessed the most)".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// All candidate slots with their access counters, sorted by
    /// descending access count.
    pub slots: Vec<SlotProfile>,
    /// Names of the slots selected as dominant.
    pub dominant: Vec<String>,
    /// Share of all container accesses covered by the dominant set.
    pub dominant_share: f64,
}

impl ProfileReport {
    /// Whether profiling agrees with the application's declared dominant
    /// slots (a sanity check of the methodology itself).
    #[must_use]
    pub fn matches_declared(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.dominant == self.dominant.contains(&s.name.to_string()))
    }
}

/// Share of total container accesses the dominant set must cover.
const DOMINANCE_COVERAGE: f64 = 0.95;

/// Runs the profiling substep: instrument every candidate container of the
/// application (in its baseline configuration), replay the reference
/// trace, and rank containers by access share.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when the configuration fails
/// validation.
pub fn profile_application(cfg: &MethodologyConfig) -> Result<ProfileReport, ExploreError> {
    cfg.validate()?;
    let params = cfg
        .param_variants
        .first()
        .expect("validated config has at least one variant");
    let sim = Simulator::new(cfg.mem);
    // With `cfg.streaming`, profiling streams its packets too — the whole
    // pipeline stays constant-memory, not just the exploration steps.
    let workload = Workload::build(
        cfg.reference_network.spec(),
        cfg.packets_per_sim,
        cfg.streaming,
    )?;
    let (_, mut slots) =
        workload.run_with_profiles(&sim, cfg.app, [DdtKind::Sll, DdtKind::Sll], params);
    slots.sort_by_key(|s| std::cmp::Reverse(s.counts.accesses));
    let total: u64 = slots.iter().map(|s| s.counts.accesses).sum();
    let mut dominant = Vec::new();
    let mut covered = 0u64;
    for slot in &slots {
        if total > 0 && covered as f64 / total as f64 >= DOMINANCE_COVERAGE {
            break;
        }
        covered += slot.counts.accesses;
        dominant.push(slot.name.to_string());
    }
    Ok(ProfileReport {
        dominant_share: if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        },
        slots,
        dominant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_apps::AppKind;

    #[test]
    fn profiling_detects_the_declared_dominant_slots() {
        for app in AppKind::ALL {
            let cfg = MethodologyConfig::quick(app);
            let report = profile_application(&cfg).expect("profiles");
            assert!(
                report.matches_declared(),
                "{app}: profiling found {:?}",
                report.dominant
            );
            assert!(report.dominant_share >= 0.9, "{app}");
            assert_eq!(report.dominant.len(), 2, "{app}");
        }
    }

    #[test]
    fn slots_are_sorted_by_access_share() {
        let cfg = MethodologyConfig::quick(AppKind::Route);
        let report = profile_application(&cfg).expect("profiles");
        let accesses: Vec<u64> = report.slots.iter().map(|s| s.counts.accesses).collect();
        let mut sorted = accesses.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(accesses, sorted);
    }

    #[test]
    fn streamed_profiling_matches_materialized() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let mut streamed_cfg = cfg.clone();
        streamed_cfg.streaming = true;
        let materialized = profile_application(&cfg).expect("materialized");
        let streamed = profile_application(&streamed_cfg).expect("streamed");
        assert_eq!(
            serde_json::to_string(&streamed).expect("ser"),
            serde_json::to_string(&materialized).expect("ser"),
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MethodologyConfig::quick(AppKind::Url);
        cfg.packets_per_sim = 0;
        assert!(profile_application(&cfg).is_err());
    }
}
