//! Request → exploration dispatch: one serialisable entry point over
//! every exploration mode.
//!
//! The CLI subcommands, the scenario matrix and the GA each used to be
//! reachable only through their own typed entry point. A resident service
//! (`ddtr serve`) needs the complementary shape: *one* value that names an
//! exploration — mode plus configuration — which can be serialised onto a
//! wire, fingerprinted, queued, and finally executed against whatever
//! [`ExploreEngine`] the caller supplies. [`ExploreRequest`] is that
//! value, [`ExploreResult`] its typed answer, and [`dispatch_with`] the
//! single execution path they meet in. Because every mode runs through
//! the engine's deterministic batches, equal requests produce
//! byte-identical results at any worker count and regardless of what else
//! runs on the same engine in between.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::ga::{explore_heuristic_with, GaConfig, GaOutcome};
use crate::headline::{headline_comparison, HeadlineReport};
use crate::pipeline::{Methodology, MethodologyOutcome};
use crate::scenarios::{explore_scenarios_with, ScenarioConfig, ScenarioMatrix};
use crate::sweep::{
    explore_sweep_observed, explore_sweep_with, SweepCell, SweepConfig, SweepMatrix,
};
use ddtr_engine::ExploreEngine;
use serde::{Deserialize, Serialize};

/// One exploration to run: the mode and its full configuration.
///
/// The request is plain data — serialisable, comparable by content,
/// executable on any engine via [`dispatch_with`]. `ddtr serve` queues
/// these; the CLI subcommands build them from flags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExploreRequest {
    /// The full three-step pipeline (profile → step 1 → step 2 sweep →
    /// Pareto pruning).
    Explore(MethodologyConfig),
    /// The seeded NSGA-II heuristic exploration.
    Ga(GaConfig),
    /// The application × scenario Pareto matrix (always streamed).
    Scenarios(ScenarioConfig),
    /// The scenarios × platforms sweep over the memory-preset catalog
    /// (always streamed).
    Sweep(SweepConfig),
    /// The pipeline plus the paper's headline comparison against the
    /// all-SLL baseline.
    Headline(MethodologyConfig),
}

impl ExploreRequest {
    /// The request's mode name (`explore`, `ga`, `scenarios`, `sweep`,
    /// `headline`).
    #[must_use]
    pub fn mode(&self) -> &'static str {
        match self {
            ExploreRequest::Explore(_) => "explore",
            ExploreRequest::Ga(_) => "ga",
            ExploreRequest::Scenarios(_) => "scenarios",
            ExploreRequest::Sweep(_) => "sweep",
            ExploreRequest::Headline(_) => "headline",
        }
    }

    /// Validates the embedded configuration without running anything.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidConfig`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), ExploreError> {
        match self {
            ExploreRequest::Explore(cfg) | ExploreRequest::Headline(cfg) => cfg.validate(),
            ExploreRequest::Ga(cfg) => cfg.validate(),
            ExploreRequest::Scenarios(cfg) => cfg.validate(),
            ExploreRequest::Sweep(cfg) => cfg.validate(),
        }
    }
}

/// The typed answer of one dispatched [`ExploreRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExploreResult {
    /// Answer of an [`ExploreRequest::Explore`] request.
    Explore(MethodologyOutcome),
    /// Answer of an [`ExploreRequest::Ga`] request.
    Ga(GaOutcome),
    /// Answer of an [`ExploreRequest::Scenarios`] request.
    Scenarios(ScenarioMatrix),
    /// Answer of an [`ExploreRequest::Sweep`] request.
    Sweep(SweepMatrix),
    /// Answer of an [`ExploreRequest::Headline`] request.
    Headline(HeadlineReport),
}

impl ExploreResult {
    /// The result's mode name, matching [`ExploreRequest::mode`].
    #[must_use]
    pub fn mode(&self) -> &'static str {
        match self {
            ExploreResult::Explore(_) => "explore",
            ExploreResult::Ga(_) => "ga",
            ExploreResult::Scenarios(_) => "scenarios",
            ExploreResult::Sweep(_) => "sweep",
            ExploreResult::Headline(_) => "headline",
        }
    }

    /// The Pareto-front combination labels the result carries, in the
    /// result's own deterministic order (global front for the pipeline,
    /// archive front for the GA, per-cell fronts flattened in matrix
    /// order for scenarios and sweep, the two headline points for
    /// headline).
    #[must_use]
    pub fn front_labels(&self) -> Vec<String> {
        match self {
            ExploreResult::Explore(outcome) => outcome
                .pareto
                .global_front
                .iter()
                .map(|p| p.combo.clone())
                .collect(),
            ExploreResult::Ga(outcome) => outcome.front.iter().map(|l| l.combo.clone()).collect(),
            ExploreResult::Scenarios(matrix) => matrix
                .cells
                .iter()
                .flat_map(|c| c.front.iter().map(|l| l.combo.clone()))
                .collect(),
            ExploreResult::Sweep(matrix) => matrix
                .cells
                .iter()
                .flat_map(|c| c.front.iter().map(|l| l.combo.clone()))
                .collect(),
            ExploreResult::Headline(report) => vec![
                report.best_energy_combo.clone(),
                report.best_time_combo.clone(),
            ],
        }
    }
}

/// Runs one request on a fresh in-memory engine. See [`dispatch_with`].
///
/// # Errors
///
/// Returns [`ExploreError`] when the configuration is invalid or the run
/// fails.
pub fn dispatch(request: &ExploreRequest) -> Result<ExploreResult, ExploreError> {
    dispatch_with(&mut ExploreEngine::in_memory(), request)
}

/// Runs one request on an explicit engine — the single execution path
/// behind the CLI's simulating subcommands and every `ddtr serve`
/// request.
///
/// All simulation work flows through the engine's batches, so results are
/// deterministic at any worker count, repeated requests answer from the
/// engine's (possibly session-shared) cache, and a cancelled engine
/// control surfaces as [`ExploreError::Cancelled`].
///
/// # Errors
///
/// Returns [`ExploreError`] when the configuration is invalid, the run
/// fails, or the engine's control was cancelled.
///
/// # Example
///
/// ```
/// use ddtr_core::{dispatch, ExploreRequest, ExploreResult, MethodologyConfig};
/// use ddtr_apps::AppKind;
///
/// let request = ExploreRequest::Explore(MethodologyConfig::quick(AppKind::Drr));
/// let ExploreResult::Explore(outcome) = dispatch(&request)? else {
///     unreachable!("explore requests produce explore results");
/// };
/// assert!(!outcome.pareto.global_front.is_empty());
/// # Ok::<(), ddtr_core::ExploreError>(())
/// ```
pub fn dispatch_with(
    engine: &mut ExploreEngine,
    request: &ExploreRequest,
) -> Result<ExploreResult, ExploreError> {
    match request {
        ExploreRequest::Explore(cfg) => Methodology::new(cfg.clone())
            .run_with(engine)
            .map(ExploreResult::Explore),
        ExploreRequest::Ga(cfg) => explore_heuristic_with(engine, cfg).map(ExploreResult::Ga),
        ExploreRequest::Scenarios(cfg) => {
            explore_scenarios_with(engine, cfg).map(ExploreResult::Scenarios)
        }
        ExploreRequest::Sweep(cfg) => explore_sweep_with(engine, cfg).map(ExploreResult::Sweep),
        ExploreRequest::Headline(cfg) => {
            let outcome = Methodology::new(cfg.clone()).run_with(engine)?;
            headline_comparison(cfg, &outcome).map(ExploreResult::Headline)
        }
    }
}

/// [`dispatch_with`], but with a per-cell observer for sweep requests —
/// the hook `ddtr serve` streams `Cell` events from. Non-sweep requests
/// never invoke the observer and behave exactly like [`dispatch_with`].
///
/// # Errors
///
/// Returns [`ExploreError`] when the configuration is invalid, the run
/// fails, or the engine's control was cancelled.
pub fn dispatch_observed(
    engine: &mut ExploreEngine,
    request: &ExploreRequest,
    on_cell: impl FnMut(&SweepCell, usize, usize),
) -> Result<ExploreResult, ExploreError> {
    match request {
        ExploreRequest::Sweep(cfg) => {
            explore_sweep_observed(engine, cfg, on_cell).map(ExploreResult::Sweep)
        }
        other => dispatch_with(engine, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_apps::AppKind;
    use ddtr_trace::NetworkPreset;

    #[test]
    fn request_round_trips_through_json() {
        let requests = vec![
            ExploreRequest::Explore(MethodologyConfig::quick(AppKind::Drr)),
            ExploreRequest::Ga(GaConfig::quick(AppKind::Url)),
            ExploreRequest::Scenarios(ScenarioConfig::quick(NetworkPreset::DartmouthBerry)),
            ExploreRequest::Sweep(SweepConfig::quick(NetworkPreset::DartmouthBerry)),
            ExploreRequest::Headline(MethodologyConfig::quick(AppKind::Nat)),
        ];
        for request in requests {
            let json = serde_json::to_string(&request).expect("serialise");
            let back: ExploreRequest = serde_json::from_str(&json).expect("deserialise");
            assert_eq!(back.mode(), request.mode());
            assert_eq!(
                serde_json::to_string(&back).expect("re-serialise"),
                json,
                "round trip is lossless"
            );
        }
    }

    #[test]
    fn dispatch_matches_the_direct_entry_points() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let direct = Methodology::new(cfg.clone()).run().expect("direct");
        let via = dispatch(&ExploreRequest::Explore(cfg)).expect("dispatched");
        let ExploreResult::Explore(outcome) = &via else {
            panic!("wrong result mode {}", via.mode());
        };
        assert_eq!(
            serde_json::to_string(&outcome.pareto.global_front).expect("ser"),
            serde_json::to_string(&direct.pareto.global_front).expect("ser"),
            "byte-identical Pareto front"
        );
        assert_eq!(via.front_labels().len(), direct.pareto.global_front.len());
    }

    #[test]
    fn result_round_trips_and_labels_are_stable() {
        let mut cfg = ScenarioConfig::quick(NetworkPreset::DartmouthBerry);
        cfg.apps = vec![AppKind::Drr];
        cfg.scenarios = vec![ddtr_trace::Scenario::Baseline];
        cfg.packets_per_sim = 40;
        let result = dispatch(&ExploreRequest::Scenarios(cfg)).expect("matrix");
        let json = serde_json::to_string(&result).expect("ser");
        let back: ExploreResult = serde_json::from_str(&json).expect("de");
        assert_eq!(back.front_labels(), result.front_labels());
        assert!(!result.front_labels().is_empty());
    }

    #[test]
    fn sweep_dispatch_matches_the_direct_entry_point_and_observes_cells() {
        let mut cfg = SweepConfig::quick(NetworkPreset::DartmouthBerry);
        cfg.packets_per_sim = 40;
        let direct = crate::sweep::explore_sweep(&cfg).expect("direct");
        let mut cells_seen = 0;
        let via = dispatch_observed(
            &mut ExploreEngine::in_memory(),
            &ExploreRequest::Sweep(cfg),
            |_, done, total| {
                cells_seen = done;
                assert_eq!(total, 4);
            },
        )
        .expect("dispatched");
        let ExploreResult::Sweep(matrix) = &via else {
            panic!("wrong result mode {}", via.mode());
        };
        assert_eq!(cells_seen, 4, "observer saw every cell");
        assert_eq!(
            serde_json::to_string(&matrix.cells).expect("ser"),
            serde_json::to_string(&direct.cells).expect("ser"),
            "byte-identical sweep cells"
        );
        assert_eq!(
            serde_json::to_string(&matrix.survivors).expect("ser"),
            serde_json::to_string(&direct.survivors).expect("ser"),
        );
    }

    #[test]
    fn invalid_requests_fail_validation_without_running() {
        let mut cfg = MethodologyConfig::quick(AppKind::Drr);
        cfg.packets_per_sim = 0;
        let request = ExploreRequest::Explore(cfg);
        assert!(request.validate().is_err());
        assert!(dispatch(&request).is_err());
    }
}
