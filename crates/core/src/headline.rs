//! Baseline comparison against the original NetBench implementation.

use crate::config::MethodologyConfig;
use crate::error::ExploreError;
use crate::pipeline::MethodologyOutcome;
use crate::workload::Workload;
use ddtr_ddt::DdtKind;
use ddtr_engine::Simulator;
use ddtr_mem::CostReport;
use serde::{Deserialize, Serialize};

/// The paper's headline comparison: the best Pareto-optimal DDT choice
/// versus the original implementation ("both DDTs were implemented as
/// single linked lists"), averaged across the explored networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadlineReport {
    /// Metrics of the original (SLL+SLL) implementation, averaged over the
    /// explored configurations.
    pub baseline: CostReport,
    /// Metrics of the best-energy global Pareto point.
    pub best_energy: CostReport,
    /// Combination label of the best-energy point.
    pub best_energy_combo: String,
    /// Metrics of the best-time global Pareto point.
    pub best_time: CostReport,
    /// Combination label of the best-time point.
    pub best_time_combo: String,
}

impl HeadlineReport {
    /// Energy saving of the best-energy point versus the baseline, as a
    /// fraction in `[0, 1]` (negative if the baseline is better).
    #[must_use]
    pub fn energy_saving(&self) -> f64 {
        relative_gain(self.baseline.energy_nj, self.best_energy.energy_nj)
    }

    /// Execution-time improvement of the best-time point versus the
    /// baseline, as a fraction.
    #[must_use]
    pub fn time_improvement(&self) -> f64 {
        relative_gain(self.baseline.cycles as f64, self.best_time.cycles as f64)
    }

    /// Access reduction of the best-energy point versus the baseline.
    #[must_use]
    pub fn access_reduction(&self) -> f64 {
        relative_gain(
            self.baseline.accesses as f64,
            self.best_energy.accesses as f64,
        )
    }

    /// Footprint reduction of the best-energy point versus the baseline.
    #[must_use]
    pub fn footprint_reduction(&self) -> f64 {
        relative_gain(
            self.baseline.peak_footprint_bytes as f64,
            self.best_energy.peak_footprint_bytes as f64,
        )
    }
}

fn relative_gain(baseline: f64, improved: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - improved) / baseline
    }
}

/// Computes the headline comparison for a finished exploration: the
/// SLL+SLL baseline is simulated on every configuration of `outcome` and
/// compared against the global Pareto front's best-energy and best-time
/// points.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] if the outcome has an empty
/// Pareto front (cannot happen for outcomes produced by
/// [`crate::Methodology::run`]).
pub fn headline_comparison(
    cfg: &MethodologyConfig,
    outcome: &MethodologyOutcome,
) -> Result<HeadlineReport, ExploreError> {
    let best_energy = outcome
        .pareto
        .best_by(0)
        .ok_or_else(|| ExploreError::InvalidConfig("empty Pareto front".into()))?;
    let best_time = outcome
        .pareto
        .best_by(1)
        .ok_or_else(|| ExploreError::InvalidConfig("empty Pareto front".into()))?;
    let sim = Simulator::new(cfg.mem);
    let mut reports = Vec::new();
    for &network in &cfg.networks {
        // With `cfg.streaming`, the baseline runs stream too, matching
        // the memory behaviour of the pipeline the outcome came from.
        let workload = Workload::build(network.spec(), cfg.packets_per_sim, cfg.streaming)?;
        for params in &cfg.param_variants {
            let log = workload.run(&sim, cfg.app, [DdtKind::Sll, DdtKind::Sll], params);
            reports.push(log.report);
        }
    }
    let n = reports.len() as f64;
    let baseline = CostReport {
        accesses: (reports.iter().map(|r| r.accesses).sum::<u64>() as f64 / n) as u64,
        cycles: (reports.iter().map(|r| r.cycles).sum::<u64>() as f64 / n) as u64,
        energy_nj: reports.iter().map(|r| r.energy_nj).sum::<f64>() / n,
        peak_footprint_bytes: (reports.iter().map(|r| r.peak_footprint_bytes).sum::<u64>() as f64
            / n) as u64,
    };
    Ok(HeadlineReport {
        baseline,
        best_energy: best_energy.report,
        best_energy_combo: best_energy.combo.clone(),
        best_time: best_time.report,
        best_time_combo: best_time.combo.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Methodology;
    use ddtr_apps::AppKind;

    #[test]
    fn best_points_never_lose_to_the_baseline() {
        // The SLL+SLL baseline is itself part of the explored space, so the
        // best-energy point can only be at least as good.
        let cfg = MethodologyConfig::quick(AppKind::Url);
        let outcome = Methodology::new(cfg.clone()).run().expect("pipeline");
        let headline = headline_comparison(&cfg, &outcome).expect("headline");
        assert!(
            headline.energy_saving() >= 0.0,
            "saving {:.3}",
            headline.energy_saving()
        );
        assert!(
            headline.time_improvement() >= 0.0,
            "improvement {:.3}",
            headline.time_improvement()
        );
    }

    #[test]
    fn streamed_headline_matches_materialized() {
        let cfg = MethodologyConfig::quick(AppKind::Drr);
        let outcome = Methodology::new(cfg.clone()).run().expect("pipeline");
        let materialized = headline_comparison(&cfg, &outcome).expect("materialized");
        let mut streamed_cfg = cfg;
        streamed_cfg.streaming = true;
        let streamed = headline_comparison(&streamed_cfg, &outcome).expect("streamed");
        assert_eq!(
            serde_json::to_string(&streamed).expect("ser"),
            serde_json::to_string(&materialized).expect("ser"),
        );
    }

    #[test]
    fn relative_gain_handles_degenerate_baselines() {
        assert_eq!(relative_gain(0.0, 5.0), 0.0);
        assert!((relative_gain(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert!(relative_gain(10.0, 20.0) < 0.0);
    }
}
