//! Heuristic (NSGA-II) exploration of the DDT combination space.
//!
//! The paper explores the application level *exhaustively* — tractable at
//! `10^2 = 100` combinations, already expensive at `2100` simulations for
//! IPchains, and hopeless once applications expose more than two dominant
//! containers or the library grows (the extension direction of this
//! research line). This module provides the standard multi-objective
//! answer: a seeded, deterministic NSGA-II over combination genomes that
//! recovers (most of) the step-1 Pareto front from a fraction of the
//! simulations. The `heuristic` bench quantifies the trade
//! (`cargo run -p ddtr-bench --bin heuristic --release`).

use crate::error::ExploreError;
use crate::workload::Workload;
use ddtr_apps::{AppKind, AppParams, DOMINANT_SLOTS_PER_APP};
use ddtr_ddt::DdtKind;
use ddtr_engine::{combo_label, Combo, ExploreEngine, SimLog, SimUnit, TraceSource};
use ddtr_mem::MemoryConfig;
use ddtr_pareto::{pareto_front_indices, pareto_ranks};
use ddtr_trace::NetworkPreset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration of one [`explore_heuristic`] run.
///
/// # Example
///
/// ```
/// use ddtr_core::GaConfig;
/// use ddtr_apps::AppKind;
/// use ddtr_ddt::DdtKind;
///
/// let mut cfg = GaConfig::quick(AppKind::Drr);
/// cfg.candidates = DdtKind::EXTENDED.to_vec(); // search the 12-kind space
/// cfg.validate().expect("valid");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaConfig {
    /// The application under exploration.
    pub app: AppKind,
    /// The DDT candidate set genes are drawn from (the paper's ten by
    /// default; use [`DdtKind::EXTENDED`] for the extended library).
    pub candidates: Vec<DdtKind>,
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations evolved after the initial population.
    pub generations: usize,
    /// Probability that an offspring mixes both parents (vs. cloning one).
    pub crossover_rate: f64,
    /// Per-gene probability of a random reassignment.
    pub mutation_rate: f64,
    /// RNG seed — equal seeds replay identical explorations.
    pub seed: u64,
    /// Early stop: end the run once the archive front has not changed for
    /// this many consecutive generations (`None` = always run all
    /// generations).
    #[serde(default)]
    pub stall_generations: Option<usize>,
    /// Packets simulated per fitness evaluation.
    pub packets_per_sim: usize,
    /// Stream packets into each evaluation instead of materializing the
    /// trace (byte-identical results, constant memory in
    /// `packets_per_sim`).
    #[serde(default)]
    pub streaming: bool,
    /// Network whose trace drives the evaluations.
    pub network: NetworkPreset,
    /// Application parameters of the evaluations.
    pub params: AppParams,
    /// Platform memory configuration.
    pub mem: MemoryConfig,
}

impl GaConfig {
    /// A small, fast configuration for tests and examples.
    #[must_use]
    pub fn quick(app: AppKind) -> Self {
        let params = AppParams {
            route_table_size: 48,
            firewall_rules: 16,
            table_cap: 24,
            ..AppParams::default()
        };
        GaConfig {
            app,
            candidates: DdtKind::ALL.to_vec(),
            population: 12,
            generations: 6,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            seed: 0xDD7,
            stall_generations: None,
            packets_per_sim: 80,
            streaming: false,
            network: NetworkPreset::DartmouthBerry,
            params,
            mem: MemoryConfig::embedded_default(),
        }
    }

    /// The configuration the `heuristic` bench compares against the
    /// paper-sized exhaustive step 1 (same trace length and parameters).
    #[must_use]
    pub fn paper(app: AppKind) -> Self {
        GaConfig {
            population: 16,
            generations: 8,
            packets_per_sim: 400,
            params: AppParams::default(),
            ..Self::quick(app)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidConfig`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.candidates.len() < 2 {
            return Err(ExploreError::InvalidConfig(
                "at least two DDT candidates are required".into(),
            ));
        }
        if self.population < 4 {
            return Err(ExploreError::InvalidConfig(
                "population must be at least 4".into(),
            ));
        }
        if self.packets_per_sim == 0 {
            return Err(ExploreError::InvalidConfig(
                "packets_per_sim must be non-zero".into(),
            ));
        }
        for rate in [self.crossover_rate, self.mutation_rate] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ExploreError::InvalidConfig(format!(
                    "rate {rate} outside [0, 1]"
                )));
            }
        }
        if self.stall_generations == Some(0) {
            return Err(ExploreError::InvalidConfig(
                "stall window must be at least one generation".into(),
            ));
        }
        self.params
            .validate()
            .map_err(ExploreError::InvalidConfig)?;
        self.mem.validate().map_err(ExploreError::InvalidConfig)?;
        Ok(())
    }
}

/// Progress snapshot after one generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0 = the evaluated initial population).
    pub generation: usize,
    /// Unique simulations run so far.
    pub evaluations: usize,
    /// Size of the non-dominated archive so far.
    pub front_size: usize,
}

/// Result of a heuristic exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaOutcome {
    /// The non-dominated set over everything the GA evaluated.
    pub front: Vec<SimLog>,
    /// Unique simulations run (the cost the heuristic saves against an
    /// exhaustive sweep).
    pub evaluations: usize,
    /// Per-generation progress.
    pub history: Vec<GenerationStats>,
}

impl GaOutcome {
    /// Labels of the front combinations, sorted.
    #[must_use]
    pub fn front_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.front.iter().map(|l| l.combo.clone()).collect();
        labels.sort();
        labels
    }

    /// Picks, from the heuristic front, the point that satisfies
    /// `constraints` and minimises `objective` — the same designer step as
    /// [`ParetoReport::select`](crate::step3::ParetoReport::select), so
    /// constrained selection works identically whether the front came from
    /// exhaustive or heuristic exploration. `None` when no front point
    /// fits the budgets.
    #[must_use]
    pub fn select(
        &self,
        constraints: &crate::DesignConstraints,
        objective: crate::Objective,
    ) -> Option<&SimLog> {
        self.front
            .iter()
            .filter(|l| constraints.admits(&l.report))
            .min_by(|a, b| {
                // total_cmp: a NaN objective cannot panic the selection;
                // IEEE total order places positive NaN after +inf (negative
                // NaN before -inf), so the pick stays deterministic.
                a.objectives()[objective.dim()].total_cmp(&b.objectives()[objective.dim()])
            })
    }
}

/// A genome: one candidate-set index per dominant slot.
type Genome = [usize; DOMINANT_SLOTS_PER_APP];

/// Everything the GA ever evaluated, memoised per distinct combination and
/// kept in first-evaluation order so iteration is deterministic at any
/// engine worker count.
#[derive(Default)]
struct Archive {
    memo: HashMap<String, SimLog>,
    order: Vec<String>,
}

impl Archive {
    /// Batch-evaluates every combination not yet in the archive on the
    /// engine (one parallel batch per generation instead of the seed's one
    /// serial simulation per lookup).
    fn ensure(
        &mut self,
        engine: &mut ExploreEngine,
        cfg: &GaConfig,
        eval: &Eval,
        combos: &[Combo],
    ) -> Result<(), ExploreError> {
        let mut batch_seen: HashSet<String> = HashSet::new();
        let fresh: Vec<Combo> = combos
            .iter()
            .copied()
            .filter(|&c| {
                let label = combo_label(c);
                !self.memo.contains_key(&label) && batch_seen.insert(label)
            })
            .collect();
        if fresh.is_empty() {
            return Ok(());
        }
        let units: Vec<SimUnit> = fresh
            .iter()
            .map(|&combo| {
                SimUnit::from_source(
                    cfg.app,
                    combo,
                    &cfg.params,
                    eval.source,
                    eval.trace_fp,
                    cfg.mem,
                )
            })
            .collect();
        for log in engine.try_evaluate_batch(&units)? {
            self.order.push(log.combo.clone());
            self.memo.insert(log.combo.clone(), log);
        }
        Ok(())
    }

    fn objectives(&self, combo: Combo) -> [f64; 4] {
        self.memo[&combo_label(combo)].objectives()
    }

    fn logs(&self) -> impl Iterator<Item = &SimLog> {
        self.order.iter().map(|label| &self.memo[label])
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// The shared per-run evaluation inputs.
struct Eval<'a> {
    source: TraceSource<'a>,
    trace_fp: u64,
}

/// Runs the seeded NSGA-II exploration.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when `cfg` fails validation.
///
/// # Example
///
/// ```
/// use ddtr_core::{explore_heuristic, GaConfig};
/// use ddtr_apps::AppKind;
///
/// let outcome = explore_heuristic(&GaConfig::quick(AppKind::Drr))?;
/// assert!(!outcome.front.is_empty());
/// assert!(outcome.evaluations < 100, "cheaper than exhaustive");
/// # Ok::<(), ddtr_core::ExploreError>(())
/// ```
pub fn explore_heuristic(cfg: &GaConfig) -> Result<GaOutcome, ExploreError> {
    explore_heuristic_with(&mut ExploreEngine::in_memory(), cfg)
}

/// Runs the seeded NSGA-II exploration on an explicit engine: each
/// generation's unseen combinations are evaluated as one parallel batch,
/// and a warm cache (e.g. from a previous exhaustive sweep over the same
/// trace) eliminates simulations entirely. The search trajectory — and
/// therefore the outcome — depends only on the seed, never on the worker
/// count.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidConfig`] when `cfg` fails validation.
pub fn explore_heuristic_with(
    engine: &mut ExploreEngine,
    cfg: &GaConfig,
) -> Result<GaOutcome, ExploreError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let workload = Workload::build(cfg.network.spec(), cfg.packets_per_sim, cfg.streaming)?;
    let eval = Eval {
        trace_fp: workload.source().fingerprint(),
        source: workload.source(),
    };
    let mut archive = Archive::default();
    let to_combo = |g: &Genome| -> Combo { [cfg.candidates[g[0]], cfg.candidates[g[1]]] };

    // Initial population: distinct random genomes (repetition would only
    // waste cache hits, not correctness).
    let mut population: Vec<Genome> = Vec::with_capacity(cfg.population);
    while population.len() < cfg.population {
        let g = [
            rng.gen_range(0..cfg.candidates.len()),
            rng.gen_range(0..cfg.candidates.len()),
        ];
        if !population.contains(&g) || population.len() * 2 > cfg.candidates.len().pow(2) {
            population.push(g);
        }
    }
    let mut history = Vec::new();
    // Records progress and returns the archive front's identity (sorted
    // combo labels) for the early-stop check.
    let record =
        |history: &mut Vec<GenerationStats>, archive: &Archive, generation: usize| -> Vec<String> {
            let logs: Vec<&SimLog> = archive.logs().collect();
            let points: Vec<[f64; 4]> = logs.iter().map(|l| l.objectives()).collect();
            let mut labels: Vec<String> = pareto_front_indices(&points)
                .into_iter()
                .map(|i| logs[i].combo.clone())
                .collect();
            labels.sort();
            history.push(GenerationStats {
                generation,
                evaluations: archive.len(),
                front_size: labels.len(),
            });
            labels
        };

    let initial: Vec<Combo> = population.iter().map(&to_combo).collect();
    archive.ensure(engine, cfg, &eval, &initial)?;
    let mut last_front = record(&mut history, &archive, 0);
    let mut stale = 0usize;

    for generation in 1..=cfg.generations {
        let _gen_span = ddtr_obs::Span::enter("core.ga.generation");
        let fitness: Vec<[f64; 4]> = population
            .iter()
            .map(|g| archive.objectives(to_combo(g)))
            .collect();
        let ranks = pareto_ranks(&fitness);
        let crowding = crowding_distances(&fitness, &ranks);

        // Binary-tournament parent selection on (rank, crowding).
        let tournament = |rng: &mut StdRng| -> Genome {
            let a = rng.gen_range(0..population.len());
            let b = rng.gen_range(0..population.len());
            let better = if ranks[a] != ranks[b] {
                if ranks[a] < ranks[b] {
                    a
                } else {
                    b
                }
            } else if crowding[a] >= crowding[b] {
                a
            } else {
                b
            };
            population[better]
        };

        let mut offspring: Vec<Genome> = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population {
            let p1 = tournament(&mut rng);
            let p2 = tournament(&mut rng);
            let mut child = if rng.gen::<f64>() < cfg.crossover_rate {
                // Uniform crossover over the slot genes.
                let mut c = p1;
                for (slot, gene) in c.iter_mut().enumerate() {
                    if rng.gen::<bool>() {
                        *gene = p2[slot];
                    }
                }
                c
            } else {
                p1
            };
            for gene in &mut child {
                if rng.gen::<f64>() < cfg.mutation_rate {
                    *gene = rng.gen_range(0..cfg.candidates.len());
                }
            }
            offspring.push(child);
        }

        // Environmental selection over parents + offspring.
        let mut pool: Vec<Genome> = population.iter().chain(offspring.iter()).copied().collect();
        pool.sort_unstable();
        pool.dedup(); // all duplicates, not only adjacent ones
        pool.shuffle(&mut rng); // tie-breaking independent of insertion order
        let pool_combos: Vec<Combo> = pool.iter().map(&to_combo).collect();
        archive.ensure(engine, cfg, &eval, &pool_combos)?;
        let pool_fitness: Vec<[f64; 4]> =
            pool_combos.iter().map(|&c| archive.objectives(c)).collect();
        let pool_ranks = pareto_ranks(&pool_fitness);
        let pool_crowding = crowding_distances(&pool_fitness, &pool_ranks);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            pool_ranks[a]
                .cmp(&pool_ranks[b])
                .then(pool_crowding[b].total_cmp(&pool_crowding[a]))
        });
        population = order
            .into_iter()
            .take(cfg.population)
            .map(|i| pool[i])
            .collect();
        let front_now = record(&mut history, &archive, generation);
        if front_now == last_front {
            stale += 1;
            if cfg.stall_generations.is_some_and(|w| stale >= w) {
                break;
            }
        } else {
            stale = 0;
            last_front = front_now;
        }
    }

    // The archive front: non-dominated over everything ever evaluated.
    let logs: Vec<SimLog> = archive.logs().cloned().collect();
    let points: Vec<[f64; 4]> = logs.iter().map(SimLog::objectives).collect();
    let mut front: Vec<SimLog> = pareto_front_indices(&points)
        .into_iter()
        .map(|i| logs[i].clone())
        .collect();
    front.sort_by(|a, b| a.combo.cmp(&b.combo));
    Ok(GaOutcome {
        evaluations: logs.len(),
        front,
        history,
    })
}

/// NSGA-II crowding distance, computed within each rank (front).
/// Boundary points of every objective get `f64::INFINITY`.
fn crowding_distances(points: &[[f64; 4]], ranks: &[usize]) -> Vec<f64> {
    let n = points.len();
    let mut distance = vec![0.0f64; n];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for rank in 0..=max_rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == rank).collect();
        if members.len() <= 2 {
            for &i in &members {
                distance[i] = f64::INFINITY;
            }
            continue;
        }
        // `dim` indexes a column across several parallel arrays, so an
        // iterator form would obscure the access pattern.
        #[allow(clippy::needless_range_loop)]
        for dim in 0..4 {
            let mut sorted = members.clone();
            // total_cmp: a NaN objective gets a deterministic position
            // (IEEE total order) instead of panicking or silently
            // corrupting the crowding order.
            sorted.sort_by(|&a, &b| points[a][dim].total_cmp(&points[b][dim]));
            let lo = points[sorted[0]][dim];
            let hi = points[*sorted.last().expect("non-empty front")][dim];
            distance[sorted[0]] = f64::INFINITY;
            distance[*sorted.last().expect("non-empty front")] = f64::INFINITY;
            if hi > lo {
                for w in sorted.windows(3) {
                    distance[w[1]] += (points[w[2]][dim] - points[w[0]][dim]) / (hi - lo);
                }
            }
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_validates_for_every_app() {
        for app in AppKind::ALL {
            GaConfig::quick(app).validate().expect("valid");
            GaConfig::paper(app).validate().expect("valid");
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.candidates.truncate(1);
        assert!(cfg.validate().is_err());

        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.population = 2;
        assert!(cfg.validate().is_err());

        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.mutation_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.packets_per_sim = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn heuristic_outcome_is_independent_of_worker_count() {
        let cfg = GaConfig::quick(AppKind::Drr);
        let a = explore_heuristic_with(&mut ExploreEngine::with_jobs(1), &cfg).expect("1 worker");
        let b = explore_heuristic_with(&mut ExploreEngine::with_jobs(8), &cfg).expect("8 workers");
        assert_eq!(a.front_labels(), b.front_labels());
        assert_eq!(a.evaluations, b.evaluations);
        let objectives =
            |o: &GaOutcome| -> Vec<[f64; 4]> { o.front.iter().map(SimLog::objectives).collect() };
        assert_eq!(objectives(&a), objectives(&b));
    }

    #[test]
    fn warm_engine_reruns_without_simulating() {
        let cfg = GaConfig::quick(AppKind::Url);
        let mut engine = ExploreEngine::in_memory();
        let first = explore_heuristic_with(&mut engine, &cfg).expect("cold");
        let executed = engine.stats().misses;
        assert_eq!(executed, first.evaluations);
        let second = explore_heuristic_with(&mut engine, &cfg).expect("warm");
        assert_eq!(engine.stats().misses, executed, "warm run executes nothing");
        assert_eq!(first.front_labels(), second.front_labels());
    }

    #[test]
    fn heuristic_is_deterministic_per_seed() {
        let cfg = GaConfig::quick(AppKind::Drr);
        let a = explore_heuristic(&cfg).expect("run a");
        let b = explore_heuristic(&cfg).expect("run b");
        assert_eq!(a.front_labels(), b.front_labels());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn different_seeds_may_explore_differently_but_stay_valid() {
        let mut cfg = GaConfig::quick(AppKind::Drr);
        let a = explore_heuristic(&cfg).expect("seed 1");
        cfg.seed = 99;
        let b = explore_heuristic(&cfg).expect("seed 2");
        for outcome in [&a, &b] {
            assert!(!outcome.front.is_empty());
            assert!(outcome.evaluations <= 100, "cannot exceed the space");
        }
    }

    #[test]
    fn evaluations_stay_well_under_exhaustive() {
        let cfg = GaConfig::quick(AppKind::Url);
        let outcome = explore_heuristic(&cfg).expect("run");
        assert!(
            outcome.evaluations < 70,
            "GA used {} of 100 exhaustive simulations",
            outcome.evaluations
        );
    }

    #[test]
    fn early_stop_cuts_generations_without_changing_the_found_front() {
        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.generations = 40; // far more than the space needs
        let full = explore_heuristic(&cfg).expect("full run");
        cfg.stall_generations = Some(3);
        let stopped = explore_heuristic(&cfg).expect("early-stopped run");
        assert!(
            stopped.history.len() < full.history.len(),
            "stall window must terminate early ({} vs {})",
            stopped.history.len(),
            full.history.len()
        );
        // The early-stopped archive is a front over a subset of the same
        // deterministic search; it must not be empty and every member must
        // also exist in the full run's evaluations (same seed, same path).
        assert!(!stopped.front.is_empty());
        assert!(stopped.evaluations <= full.evaluations);
    }

    #[test]
    fn zero_stall_window_is_rejected() {
        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.stall_generations = Some(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn history_is_monotone_in_evaluations() {
        let cfg = GaConfig::quick(AppKind::Drr);
        let outcome = explore_heuristic(&cfg).expect("run");
        assert_eq!(outcome.history.len(), cfg.generations + 1);
        for w in outcome.history.windows(2) {
            assert!(w[1].evaluations >= w[0].evaluations);
            assert_eq!(w[1].generation, w[0].generation + 1);
        }
        assert_eq!(
            outcome.history.last().expect("non-empty").evaluations,
            outcome.evaluations
        );
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let cfg = GaConfig::quick(AppKind::Ipchains);
        let outcome = explore_heuristic(&cfg).expect("run");
        let pts: Vec<[f64; 4]> = outcome.front.iter().map(SimLog::objectives).collect();
        let front = pareto_front_indices(&pts);
        assert_eq!(front.len(), pts.len(), "front must be internally optimal");
    }

    #[test]
    fn extended_candidate_set_is_searchable() {
        let mut cfg = GaConfig::quick(AppKind::Drr);
        cfg.candidates = DdtKind::EXTENDED.to_vec();
        let outcome = explore_heuristic(&cfg).expect("run");
        assert!(!outcome.front.is_empty());
        assert!(outcome.evaluations <= 144);
    }

    #[test]
    fn constrained_selection_over_the_heuristic_front() {
        use crate::{DesignConstraints, Objective};
        let cfg = GaConfig::quick(AppKind::Drr);
        let outcome = explore_heuristic(&cfg).expect("run");
        // Unconstrained: the energy minimum of the front.
        let best = outcome
            .select(&DesignConstraints::none(), Objective::Energy)
            .expect("front is non-empty");
        assert!(outcome
            .front
            .iter()
            .all(|l| l.report.energy_nj >= best.report.energy_nj));
        // A budget tight enough to exclude everything yields None.
        let impossible = DesignConstraints::none().with_max_cycles(0);
        assert!(outcome.select(&impossible, Objective::Energy).is_none());
        // A footprint budget at the front's median keeps only admitted
        // points and the winner satisfies it.
        let mut fps: Vec<u64> = outcome
            .front
            .iter()
            .map(|l| l.report.peak_footprint_bytes)
            .collect();
        fps.sort_unstable();
        let budget = fps[fps.len() / 2];
        if let Some(choice) = outcome.select(
            &DesignConstraints::none().with_max_footprint_bytes(budget),
            Objective::Time,
        ) {
            assert!(choice.report.peak_footprint_bytes <= budget);
        }
    }

    #[test]
    fn crowding_rewards_isolation() {
        // Four rank-0 points on a line: the middle ones compete, boundaries
        // are infinite.
        let points = [
            [0.0, 3.0, 0.0, 0.0],
            [1.0, 2.0, 0.0, 0.0],
            [2.0, 1.0, 0.0, 0.0],
            [3.0, 0.0, 0.0, 0.0],
        ];
        let ranks = vec![0, 0, 0, 0];
        let d = crowding_distances(&points, &ranks);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!((d[1] - d[2]).abs() < 1e-12, "symmetric interior points");
    }

    #[test]
    fn streamed_ga_is_byte_identical_to_materialized() {
        let cfg = GaConfig::quick(AppKind::Drr);
        let mut streamed_cfg = cfg.clone();
        streamed_cfg.streaming = true;
        let materialized = explore_heuristic(&cfg).expect("materialized");
        let streamed = explore_heuristic(&streamed_cfg).expect("streamed");
        assert_eq!(streamed.front_labels(), materialized.front_labels());
        assert_eq!(streamed.evaluations, materialized.evaluations);
        assert_eq!(
            serde_json::to_string(&streamed.front).expect("ser"),
            serde_json::to_string(&materialized.front).expect("ser"),
        );
    }

    #[test]
    fn crowding_tolerates_nan_objectives() {
        // A NaN objective must not panic the sort; the NaN point simply
        // sorts last in that dimension.
        let points = [
            [0.0, 3.0, 0.0, 0.0],
            [1.0, f64::NAN, 0.0, 0.0],
            [2.0, 1.0, 0.0, 0.0],
            [3.0, 0.0, 0.0, 0.0],
        ];
        let ranks = vec![0, 0, 0, 0];
        let d = crowding_distances(&points, &ranks);
        assert_eq!(d.len(), 4);
        assert!(d[0].is_infinite());
    }

    #[test]
    fn crowding_handles_tiny_fronts() {
        let points = [[1.0, 1.0, 1.0, 1.0], [2.0, 2.0, 2.0, 2.0]];
        let ranks = vec![0, 1];
        let d = crowding_distances(&points, &ranks);
        assert!(d.iter().all(|x| x.is_infinite()));
    }
}
