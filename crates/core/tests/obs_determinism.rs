//! Observation must never steer results: the Pareto front of an explore
//! with the metrics/span layer recording is byte-identical to one with
//! recording disabled.
//!
//! Lives in its own integration-test binary because
//! [`ddtr_obs::set_enabled`] is process-global — flipping it here must
//! not race other tests sharing the process.

use ddtr_apps::AppKind;
use ddtr_core::{ExploreEngine, Methodology, MethodologyConfig};

fn quick_front_json() -> String {
    let cfg = MethodologyConfig::quick(AppKind::Drr);
    let outcome = Methodology::new(cfg)
        .run_with(&mut ExploreEngine::with_jobs(2))
        .expect("exploration runs");
    serde_json::to_string(&outcome.pareto.global_front).expect("front serialises")
}

#[test]
fn pareto_front_is_byte_identical_with_observability_on_and_off() {
    ddtr_obs::set_enabled(false);
    let disabled = quick_front_json();
    ddtr_obs::set_enabled(true);
    let enabled = quick_front_json();
    assert!(
        ddtr_obs::trace_len() > 0,
        "the instrumented run records spans"
    );
    assert_eq!(
        disabled, enabled,
        "recording metrics and spans must not change the Pareto front"
    );
}
