//! Deep behavioural tests of the four application kernels against
//! brute-force reference implementations, independent of any DDT choice.

use ddtr_apps::{AppParams, DrrApp, IpchainsApp, NetworkApp, RouteApp, UrlApp};
use ddtr_ddt::DdtKind;
use ddtr_mem::{MemoryConfig, MemorySystem};
use ddtr_trace::{NetworkPreset, Packet, Payload, Protocol};

fn mem() -> MemorySystem {
    MemorySystem::new(MemoryConfig::default())
}

fn pkt(src: u32, dst: u32, dport: u16, proto: Protocol, bytes: u32) -> Packet {
    Packet {
        ts_us: 0,
        src,
        dst,
        sport: 1024,
        dport,
        proto,
        bytes,
        payload: Payload::Empty,
    }
}

// ---------------------------------------------------------------- Route --

/// Exhaustive check over the whole host population: every address with a
/// host route hits; addresses outside the covered space miss.
#[test]
fn route_hits_exactly_the_covered_population() {
    let params = AppParams {
        route_table_size: 64, // 32 host routes for 10.0.0.0..10.0.0.31
        ..AppParams::default()
    };
    let mut m = mem();
    let mut app = RouteApp::new([DdtKind::Array, DdtKind::Array], &params, &mut m);
    for host in 0..32u32 {
        let before = app.hits();
        app.process(&pkt(1, 0x0a00_0000 + host, 80, Protocol::Tcp, 40), &mut m);
        assert_eq!(app.hits(), before + 1, "host 10.0.0.{host} must hit");
    }
    // An address far outside 10/8 must miss.
    let before = app.hits();
    app.process(&pkt(1, 0xDEAD_BEEF, 80, Protocol::Tcp, 40), &mut m);
    assert_eq!(app.hits(), before, "192.x destination must miss");
}

/// Flapping churns the entry table but never loses an entry: all host
/// routes still resolve after hundreds of flap cycles.
#[test]
fn route_flaps_never_lose_routes() {
    let params = AppParams {
        route_table_size: 32,
        ..AppParams::default()
    };
    let mut m = mem();
    let mut app = RouteApp::new([DdtKind::Sll, DdtKind::Dll], &params, &mut m);
    // 2000 packets = ~62 flap cycles over 32 entries (each entry flapped
    // at least once).
    for i in 0..2000u32 {
        app.process(
            &pkt(1, 0x0a00_0000 + (i % 16), 80, Protocol::Tcp, 40),
            &mut m,
        );
    }
    let hits_before = app.hits();
    for host in 0..16u32 {
        app.process(&pkt(1, 0x0a00_0000 + host, 80, Protocol::Tcp, 40), &mut m);
    }
    assert_eq!(
        app.hits(),
        hits_before + 16,
        "all host routes survive flaps"
    );
}

// ------------------------------------------------------------------ URL --

/// Every known stem matches; every unknown one is counted unmatched; the
/// totals reconcile with the packet count.
#[test]
fn url_accounting_reconciles() {
    let mut m = mem();
    let mut app = UrlApp::new(
        [DdtKind::SllChunk, DdtKind::Dll],
        &AppParams::default(),
        &mut m,
    );
    let known = ["/index.html", "/login", "/feed.rss", "/search?q=5"];
    let unknown = ["/nope", "/also/nope"];
    for (i, url) in known.iter().chain(unknown.iter()).enumerate() {
        let mut p = pkt(i as u32, 9, 80, Protocol::Tcp, 576);
        p.payload = Payload::Http { url: (*url).into() };
        app.process(&p, &mut m);
    }
    assert_eq!(app.switches(), known.len() as u64);
    assert_eq!(app.unmatched(), unknown.len() as u64);
    assert_eq!(
        app.packets_processed(),
        (known.len() + unknown.len()) as u64
    );
}

/// Session eviction is FIFO: the oldest flow is dropped first.
#[test]
fn url_session_eviction_is_fifo() {
    let params = AppParams {
        table_cap: 8,
        ..AppParams::default()
    };
    let mut m = mem();
    let mut app = UrlApp::new([DdtKind::Array, DdtKind::Array], &params, &mut m);
    // 9 distinct flows: flow 0 must be evicted when flow 8 arrives.
    for src in 0..9u32 {
        let mut p = pkt(src, 9, 80, Protocol::Tcp, 100);
        p.payload = Payload::Http {
            url: "/login".into(),
        };
        app.process(&p, &mut m);
    }
    // Re-sending flow 0 re-inserts it (a miss), pushing out flow 1.
    let profiles_before = app.slot_profiles();
    let inserts_before = profiles_before
        .iter()
        .find(|s| s.name == "session_table")
        .expect("slot")
        .counts
        .inserts;
    let mut p = pkt(0, 9, 80, Protocol::Tcp, 100);
    p.payload = Payload::Http {
        url: "/login".into(),
    };
    app.process(&p, &mut m);
    let inserts_after = app
        .slot_profiles()
        .into_iter()
        .find(|s| s.name == "session_table")
        .expect("slot")
        .counts
        .inserts;
    assert_eq!(
        inserts_after,
        inserts_before + 1,
        "flow 0 was evicted and re-inserted"
    );
}

// ------------------------------------------------------------- IPchains --

/// The application's verdicts over a grid of (protocol, port) inputs agree
/// with a brute-force walk of the synthesised chain.
#[test]
fn ipchains_verdicts_match_reference_chain() {
    let params = AppParams::default();
    let mut m = mem();
    let mut app = IpchainsApp::new([DdtKind::Dll, DdtKind::Dll], &params, &mut m);
    let grid: Vec<(Protocol, u16)> = [Protocol::Tcp, Protocol::Udp, Protocol::Icmp]
        .into_iter()
        .flat_map(|proto| {
            [25u16, 53, 80, 110, 443, 8080, 9999]
                .into_iter()
                .map(move |port| (proto, port))
        })
        .collect();
    // Distinct sources so conntrack never short-circuits.
    for (i, &(proto, port)) in grid.iter().enumerate() {
        app.process(&pkt(i as u32, 9, port, proto, 100), &mut m);
    }
    assert_eq!(app.accepted() + app.denied(), grid.len() as u64);
    // Known chain facts: SMTP (25) and POP3 (110) TCP are deny rules,
    // ICMP is denied, DNS/HTTP/HTTPS/8080 accepted, unknown ports fall to
    // the catch-all accept.
    let mut m2 = mem();
    let mut probe = IpchainsApp::new([DdtKind::Array, DdtKind::Array], &params, &mut m2);
    let verdict = |app: &mut IpchainsApp, m: &mut MemorySystem, src: u32, port, proto| {
        let before = app.denied();
        app.process(&pkt(src, 9, port, proto, 100), m);
        app.denied() == before // true = accepted
    };
    assert!(
        !verdict(&mut probe, &mut m2, 100, 25, Protocol::Tcp),
        "smtp denied"
    );
    assert!(
        !verdict(&mut probe, &mut m2, 101, 110, Protocol::Tcp),
        "pop3 denied"
    );
    assert!(
        !verdict(&mut probe, &mut m2, 102, 0, Protocol::Icmp),
        "icmp denied"
    );
    assert!(
        verdict(&mut probe, &mut m2, 103, 53, Protocol::Udp),
        "dns accepted"
    );
    assert!(
        verdict(&mut probe, &mut m2, 104, 80, Protocol::Tcp),
        "http accepted"
    );
    assert!(
        verdict(&mut probe, &mut m2, 105, 31337, Protocol::Tcp),
        "catch-all accepts"
    );
}

/// Conntrack caches the verdict: a denied flow keeps being denied via the
/// fast path without re-walking the chain.
#[test]
fn ipchains_conntrack_caches_deny_verdicts() {
    let mut m = mem();
    let mut app = IpchainsApp::new([DdtKind::Sll, DdtKind::Sll], &AppParams::default(), &mut m);
    let p = pkt(7, 9, 25, Protocol::Tcp, 100); // SMTP: denied
    app.process(&p, &mut m);
    assert_eq!(app.denied(), 1);
    for _ in 0..5 {
        app.process(&p, &mut m);
    }
    assert_eq!(app.denied(), 6);
    assert_eq!(app.conn_hits(), 5, "subsequent packets used the cache");
}

// ------------------------------------------------------------------ DRR --

/// Weighted share: a flow sending twice as many packets gets roughly twice
/// the transmissions once both are backlogged (equal quanta, equal-size
/// packets — DRR is fair per byte, demand is the only asymmetry).
#[test]
fn drr_serves_proportionally_to_demand() {
    let mut m = mem();
    let mut app = DrrApp::new([DdtKind::Dll, DdtKind::Dll], &AppParams::default(), &mut m);
    for i in 0..300u32 {
        // Flow 0 sends two packets for every one of flow 1.
        let src = if i % 3 == 2 { 1 } else { 0 };
        app.process(&pkt(src, 9, 80, Protocol::Tcp, 576), &mut m);
    }
    let total = app.transmitted();
    assert!(total > 0);
    assert_eq!(app.enqueued() as usize, 300);
    // Both flows must have been served; conservation holds.
    assert_eq!(app.enqueued(), app.transmitted() + app.backlog() as u64);
}

/// Tiny packets drain many per round; jumbo packets need deficit
/// accumulation across rounds — both must terminate and conserve.
#[test]
fn drr_handles_extreme_packet_sizes() {
    for size in [1u32, 40, 1500, 9000] {
        let mut m = mem();
        let params = AppParams {
            drr_quantum: 1500,
            ..AppParams::default()
        };
        let mut app = DrrApp::new([DdtKind::Array, DdtKind::SllChunk], &params, &mut m);
        for src in 0..60u32 {
            app.process(&pkt(src % 4, 9, 80, Protocol::Tcp, size), &mut m);
        }
        assert_eq!(
            app.enqueued(),
            app.transmitted() + app.backlog() as u64,
            "size {size}"
        );
        assert!(app.transmitted() > 0, "size {size} must make progress");
    }
}

/// Real traces drive all three containers of every app (the minor slot
/// included), so profiling always has three non-zero candidates.
#[test]
fn all_slots_see_traffic_on_long_traces() {
    let trace = NetworkPreset::DartmouthBerry.generate(400);
    let params = AppParams::default();
    let apps: Vec<Box<dyn NetworkApp>> = {
        let mut v: Vec<Box<dyn NetworkApp>> = Vec::new();
        let mut m1 = mem();
        let mut a: Box<dyn NetworkApp> = Box::new(RouteApp::new(
            [DdtKind::Sll, DdtKind::Sll],
            &params,
            &mut m1,
        ));
        for p in &trace {
            a.process(p, &mut m1);
        }
        v.push(a);
        let mut m2 = mem();
        let mut a: Box<dyn NetworkApp> =
            Box::new(UrlApp::new([DdtKind::Sll, DdtKind::Sll], &params, &mut m2));
        for p in &trace {
            a.process(p, &mut m2);
        }
        v.push(a);
        let mut m3 = mem();
        let mut a: Box<dyn NetworkApp> = Box::new(IpchainsApp::new(
            [DdtKind::Sll, DdtKind::Sll],
            &params,
            &mut m3,
        ));
        for p in &trace {
            a.process(p, &mut m3);
        }
        v.push(a);
        let mut m4 = mem();
        let mut a: Box<dyn NetworkApp> =
            Box::new(DrrApp::new([DdtKind::Sll, DdtKind::Sll], &params, &mut m4));
        for p in &trace {
            a.process(p, &mut m4);
        }
        v.push(a);
        v
    };
    for app in &apps {
        for slot in app.slot_profiles() {
            assert!(
                slot.counts.accesses > 0,
                "{}/{} never accessed",
                app.kind(),
                slot.name
            );
        }
    }
}

// ------------------------------------------------------------------ NAT --

/// Brute-force NAT reference: a `HashMap` binding table and a `VecDeque`
/// port pool replaying the gateway's exact policy (FIFO leases, TTL
/// sweeps every 32 packets, inside = first 32 hosts).
#[test]
fn nat_matches_a_brute_force_reference_gateway() {
    use ddtr_apps::NatApp;
    use std::collections::{HashMap, VecDeque};

    const TTL_US: u64 = 400_000;
    const SWEEP: u64 = 32;
    let params = AppParams {
        nat_ports: 16,
        ..AppParams::default()
    };
    let trace = NetworkPreset::DartmouthBerry.generate(600);

    // Reference model over the same trace.
    let mut pool: VecDeque<u16> = (0..16u16).map(|i| 40_000 + i).collect();
    // key -> (port, last_seen, insertion_seq); insertion_seq drives the
    // sweep's logical-order scan, matching the DDT's insertion order.
    let mut bindings: HashMap<u64, (u16, u64, u64)> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let (mut translated, mut dropped, mut expired) = (0u64, 0u64, 0u64);
    for (i, p) in trace.iter().enumerate() {
        let key = p.flow_key();
        let inside = p.src < 0x0a00_0000 + 32;
        if let Some(b) = bindings.get_mut(&key) {
            b.1 = p.ts_us;
            translated += 1;
        } else if inside {
            if let Some(port) = pool.pop_front() {
                bindings.insert(key, (port, p.ts_us, i as u64));
                order.push(key);
                translated += 1;
            } else {
                dropped += 1;
            }
        } else {
            dropped += 1;
        }
        if ((i + 1) as u64).is_multiple_of(SWEEP) {
            let deadline = p.ts_us.saturating_sub(TTL_US);
            let mut keep = Vec::new();
            for &k in &order {
                let (port, last, _) = bindings[&k];
                if last < deadline {
                    bindings.remove(&k);
                    pool.push_back(port);
                    expired += 1;
                } else {
                    keep.push(k);
                }
            }
            order = keep;
        }
    }

    // The real gateway.
    let mut m = mem();
    let mut nat = NatApp::new([DdtKind::Dll, DdtKind::Array], &params, &mut m);
    for p in &trace {
        nat.process(p, &mut m);
    }

    assert_eq!(nat.translated(), translated, "translated diverged");
    assert_eq!(nat.dropped(), dropped, "dropped diverged");
    assert_eq!(nat.expired(), expired, "expired diverged");
    assert_eq!(
        nat.active_bindings(),
        bindings.len(),
        "live bindings diverged"
    );
}
