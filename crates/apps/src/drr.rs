//! `DRR` — deficit round robin scheduling, the fourth paper case study.
//!
//! Arriving packets are queued per flow; the scheduler visits active flows
//! round-robin, granting each a quantum of bytes per visit (the "level of
//! fairness" parameter) and transmitting head packets while the deficit
//! allows. Dominant DDTs: the flow-state table and the queued-packet
//! store.

use crate::app::{NetworkApp, SlotProfile};
use crate::kind::AppKind;
use crate::params::AppParams;
use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr_mem::MemorySystem;
use ddtr_trace::Packet;
use std::collections::{HashMap, VecDeque};

/// Per-flow scheduler state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowState {
    /// Flow key.
    pub key: u64,
    /// Unused transmission credit in bytes.
    pub deficit: u32,
    /// Packets of this flow currently queued.
    pub queued: u32,
    /// Packets of this flow transmitted.
    pub sent: u32,
}

impl Record for FlowState {
    const SIZE: u64 = 40;
    fn key(&self) -> u64 {
        self.key
    }
}

/// A queued packet descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Unique sequence number (the record key).
    pub seq: u64,
    /// Owning flow.
    pub flow: u64,
    /// Packet length in bytes.
    pub bytes: u32,
}

impl Record for QueuedPacket {
    const SIZE: u64 = 24;
    fn key(&self) -> u64 {
        self.seq
    }
}

/// Minor-slot record: scheduler trace events.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SchedEvent {
    seq: u64,
    backlog: u32,
}

impl Record for SchedEvent {
    const SIZE: u64 = 16;
    fn key(&self) -> u64 {
        self.seq
    }
}

/// Backlog that triggers a service burst.
const HIGH_WATER: usize = 24;
/// Backlog the service burst drains down to.
const LOW_WATER: usize = 8;
const EVENT_PERIOD: u64 = 64;
const EVENT_CAP: usize = 8;

/// The deficit-round-robin scheduler application.
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppParams, DrrApp, NetworkApp};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::{MemoryConfig, MemorySystem};
/// use ddtr_trace::NetworkPreset;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut app = DrrApp::new([DdtKind::Dll, DdtKind::Array], &AppParams::default(), &mut mem);
/// for pkt in &NetworkPreset::DartmouthDorm.generate(200) {
///     app.process(pkt, &mut mem);
/// }
/// assert_eq!(app.enqueued(), app.transmitted() + app.backlog() as u64);
/// ```
pub struct DrrApp {
    combo: [DdtKind; 2],
    flows: ProfiledDdt<FlowState>,
    queue: ProfiledDdt<QueuedPacket>,
    events: ProfiledDdt<SchedEvent>,
    quantum: u32,
    flow_cap: usize,
    /// Round-robin order of flows with queued packets.
    active: VecDeque<u64>,
    /// Per-flow FIFO of queued sequence numbers (host-side bookkeeping of
    /// what a real implementation would know from its queue pointers).
    fifos: HashMap<u64, VecDeque<u64>>,
    /// Flow keys in insertion order, for idle-flow eviction.
    flow_order: Vec<u64>,
    next_seq: u64,
    backlog: usize,
    enqueued: u64,
    transmitted: u64,
    service_rounds: u64,
    packets: u64,
    event_seq: u64,
}

impl DrrApp {
    /// Builds the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the container descriptors.
    #[must_use]
    pub fn new(combo: [DdtKind; 2], params: &AppParams, mem: &mut MemorySystem) -> Self {
        DrrApp {
            combo,
            flows: ProfiledDdt::new(combo[0].instantiate::<FlowState>(mem)),
            queue: ProfiledDdt::new(combo[1].instantiate::<QueuedPacket>(mem)),
            events: ProfiledDdt::new(DdtKind::Sll.instantiate::<SchedEvent>(mem)),
            quantum: params.drr_quantum,
            flow_cap: params.table_cap,
            active: VecDeque::new(),
            fifos: HashMap::new(),
            flow_order: Vec::new(),
            next_seq: 0,
            backlog: 0,
            enqueued: 0,
            transmitted: 0,
            service_rounds: 0,
            packets: 0,
            event_seq: 0,
        }
    }

    /// Packets enqueued so far.
    #[must_use]
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets transmitted by the scheduler so far.
    #[must_use]
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Packets currently queued.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Scheduler service rounds executed.
    #[must_use]
    pub fn service_rounds(&self) -> u64 {
        self.service_rounds
    }

    fn enqueue(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        let fk = pkt.flow_key();
        let mut state = match self.flows.get(fk, mem) {
            Some(s) => s,
            None => {
                let s = FlowState {
                    key: fk,
                    deficit: 0,
                    queued: 0,
                    sent: 0,
                };
                self.flows.insert(s.clone(), mem);
                self.flow_order.push(fk);
                self.evict_idle_flow(mem);
                s
            }
        };
        self.next_seq += 1;
        let seq = self.next_seq;
        self.queue.insert(
            QueuedPacket {
                seq,
                flow: fk,
                bytes: pkt.bytes,
            },
            mem,
        );
        let fifo = self.fifos.entry(fk).or_default();
        if fifo.is_empty() {
            self.active.push_back(fk);
        }
        fifo.push_back(seq);
        self.backlog += 1;
        self.enqueued += 1;
        state.queued += 1;
        self.flows.update(fk, state, mem);
    }

    /// Removes one idle (empty-queue) flow when the table exceeds its cap.
    fn evict_idle_flow(&mut self, mem: &mut MemorySystem) {
        if self.flows.len() <= self.flow_cap {
            return;
        }
        let victim = self
            .flow_order
            .iter()
            .position(|fk| self.fifos.get(fk).is_none_or(VecDeque::is_empty));
        if let Some(pos) = victim {
            let fk = self.flow_order.remove(pos);
            self.fifos.remove(&fk);
            self.flows.remove(fk, mem);
        }
    }

    /// One DRR round: grant the head-of-line flow a quantum and transmit
    /// while the deficit covers the head packet.
    fn service_round(&mut self, mem: &mut MemorySystem) {
        let Some(fk) = self.active.pop_front() else {
            return;
        };
        self.service_rounds += 1;
        let Some(mut state) = self.flows.get(fk, mem) else {
            return;
        };
        state.deficit = state.deficit.saturating_add(self.quantum);
        while let Some(&head_seq) = self.fifos.get(&fk).and_then(VecDeque::front) {
            // Peek the head packet to compare against the deficit.
            let Some(head) = self.queue.get(head_seq, mem) else {
                break;
            };
            mem.touch_cpu(1);
            if head.bytes > state.deficit {
                break;
            }
            // Transmit: dequeue the descriptor.
            self.queue.remove(head_seq, mem);
            self.fifos
                .get_mut(&fk)
                .expect("fifo exists while serving")
                .pop_front();
            state.deficit -= head.bytes;
            state.queued -= 1;
            state.sent += 1;
            self.backlog -= 1;
            self.transmitted += 1;
        }
        let still_backlogged = self.fifos.get(&fk).is_some_and(|f| !f.is_empty());
        if still_backlogged {
            self.active.push_back(fk);
        } else {
            // DRR rule: an emptied flow forfeits its deficit.
            state.deficit = 0;
        }
        self.flows.update(fk, state, mem);
    }
}

impl NetworkApp for DrrApp {
    fn kind(&self) -> AppKind {
        AppKind::Drr
    }

    fn combo(&self) -> [DdtKind; 2] {
        self.combo
    }

    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        self.packets += 1;
        self.enqueue(pkt, mem);
        if self.backlog >= HIGH_WATER {
            while self.backlog > LOW_WATER && !self.active.is_empty() {
                self.service_round(mem);
            }
        }
        if self.packets.is_multiple_of(EVENT_PERIOD) {
            self.event_seq += 1;
            self.events.insert(
                SchedEvent {
                    seq: self.event_seq,
                    backlog: self.backlog as u32,
                },
                mem,
            );
            if self.events.len() > EVENT_CAP {
                self.events.remove_nth(0, mem);
            }
        }
    }

    fn slot_profiles(&self) -> Vec<SlotProfile> {
        vec![
            SlotProfile {
                name: "flow_table".into(),
                counts: self.flows.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "packet_queue".into(),
                counts: self.queue.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "sched_events".into(),
                counts: self.events.counts(),
                dominant: false,
            },
        ]
    }

    fn packets_processed(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::{NetworkPreset, Payload, Protocol};

    fn build(combo: [DdtKind; 2]) -> (MemorySystem, DrrApp) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = DrrApp::new(combo, &AppParams::default(), &mut mem);
        (mem, app)
    }

    fn pkt(src: u32, bytes: u32) -> Packet {
        Packet {
            ts_us: 0,
            src,
            dst: 2,
            sport: 9,
            dport: 80,
            proto: Protocol::Tcp,
            bytes,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn conservation_holds_on_real_trace() {
        for combo in [
            [DdtKind::Sll, DdtKind::Sll],
            [DdtKind::Array, DdtKind::DllChunkRov],
        ] {
            let (mut mem, mut app) = build(combo);
            for p in &NetworkPreset::DartmouthDorm.generate(300) {
                app.process(p, &mut mem);
            }
            assert_eq!(
                app.enqueued(),
                app.transmitted() + app.backlog() as u64,
                "{combo:?}"
            );
            assert_eq!(app.queue.len(), app.backlog());
        }
    }

    #[test]
    fn backlog_stays_bounded() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        for p in &NetworkPreset::NlanrMra.generate(500) {
            app.process(p, &mut mem);
            assert!(app.backlog() <= HIGH_WATER, "backlog {}", app.backlog());
        }
        assert!(app.transmitted() > 0);
    }

    #[test]
    fn service_preserves_per_flow_fifo_order() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        // Two flows, interleaved arrivals; force a burst service.
        for i in 0..HIGH_WATER as u32 {
            app.process(&pkt(i % 2, 576), &mut mem);
        }
        // Everything transmitted was removed in seq order per flow; global
        // conservation still holds.
        assert_eq!(app.enqueued(), app.transmitted() + app.backlog() as u64);
    }

    #[test]
    fn small_quantum_needs_more_rounds() {
        let run = |quantum: u32| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let params = AppParams {
                drr_quantum: quantum,
                ..AppParams::default()
            };
            let mut app = DrrApp::new([DdtKind::Array, DdtKind::Array], &params, &mut mem);
            for p in &NetworkPreset::DartmouthDorm.generate(300) {
                app.process(p, &mut mem);
            }
            app.service_rounds()
        };
        assert!(
            run(300) > run(1500),
            "finer fairness must cost more scheduler rounds"
        );
    }

    #[test]
    fn deficit_carries_over_for_backlogged_flows() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        // One flow with many MTU packets: the first service round leaves a
        // backlog, so the flow keeps a deficit and stays active.
        for _ in 0..HIGH_WATER {
            app.process(&pkt(1, 1500), &mut mem);
        }
        assert!(app.transmitted() > 0);
        assert_eq!(app.enqueued(), HIGH_WATER as u64);
    }

    #[test]
    fn idle_flows_are_evicted_beyond_cap() {
        let (mut mem, mut app) = build([DdtKind::Sll, DdtKind::Sll]);
        // Many distinct single-packet flows; drained flows become idle and
        // evictable.
        for src in 0..300u32 {
            app.process(&pkt(src, 40), &mut mem);
        }
        assert!(
            app.flows.len() <= AppParams::default().table_cap + 1,
            "flow table must stay near its cap, got {}",
            app.flows.len()
        );
    }

    #[test]
    fn fairness_two_flows_share_transmissions() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        for i in 0..200u32 {
            app.process(&pkt(i % 2, 576), &mut mem);
        }
        let f0 = app
            .flows
            .get(pkt(0, 576).flow_key(), &mut mem)
            .expect("flow 0");
        let f1 = app
            .flows
            .get(pkt(1, 576).flow_key(), &mut mem)
            .expect("flow 1");
        let (a, b) = (f0.sent, f1.sent);
        assert!(a > 0 && b > 0);
        // Per visit a flow may send floor(quantum/bytes)+carry packets, so
        // the instantaneous imbalance is bounded by one visit's worth.
        let per_visit = (AppParams::default().drr_quantum / 576) + 1;
        let diff = a.abs_diff(b);
        assert!(
            diff <= per_visit,
            "equal-demand flows must share: {a} vs {b}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut mem, mut app) = build([DdtKind::SllChunk, DdtKind::ArrayPtr]);
            for p in &NetworkPreset::DartmouthBerry.generate(250) {
                app.process(p, &mut mem);
            }
            (
                mem.report().accesses,
                app.transmitted(),
                app.service_rounds(),
            )
        };
        assert_eq!(run(), run());
    }
}
