//! `NAT` — network address translation gateway (extension case study).
//!
//! Not one of the paper's four NetBench benchmarks: this kernel exists to
//! demonstrate that the methodology applies unchanged to *new* network
//! applications (the paper's claim of generality). A NAT gateway keeps two
//! dynamic containers under packet-rate pressure: the **binding table**
//! (flow → external port, hit on every packet) and the **port pool**
//! (free external ports, popped on new outbound flows and refilled on
//! expiry). Its application-specific network parameter is the pool size.

use crate::app::{NetworkApp, SlotProfile};
use crate::kind::AppKind;
use crate::params::AppParams;
use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr_mem::MemorySystem;
use ddtr_trace::Packet;

/// One NAT binding: an inside flow mapped to a leased external port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NatBinding {
    /// Inside flow key.
    pub key: u64,
    /// Leased external port.
    pub ext_port: u16,
    /// Timestamp of the last translated packet, µs.
    pub last_seen_us: u64,
    /// Packets translated on this binding.
    pub packets: u32,
}

impl Record for NatBinding {
    const SIZE: u64 = 32;
    fn key(&self) -> u64 {
        self.key
    }
}

/// One free external port in the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortLease {
    /// The port number (doubles as the record key).
    pub port: u16,
}

impl Record for PortLease {
    const SIZE: u64 = 16;
    fn key(&self) -> u64 {
        u64::from(self.port)
    }
}

/// Minor-slot record: periodic gateway statistics snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StatSnapshot {
    seq: u64,
    bindings: u32,
}

impl Record for StatSnapshot {
    const SIZE: u64 = 16;
    fn key(&self) -> u64 {
        self.seq
    }
}

/// First external port handed out by the pool.
const PORT_BASE: u16 = 40_000;
/// Idle time after which a binding expires, µs.
const BINDING_TTL_US: u64 = 400_000;
/// Packets between expiry sweeps.
const SWEEP_PERIOD: u64 = 32;
/// Packets between statistics snapshots.
const STAT_PERIOD: u64 = 64;
/// Retained statistics snapshots.
const STAT_CAP: usize = 8;

/// The NAT gateway application.
///
/// Inside hosts are the lower half of the node population; their outbound
/// flows acquire a binding (and a pooled port), outside packets translate
/// only if a binding exists, and idle bindings are swept back into the
/// pool. All functional outputs (translations, drops, expirations) are
/// invariant under DDT swaps — only the four cost metrics move.
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppParams, NatApp, NetworkApp};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::{MemoryConfig, MemorySystem};
/// use ddtr_trace::NetworkPreset;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut nat = NatApp::new([DdtKind::Dll, DdtKind::Array], &AppParams::default(), &mut mem);
/// for pkt in &NetworkPreset::DartmouthBerry.generate(200) {
///     nat.process(pkt, &mut mem);
/// }
/// assert!(nat.translated() > 0);
/// ```
pub struct NatApp {
    combo: [DdtKind; 2],
    bindings: ProfiledDdt<NatBinding>,
    pool: ProfiledDdt<PortLease>,
    stats_log: ProfiledDdt<StatSnapshot>,
    /// Inside/outside boundary: node ids below this are "inside".
    inside_boundary: u32,
    packets: u64,
    translated: u64,
    dropped: u64,
    expired: u64,
    now_us: u64,
    stat_seq: u64,
}

impl NatApp {
    /// Builds the gateway with `params.nat_ports` pooled external ports.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the initial port pool.
    #[must_use]
    pub fn new(combo: [DdtKind; 2], params: &AppParams, mem: &mut MemorySystem) -> Self {
        let bindings = ProfiledDdt::new(combo[0].instantiate::<NatBinding>(mem));
        let mut pool = ProfiledDdt::new(combo[1].instantiate::<PortLease>(mem));
        let stats_log = ProfiledDdt::new(DdtKind::Sll.instantiate::<StatSnapshot>(mem));
        for i in 0..params.nat_ports {
            pool.insert(
                PortLease {
                    port: PORT_BASE + i as u16,
                },
                mem,
            );
        }
        NatApp {
            combo,
            bindings,
            pool,
            stats_log,
            inside_boundary: 0x0a00_0000 + 32,
            packets: 0,
            translated: 0,
            dropped: 0,
            expired: 0,
            now_us: 0,
            stat_seq: 0,
        }
    }

    /// Packets translated (inside-out or matched inbound) so far.
    #[must_use]
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Packets dropped (no binding and no free port, or unmatched inbound).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bindings expired by the idle sweep so far.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Live bindings right now.
    #[must_use]
    pub fn active_bindings(&self) -> usize {
        self.bindings.len()
    }

    fn is_inside(&self, addr: u32) -> bool {
        addr < self.inside_boundary
    }

    /// Outbound path: reuse the flow's binding or lease a pooled port.
    fn outbound(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        let key = pkt.flow_key();
        if let Some(mut b) = self.bindings.get(key, mem) {
            b.last_seen_us = self.now_us;
            b.packets += 1;
            self.bindings.update(key, b, mem);
            self.translated += 1;
            return;
        }
        // New flow: lease the pool's front port (FIFO reuse order).
        match self.pool.remove_nth(0, mem) {
            Some(lease) => {
                self.bindings.insert(
                    NatBinding {
                        key,
                        ext_port: lease.port,
                        last_seen_us: self.now_us,
                        packets: 1,
                    },
                    mem,
                );
                self.translated += 1;
            }
            None => {
                // Pool exhausted: the gateway sheds the flow.
                self.dropped += 1;
            }
        }
    }

    /// Inbound path: translate only if some binding owns the flow.
    fn inbound(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        let key = pkt.flow_key();
        if let Some(mut b) = self.bindings.get(key, mem) {
            b.last_seen_us = self.now_us;
            b.packets += 1;
            self.bindings.update(key, b, mem);
            self.translated += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Expiry sweep: scan the binding table, expire idle entries and
    /// return their ports to the pool.
    fn sweep(&mut self, mem: &mut MemorySystem) {
        let deadline = self.now_us.saturating_sub(BINDING_TTL_US);
        let mut stale: Vec<(u64, u16)> = Vec::new();
        self.bindings.scan(mem, &mut |b| {
            if b.last_seen_us < deadline {
                stale.push((b.key, b.ext_port));
            }
            true
        });
        for (key, port) in stale {
            self.bindings.remove(key, mem);
            self.pool.insert(PortLease { port }, mem);
            self.expired += 1;
        }
    }
}

impl NetworkApp for NatApp {
    fn kind(&self) -> AppKind {
        AppKind::Nat
    }

    fn combo(&self) -> [DdtKind; 2] {
        self.combo
    }

    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        self.packets += 1;
        self.now_us = pkt.ts_us;
        if self.is_inside(pkt.src) {
            self.outbound(pkt, mem);
        } else {
            self.inbound(pkt, mem);
        }
        if self.packets.is_multiple_of(SWEEP_PERIOD) {
            self.sweep(mem);
        }
        if self.packets.is_multiple_of(STAT_PERIOD) {
            self.stat_seq += 1;
            self.stats_log.insert(
                StatSnapshot {
                    seq: self.stat_seq,
                    bindings: self.bindings.len() as u32,
                },
                mem,
            );
            if self.stats_log.len() > STAT_CAP {
                self.stats_log.remove_nth(0, mem);
            }
        }
    }

    fn slot_profiles(&self) -> Vec<SlotProfile> {
        vec![
            SlotProfile {
                name: "binding_table".into(),
                counts: self.bindings.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "port_pool".into(),
                counts: self.pool.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "stats_log".into(),
                counts: self.stats_log.counts(),
                dominant: false,
            },
        ]
    }

    fn packets_processed(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::{NetworkPreset, Payload, Protocol};

    fn build(combo: [DdtKind; 2]) -> (MemorySystem, NatApp) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = NatApp::new(combo, &AppParams::default(), &mut mem);
        (mem, app)
    }

    fn pkt(src: u32, dst: u32, ts_us: u64) -> Packet {
        Packet {
            ts_us,
            src,
            dst,
            sport: 2000,
            dport: 80,
            proto: Protocol::Tcp,
            bytes: 576,
            payload: Payload::Empty,
        }
    }

    const IN: u32 = 0x0a00_0001; // inside host
    const OUT: u32 = 0x0a00_00f0; // outside host

    #[test]
    fn outbound_flow_acquires_a_binding_and_a_port() {
        let (mut mem, mut nat) = build([DdtKind::Array, DdtKind::Array]);
        let pool_before = nat.pool.len();
        nat.process(&pkt(IN, OUT, 1), &mut mem);
        assert_eq!(nat.translated(), 1);
        assert_eq!(nat.active_bindings(), 1);
        assert_eq!(nat.pool.len(), pool_before - 1);
    }

    #[test]
    fn repeated_flow_reuses_its_binding() {
        let (mut mem, mut nat) = build([DdtKind::Sll, DdtKind::Sll]);
        for i in 0..10 {
            nat.process(&pkt(IN, OUT, i), &mut mem);
        }
        assert_eq!(nat.active_bindings(), 1);
        assert_eq!(nat.translated(), 10);
        let b = nat.bindings.get(pkt(IN, OUT, 0).flow_key(), &mut mem);
        assert_eq!(b.map(|b| b.packets), Some(10));
    }

    #[test]
    fn unmatched_inbound_is_dropped() {
        let (mut mem, mut nat) = build([DdtKind::Dll, DdtKind::Dll]);
        nat.process(&pkt(OUT, IN, 1), &mut mem);
        assert_eq!(nat.dropped(), 1);
        assert_eq!(nat.translated(), 0);
        assert_eq!(nat.active_bindings(), 0);
    }

    #[test]
    fn pool_exhaustion_sheds_new_flows() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let params = AppParams {
            nat_ports: 4,
            ..AppParams::default()
        };
        let mut nat = NatApp::new([DdtKind::Array, DdtKind::Array], &params, &mut mem);
        // Six distinct inside flows against a 4-port pool.
        for sport in 0..6u16 {
            let mut p = pkt(IN, OUT, 1);
            p.sport = 3000 + sport;
            nat.process(&p, &mut mem);
        }
        assert_eq!(nat.active_bindings(), 4);
        assert_eq!(nat.dropped(), 2);
    }

    #[test]
    fn idle_bindings_expire_and_return_their_ports() {
        let (mut mem, mut nat) = build([DdtKind::Dll, DdtKind::Array]);
        let pool_full = nat.pool.len();
        nat.process(&pkt(IN, OUT, 1), &mut mem);
        assert_eq!(nat.pool.len(), pool_full - 1);
        // Advance time far past the TTL and trigger a sweep with traffic
        // from a *different* inside flow.
        let mut filler = pkt(IN, OUT, BINDING_TTL_US * 2);
        filler.sport = 9999;
        for i in 0..SWEEP_PERIOD {
            filler.ts_us = BINDING_TTL_US * 2 + i;
            nat.process(&filler, &mut mem);
        }
        assert!(nat.expired() >= 1, "stale binding must expire");
        // The expired port is back; only the filler flow's lease is out.
        assert_eq!(nat.pool.len(), pool_full - 1);
        assert_eq!(nat.active_bindings(), 1);
    }

    #[test]
    fn expired_port_is_reused_fifo() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let params = AppParams {
            nat_ports: 4,
            ..AppParams::default()
        };
        let mut nat = NatApp::new([DdtKind::Sll, DdtKind::Sll], &params, &mut mem);
        nat.process(&pkt(IN, OUT, 1), &mut mem);
        let first_port = nat
            .bindings
            .get(pkt(IN, OUT, 0).flow_key(), &mut mem)
            .expect("bound")
            .ext_port;
        assert_eq!(first_port, PORT_BASE, "pool leases in FIFO order");
    }

    #[test]
    fn functional_outputs_are_ddt_invariant() {
        let trace = NetworkPreset::DartmouthBerry.generate(300);
        let mut reference: Option<(u64, u64, u64)> = None;
        for combo in [
            [DdtKind::Array, DdtKind::Array],
            [DdtKind::Sll, DdtKind::DllChunkRov],
            [DdtKind::Hash, DdtKind::Avl],
        ] {
            let (mut mem, mut nat) = build(combo);
            for p in &trace {
                nat.process(p, &mut mem);
            }
            let outputs = (nat.translated(), nat.dropped(), nat.expired());
            match &reference {
                None => reference = Some(outputs),
                Some(r) => assert_eq!(*r, outputs, "combo {combo:?} changed behaviour"),
            }
        }
    }

    #[test]
    fn different_combos_cost_differently() {
        let trace = NetworkPreset::DartmouthBerry.generate(200);
        let cost = |combo| {
            let (mut mem, mut nat) = build(combo);
            for p in &trace {
                nat.process(p, &mut mem);
            }
            mem.report().accesses
        };
        assert_ne!(
            cost([DdtKind::Array, DdtKind::Array]),
            cost([DdtKind::Sll, DdtKind::Sll])
        );
    }

    #[test]
    fn profiles_mark_the_two_dominant_slots() {
        let (mut mem, mut nat) = build([DdtKind::Array, DdtKind::Array]);
        for p in &NetworkPreset::DartmouthBerry.generate(100) {
            nat.process(p, &mut mem);
        }
        let profiles = nat.slot_profiles();
        assert_eq!(profiles.iter().filter(|s| s.dominant).count(), 2);
        assert_eq!(profiles.len(), 3);
        let binding = profiles
            .iter()
            .find(|s| s.name == "binding_table")
            .expect("slot");
        assert!(binding.counts.accesses > 0);
    }
}
