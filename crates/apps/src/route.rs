//! `Route` — IPv4 radix-tree routing, the first paper case study.
//!
//! NetBench's `route` holds its routing table in a radix (Patricia) tree:
//! "the `radix_node` structure forms the nodes of the tree and the
//! `rtentry` structure holds the route entries". Both are dominant DDTs
//! here: the node store is walked positionally on every lookup, the entry
//! table is searched by key at every leaf and churned by route flaps.

use crate::app::{NetworkApp, SlotProfile};
use crate::kind::AppKind;
use crate::params::AppParams;
use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr_mem::MemorySystem;
use ddtr_trace::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A node of the radix (crit-bit) tree, stored in the node DDT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixNode {
    /// Node identifier (position in the node store).
    pub id: u64,
    /// Bit index tested at this node (MSB-first), internal nodes only.
    pub bit: u8,
    /// Node id of the zero-branch child.
    pub left: u32,
    /// Node id of the one-branch child.
    pub right: u32,
    /// Key of the route entry at this node (leaves only).
    pub entry_key: u64,
    /// Whether this node is a leaf.
    pub is_leaf: bool,
}

impl Record for RadixNode {
    const SIZE: u64 = 32;
    fn key(&self) -> u64 {
        self.id
    }
}

/// A routing-table entry (`rtentry` in NetBench).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEntry {
    /// Unique entry key, referenced by leaf nodes.
    pub key: u64,
    /// Network prefix (host byte order).
    pub prefix: u32,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Next-hop address.
    pub next_hop: u32,
    /// Route metric, bumped on every flap.
    pub metric: u32,
    /// Route flags.
    pub flags: u32,
}

impl Record for RouteEntry {
    const SIZE: u64 = 56;
    fn key(&self) -> u64 {
        self.key
    }
}

/// Statistics record kept in the minor (non-explored) slot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StatRecord {
    seq: u64,
    lookups: u64,
    hits: u64,
}

impl Record for StatRecord {
    const SIZE: u64 = 24;
    fn key(&self) -> u64 {
        self.seq
    }
}

/// Host-side blueprint used while building the tree.
#[derive(Debug, Clone)]
enum NodeSpec {
    Internal { bit: u8, left: u32, right: u32 },
    Leaf { entry_key: u64 },
}

/// Route lookups per flap of a routing-table entry.
const FLAP_PERIOD: u64 = 32;
/// Lookups per statistics-record append.
const STAT_PERIOD: u64 = 64;
/// Maximum retained statistics records.
const STAT_CAP: usize = 8;

/// The routing application.
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppParams, NetworkApp, RouteApp};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::{MemoryConfig, MemorySystem};
/// use ddtr_trace::NetworkPreset;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut app = RouteApp::new([DdtKind::Array, DdtKind::Dll], &AppParams::default(), &mut mem);
/// for pkt in &NetworkPreset::NlanrAix.generate(50) {
///     app.process(pkt, &mut mem);
/// }
/// assert_eq!(app.packets_processed(), 50);
/// assert!(app.hits() > 0);
/// ```
pub struct RouteApp {
    combo: [DdtKind; 2],
    nodes: ProfiledDdt<RadixNode>,
    entries: ProfiledDdt<RouteEntry>,
    stats: ProfiledDdt<StatRecord>,
    /// Entry keys in flap rotation order.
    entry_keys: Vec<u64>,
    root: u32,
    packets: u64,
    lookups: u64,
    hits: u64,
    flap_cursor: usize,
    stat_seq: u64,
}

impl RouteApp {
    /// Builds the application and populates the routing table with
    /// `params.route_table_size` prefixes derived from `params.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the initial tables.
    #[must_use]
    pub fn new(combo: [DdtKind; 2], params: &AppParams, mem: &mut MemorySystem) -> Self {
        let mut nodes = ProfiledDdt::new(combo[0].instantiate::<RadixNode>(mem));
        let mut entries = ProfiledDdt::new(combo[1].instantiate::<RouteEntry>(mem));
        let stats = ProfiledDdt::new(DdtKind::Sll.instantiate::<StatRecord>(mem));

        let prefixes = Self::synthesise_prefixes(params);
        // Insert the route entries.
        let mut entry_keys = Vec::with_capacity(prefixes.len());
        for (i, &(prefix, prefix_len)) in prefixes.iter().enumerate() {
            let key = 0x1000 + i as u64;
            entries.insert(
                RouteEntry {
                    key,
                    prefix,
                    prefix_len,
                    next_hop: 0xc0a8_0001 + (i as u32 % 14),
                    metric: 1,
                    flags: 0x1,
                },
                mem,
            );
            entry_keys.push(key);
        }
        // Build the crit-bit tree over the prefix addresses and store it.
        let keys: Vec<(u32, u64)> = prefixes
            .iter()
            .enumerate()
            .map(|(i, &(p, _))| (p, 0x1000 + i as u64))
            .collect();
        let mut specs = Vec::new();
        let root = Self::build_critbit(&keys, 0, &mut specs);
        for (id, spec) in specs.iter().enumerate() {
            let node = match spec {
                NodeSpec::Internal { bit, left, right } => RadixNode {
                    id: id as u64,
                    bit: *bit,
                    left: *left,
                    right: *right,
                    entry_key: 0,
                    is_leaf: false,
                },
                NodeSpec::Leaf { entry_key } => RadixNode {
                    id: id as u64,
                    bit: 0,
                    left: 0,
                    right: 0,
                    entry_key: *entry_key,
                    is_leaf: true,
                },
            };
            nodes.insert(node, mem);
        }
        RouteApp {
            combo,
            nodes,
            entries,
            stats,
            entry_keys,
            root,
            packets: 0,
            lookups: 0,
            hits: 0,
            flap_cursor: 0,
            stat_seq: 0,
        }
    }

    /// Routing-table hits observed so far (destination covered by a
    /// stored prefix).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups performed so far.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Generates `route_table_size` unique prefixes over the generator's
    /// `10.0.0.0/8` host population: host routes first (guaranteeing hits),
    /// then wider synthetic prefixes.
    fn synthesise_prefixes(params: &AppParams) -> Vec<(u32, u8)> {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x526f_7574);
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(params.route_table_size);
        // Host routes covering the synthetic node population.
        let hosts = params.route_table_size / 2;
        for i in 0..hosts {
            let addr = 0x0a00_0000u32 + i as u32;
            if seen.insert(addr) {
                out.push((addr, 32));
            }
        }
        // Wider prefixes elsewhere in 10/8.
        while out.len() < params.route_table_size {
            let len = *[16u8, 20, 24].get(rng.gen_range(0..3)).expect("in range");
            let net = 0x0a00_0000u32 | (rng.gen::<u32>() & 0x00ff_ffff & mask(len));
            if seen.insert(net) {
                out.push((net, len));
            }
        }
        out
    }

    /// Recursive crit-bit construction; returns the subtree's node id.
    fn build_critbit(keys: &[(u32, u64)], from_bit: u8, specs: &mut Vec<NodeSpec>) -> u32 {
        debug_assert!(!keys.is_empty());
        if keys.len() == 1 {
            specs.push(NodeSpec::Leaf {
                entry_key: keys[0].1,
            });
            return (specs.len() - 1) as u32;
        }
        // First bit at which the keys differ.
        let mut bit = from_bit;
        loop {
            debug_assert!(bit < 32, "duplicate keys in crit-bit input");
            let first = bit_of(keys[0].0, bit);
            if keys.iter().any(|&(k, _)| bit_of(k, bit) != first) {
                break;
            }
            bit += 1;
        }
        let (zeros, ones): (Vec<_>, Vec<_>) = keys.iter().partition(|&&(k, _)| !bit_of(k, bit));
        let id = specs.len() as u32;
        specs.push(NodeSpec::Internal {
            bit,
            left: 0,
            right: 0,
        });
        let left = Self::build_critbit(&zeros, bit + 1, specs);
        let right = Self::build_critbit(&ones, bit + 1, specs);
        specs[id as usize] = NodeSpec::Internal { bit, left, right };
        id
    }

    /// One longest-prefix lookup: walk the tree positionally, then verify
    /// the candidate entry.
    fn lookup(&mut self, dst: u32, mem: &mut MemorySystem) {
        self.lookups += 1;
        let mut cur = self.root;
        let node = loop {
            let node = self
                .nodes
                .get_nth(cur as usize, mem)
                .expect("node ids are dense");
            mem.touch_cpu(2); // bit extraction + branch
            if node.is_leaf {
                break node;
            }
            cur = if bit_of(dst, node.bit) {
                node.right
            } else {
                node.left
            };
        };
        // Verify the candidate route entry against the destination.
        if let Some(entry) = self.entries.get(node.entry_key, mem) {
            mem.touch_cpu(3); // mask + compare
            if dst & mask(entry.prefix_len) == entry.prefix {
                self.hits += 1;
            }
        }
    }

    /// A route flap: withdraw and re-announce one entry (metric bumped).
    fn flap(&mut self, mem: &mut MemorySystem) {
        let key = self.entry_keys[self.flap_cursor % self.entry_keys.len()];
        self.flap_cursor += 1;
        if let Some(mut entry) = self.entries.remove(key, mem) {
            entry.metric += 1;
            self.entries.insert(entry, mem);
        }
    }
}

impl NetworkApp for RouteApp {
    fn kind(&self) -> AppKind {
        AppKind::Route
    }

    fn combo(&self) -> [DdtKind; 2] {
        self.combo
    }

    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        self.packets += 1;
        self.lookup(pkt.dst, mem);
        if self.packets.is_multiple_of(FLAP_PERIOD) {
            self.flap(mem);
        }
        if self.packets.is_multiple_of(STAT_PERIOD) {
            self.stat_seq += 1;
            self.stats.insert(
                StatRecord {
                    seq: self.stat_seq,
                    lookups: self.lookups,
                    hits: self.hits,
                },
                mem,
            );
            if self.stats.len() > STAT_CAP {
                self.stats.remove_nth(0, mem);
            }
        }
    }

    fn slot_profiles(&self) -> Vec<SlotProfile> {
        vec![
            SlotProfile {
                name: "radix_node".into(),
                counts: self.nodes.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "rtentry".into(),
                counts: self.entries.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "route_stats".into(),
                counts: self.stats.counts(),
                dominant: false,
            },
        ]
    }

    fn packets_processed(&self) -> u64 {
        self.packets
    }
}

fn bit_of(value: u32, bit: u8) -> bool {
    debug_assert!(bit < 32);
    (value >> (31 - bit)) & 1 == 1
}

fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::NetworkPreset;

    fn build(combo: [DdtKind; 2]) -> (MemorySystem, RouteApp) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = RouteApp::new(combo, &AppParams::default(), &mut mem);
        (mem, app)
    }

    #[test]
    fn table_is_populated() {
        let (_, app) = build([DdtKind::Array, DdtKind::Array]);
        assert_eq!(app.entry_keys.len(), 128);
    }

    #[test]
    fn host_routes_hit_exactly() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        // Destination 10.0.0.5 is a synthesised host route.
        app.lookup(0x0a00_0005, &mut mem);
        assert_eq!(app.hits(), 1);
        assert_eq!(app.lookups(), 1);
    }

    #[test]
    fn lookup_agrees_with_reference_lpm() {
        // The crit-bit walk plus verification must agree with a brute-force
        // exact/prefix check against the same table, for in-population
        // destinations (exact host routes).
        let (mut mem, mut app) = build([DdtKind::ArrayPtr, DdtKind::Dll]);
        for node in 0..40u32 {
            let dst = 0x0a00_0000 + node;
            let before = app.hits();
            app.lookup(dst, &mut mem);
            let hit = app.hits() > before;
            assert!(hit, "host route for {dst:#x} must hit");
        }
    }

    #[test]
    fn out_of_population_destination_misses() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        app.lookup(0xc0a8_0101, &mut mem); // 192.168.1.1: not in 10/8 table
        assert_eq!(app.hits(), 0);
    }

    #[test]
    fn flaps_keep_table_size_constant() {
        let (mut mem, mut app) = build([DdtKind::Sll, DdtKind::Sll]);
        let trace = NetworkPreset::DartmouthBerry.generate(150);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        // Entries are withdrawn and re-announced, never lost.
        let counts = app.entries.counts();
        assert!(counts.removes > 0, "flaps must exercise removal");
        assert_eq!(counts.inserts, 128 + counts.removes);
    }

    #[test]
    fn node_store_is_consulted_every_packet() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        let trace = NetworkPreset::DartmouthSudikoff.generate(30);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        let nodes = app.nodes.counts();
        assert!(nodes.get_nths >= 30, "at least root per lookup");
    }

    #[test]
    fn dominant_slots_dwarf_the_stats_slot() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        for pkt in &NetworkPreset::DartmouthBerry.generate(200) {
            app.process(pkt, &mut mem);
        }
        let profiles = app.slot_profiles();
        let dominant_min = profiles
            .iter()
            .filter(|p| p.dominant)
            .map(|p| p.counts.accesses)
            .min()
            .expect("two dominant slots");
        let minor = profiles
            .iter()
            .find(|p| !p.dominant)
            .expect("minor slot")
            .counts
            .accesses;
        assert!(
            dominant_min > minor * 5,
            "dominant {dominant_min} vs minor {minor}"
        );
    }

    #[test]
    fn bigger_table_means_more_node_traffic() {
        let run = |size: usize| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let params = AppParams {
                route_table_size: size,
                ..AppParams::default()
            };
            let mut app = RouteApp::new([DdtKind::Sll, DdtKind::Sll], &params, &mut mem);
            mem.reset_stats();
            for pkt in &NetworkPreset::DartmouthBerry.generate(60) {
                app.process(pkt, &mut mem);
            }
            mem.report().accesses
        };
        assert!(run(256) > run(128), "radix size must matter");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut mem, mut app) = build([DdtKind::SllChunkRov, DdtKind::DllRov]);
            for pkt in &NetworkPreset::NlanrAix.generate(80) {
                app.process(pkt, &mut mem);
            }
            (mem.report().accesses, mem.report().cycles, app.hits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn critbit_structure_is_a_proper_tree() {
        // Every node id below specs.len(); leaves count equals keys.
        let keys: Vec<(u32, u64)> = (0..17u32).map(|i| (i * 7 + 1, u64::from(i))).collect();
        let mut specs = Vec::new();
        let root = RouteApp::build_critbit(&keys, 0, &mut specs);
        assert!((root as usize) < specs.len());
        let leaves = specs
            .iter()
            .filter(|s| matches!(s, NodeSpec::Leaf { .. }))
            .count();
        assert_eq!(leaves, 17);
        assert_eq!(specs.len(), 2 * 17 - 1, "crit-bit tree has n-1 internals");
    }
}
