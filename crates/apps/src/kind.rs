//! Enumeration of the benchmark applications.

use crate::app::NetworkApp;
use crate::drr::DrrApp;
use crate::ipchains::IpchainsApp;
use crate::nat::NatApp;
use crate::params::AppParams;
use crate::route::RouteApp;
use crate::url::UrlApp;
use ddtr_ddt::DdtKind;
use ddtr_mem::MemorySystem;
use ddtr_trace::NetworkPreset;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The benchmark applications: the paper's four NetBench case studies
/// ([`AppKind::ALL`]) plus the NAT extension case study
/// ([`AppKind::EXTENDED_ALL`]).
///
/// # Example
///
/// ```
/// use ddtr_apps::AppKind;
///
/// assert_eq!(AppKind::ALL.len(), 4);
/// assert_eq!(AppKind::EXTENDED_ALL.len(), 5);
/// assert_eq!("route".parse::<AppKind>()?, AppKind::Route);
/// assert_eq!(AppKind::Ipchains.networks().len(), 7);
/// # Ok::<(), ddtr_apps::ParseAppKindError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// IPv4 radix-tree routing (`Route`).
    Route,
    /// URL-based context switching (`URL`).
    Url,
    /// Ordered-rule firewall (`IPchains`).
    Ipchains,
    /// Deficit round robin scheduling (`DRR`).
    Drr,
    /// Network address translation gateway (`NAT`) — extension case study,
    /// not part of the paper's evaluation.
    Nat,
}

impl AppKind {
    /// The paper's four applications in its table order.
    pub const ALL: [AppKind; 4] = [
        AppKind::Route,
        AppKind::Url,
        AppKind::Ipchains,
        AppKind::Drr,
    ];

    /// The paper's four plus the NAT extension case study.
    pub const EXTENDED_ALL: [AppKind; 5] = [
        AppKind::Route,
        AppKind::Url,
        AppKind::Ipchains,
        AppKind::Drr,
        AppKind::Nat,
    ];

    /// Whether this is an extension case study (not in the paper).
    #[must_use]
    pub fn is_extension(self) -> bool {
        matches!(self, AppKind::Nat)
    }

    /// Builds the application with the given DDT implementations in its
    /// two dominant slots.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation or the simulated heap cannot hold
    /// the application's initial tables.
    #[must_use]
    pub fn instantiate(
        self,
        combo: [DdtKind; 2],
        params: &AppParams,
        mem: &mut MemorySystem,
    ) -> Box<dyn NetworkApp> {
        params.validate().expect("invalid application parameters");
        match self {
            AppKind::Route => Box::new(RouteApp::new(combo, params, mem)),
            AppKind::Url => Box::new(UrlApp::new(combo, params, mem)),
            AppKind::Ipchains => Box::new(IpchainsApp::new(combo, params, mem)),
            AppKind::Drr => Box::new(DrrApp::new(combo, params, mem)),
            AppKind::Nat => Box::new(NatApp::new(combo, params, mem)),
        }
    }

    /// Builds the application in its original NetBench configuration: both
    /// dominant containers as singly linked lists (the baseline the paper
    /// compares against).
    #[must_use]
    pub fn baseline(self, params: &AppParams, mem: &mut MemorySystem) -> Box<dyn NetworkApp> {
        self.instantiate([DdtKind::Sll, DdtKind::Sll], params, mem)
    }

    /// The network presets this application is explored on, matching the
    /// paper's sweep sizes (Route/IPchains: 7 networks; URL/DRR: 5).
    #[must_use]
    pub fn networks(self) -> &'static [NetworkPreset] {
        match self {
            AppKind::Route | AppKind::Ipchains => &NetworkPreset::ROUTE_SEVEN,
            AppKind::Url | AppKind::Drr | AppKind::Nat => &NetworkPreset::FIVE,
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppKind::Route => "Route",
            AppKind::Url => "URL",
            AppKind::Ipchains => "IPchains",
            AppKind::Drr => "DRR",
            AppKind::Nat => "NAT",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an unknown application name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAppKindError {
    input: String,
}

impl fmt::Display for ParseAppKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown application `{}`", self.input)
    }
}

impl std::error::Error for ParseAppKindError {}

impl FromStr for AppKind {
    type Err = ParseAppKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "route" => Ok(AppKind::Route),
            "url" => Ok(AppKind::Url),
            "ipchains" => Ok(AppKind::Ipchains),
            "drr" => Ok(AppKind::Drr),
            "nat" => Ok(AppKind::Nat),
            _ => Err(ParseAppKindError { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;

    #[test]
    fn display_and_parse_round_trip() {
        for kind in AppKind::EXTENDED_ALL {
            let parsed: AppKind = kind.to_string().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert!("nfs".parse::<AppKind>().is_err());
    }

    #[test]
    fn extension_flag_marks_only_nat() {
        assert_eq!(&AppKind::EXTENDED_ALL[..4], &AppKind::ALL[..]);
        assert!(AppKind::Nat.is_extension());
        assert!(AppKind::ALL.iter().all(|a| !a.is_extension()));
    }

    #[test]
    fn network_sweeps_match_paper() {
        assert_eq!(AppKind::Route.networks().len(), 7);
        assert_eq!(AppKind::Ipchains.networks().len(), 7);
        assert_eq!(AppKind::Url.networks().len(), 5);
        assert_eq!(AppKind::Drr.networks().len(), 5);
    }

    #[test]
    fn baseline_is_double_sll() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = AppKind::Url.baseline(&AppParams::default(), &mut mem);
        assert_eq!(app.combo(), [DdtKind::Sll, DdtKind::Sll]);
    }

    #[test]
    fn instantiate_builds_every_app_with_every_kind_pair_sample() {
        let trace = ddtr_trace::NetworkPreset::DartmouthSudikoff.generate(10);
        for kind in AppKind::ALL {
            for d in [DdtKind::Array, DdtKind::DllChunkRov] {
                let mut mem = MemorySystem::new(MemoryConfig::default());
                let mut app = kind.instantiate([d, d], &AppParams::default(), &mut mem);
                assert_eq!(app.kind(), kind);
                assert_eq!(app.combo(), [d, d]);
                for pkt in &trace {
                    app.process(pkt, &mut mem);
                }
            }
        }
    }
}
