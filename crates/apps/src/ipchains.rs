//! `IPchains` — ordered-rule firewall, the third paper case study.
//!
//! Packets are matched against an ordered rule chain with first-match
//! semantics; matching rules have their counters updated in place, and
//! accepted flows enter a connection-tracking table that short-circuits the
//! chain for established traffic. Dominant DDTs: the rule chain and the
//! connection table.

use crate::app::{NetworkApp, SlotProfile};
use crate::kind::AppKind;
use crate::params::AppParams;
use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr_mem::MemorySystem;
use ddtr_trace::{Packet, Protocol};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Verdict of a firewall evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet accepted.
    Accept,
    /// Packet denied.
    Deny,
}

/// One rule of the chain. A `dport` of zero and a `proto` of `None` act as
/// wildcards; the synthesised chain always ends with a catch-all rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirewallRule {
    /// Rule identifier (chain position at synthesis time).
    pub key: u64,
    /// Protocol this rule matches, `None` = any.
    pub proto: Option<Protocol>,
    /// Destination port this rule matches, 0 = any.
    pub dport: u16,
    /// Whether a match accepts the packet.
    pub accept: bool,
    /// Packets matched so far (the classic per-rule counter).
    pub hits: u32,
    /// Bytes matched so far.
    pub bytes: u64,
}

impl Record for FirewallRule {
    const SIZE: u64 = 64;
    fn key(&self) -> u64 {
        self.key
    }
}

impl FirewallRule {
    /// Whether this rule matches the packet headers.
    #[must_use]
    pub fn matches(&self, pkt: &Packet) -> bool {
        self.proto.is_none_or(|p| p == pkt.proto) && (self.dport == 0 || self.dport == pkt.dport)
    }
}

/// One tracked connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnEntry {
    /// Flow key.
    pub key: u64,
    /// Cached verdict for the flow.
    pub accept: bool,
    /// Packets seen on the flow.
    pub packets: u32,
}

impl Record for ConnEntry {
    const SIZE: u64 = 40;
    fn key(&self) -> u64 {
        self.key
    }
}

/// Minor-slot record: audit log entries for denied packets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AuditRecord {
    seq: u64,
    flow: u64,
}

impl Record for AuditRecord {
    const SIZE: u64 = 24;
    fn key(&self) -> u64 {
        self.seq
    }
}

const AUDIT_CAP: usize = 8;

/// The firewall application.
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppParams, IpchainsApp, NetworkApp};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::{MemoryConfig, MemorySystem};
/// use ddtr_trace::NetworkPreset;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut app = IpchainsApp::new([DdtKind::Array, DdtKind::SllRov], &AppParams::default(), &mut mem);
/// for pkt in &NetworkPreset::NlanrTau.generate(100) {
///     app.process(pkt, &mut mem);
/// }
/// assert_eq!(app.accepted() + app.denied(), 100);
/// ```
pub struct IpchainsApp {
    combo: [DdtKind; 2],
    rules: ProfiledDdt<FirewallRule>,
    conns: ProfiledDdt<ConnEntry>,
    audit: ProfiledDdt<AuditRecord>,
    table_cap: usize,
    packets: u64,
    accepted: u64,
    denied: u64,
    conn_hits: u64,
    audit_seq: u64,
}

impl IpchainsApp {
    /// Builds the firewall with `params.firewall_rules` synthesised rules
    /// (deterministic in `params.seed`), ending in a catch-all accept.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the rule chain.
    #[must_use]
    pub fn new(combo: [DdtKind; 2], params: &AppParams, mem: &mut MemorySystem) -> Self {
        let mut rules = ProfiledDdt::new(combo[0].instantiate::<FirewallRule>(mem));
        let conns = ProfiledDdt::new(combo[1].instantiate::<ConnEntry>(mem));
        let audit = ProfiledDdt::new(DdtKind::Sll.instantiate::<AuditRecord>(mem));
        for rule in Self::synthesise_rules(params) {
            rules.insert(rule, mem);
        }
        IpchainsApp {
            combo,
            rules,
            conns,
            audit,
            table_cap: params.table_cap,
            packets: 0,
            accepted: 0,
            denied: 0,
            conn_hits: 0,
            audit_seq: 0,
        }
    }

    /// Packets accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Packets denied so far.
    #[must_use]
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Packets short-circuited by connection tracking.
    #[must_use]
    pub fn conn_hits(&self) -> u64 {
        self.conn_hits
    }

    /// Builds the rule chain: port/protocol-specific rules in seeded random
    /// order, a deny for ICMP, then a catch-all accept at the end.
    fn synthesise_rules(params: &AppParams) -> Vec<FirewallRule> {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4950_4348);
        // Well-known ports used by the trace generator, plus filler rules
        // that never match (the inactive majority of a deployed chain).
        let mut specs: Vec<(Option<Protocol>, u16, bool)> = vec![
            (Some(Protocol::Tcp), 80, true),
            (Some(Protocol::Tcp), 443, true),
            (Some(Protocol::Tcp), 25, false),
            (Some(Protocol::Udp), 53, true),
            (Some(Protocol::Tcp), 110, false),
            (Some(Protocol::Tcp), 8080, true),
            (Some(Protocol::Icmp), 0, false),
        ];
        let mut filler_port = 10_000u16;
        while specs.len() + 1 < params.firewall_rules {
            specs.push((Some(Protocol::Tcp), filler_port, false));
            filler_port += 1;
        }
        specs.truncate(params.firewall_rules.saturating_sub(1));
        specs.shuffle(&mut rng);
        let mut rules: Vec<FirewallRule> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (proto, dport, accept))| FirewallRule {
                key: i as u64,
                proto,
                dport,
                accept,
                hits: 0,
                bytes: 0,
            })
            .collect();
        rules.push(FirewallRule {
            key: rules.len() as u64,
            proto: None,
            dport: 0,
            accept: true,
            hits: 0,
            bytes: 0,
        });
        rules
    }

    /// First-match chain walk with early exit; returns the matched rule.
    fn walk_chain(&mut self, pkt: &Packet, mem: &mut MemorySystem) -> FirewallRule {
        let mut matched = None;
        self.rules.scan(mem, &mut |r| {
            if r.matches(pkt) {
                matched = Some(r.clone());
                false
            } else {
                true
            }
        });
        matched.expect("the catch-all rule always matches")
    }
}

impl NetworkApp for IpchainsApp {
    fn kind(&self) -> AppKind {
        AppKind::Ipchains
    }

    fn combo(&self) -> [DdtKind; 2] {
        self.combo
    }

    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        self.packets += 1;
        let flow = pkt.flow_key();
        // Established connections bypass the chain.
        if let Some(mut conn) = self.conns.get(flow, mem) {
            self.conn_hits += 1;
            conn.packets += 1;
            let accept = conn.accept;
            self.conns.update(flow, conn, mem);
            if accept {
                self.accepted += 1;
            } else {
                self.denied += 1;
            }
            return;
        }
        // Chain walk, counter update on the matched rule.
        let mut rule = self.walk_chain(pkt, mem);
        rule.hits += 1;
        rule.bytes += u64::from(pkt.bytes);
        let accept = rule.accept;
        self.rules.update(rule.key, rule, mem);
        if accept {
            self.accepted += 1;
        } else {
            self.denied += 1;
            self.audit_seq += 1;
            self.audit.insert(
                AuditRecord {
                    seq: self.audit_seq,
                    flow,
                },
                mem,
            );
            if self.audit.len() > AUDIT_CAP {
                self.audit.remove_nth(0, mem);
            }
        }
        // Track the connection for the fast path.
        self.conns.insert(
            ConnEntry {
                key: flow,
                accept,
                packets: 1,
            },
            mem,
        );
        if self.conns.len() > self.table_cap {
            self.conns.remove_nth(0, mem);
        }
    }

    fn slot_profiles(&self) -> Vec<SlotProfile> {
        vec![
            SlotProfile {
                name: "rule_chain".into(),
                counts: self.rules.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "conn_table".into(),
                counts: self.conns.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "audit_log".into(),
                counts: self.audit.counts(),
                dominant: false,
            },
        ]
    }

    fn packets_processed(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::{NetworkPreset, Payload};

    fn build(combo: [DdtKind; 2]) -> (MemorySystem, IpchainsApp) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = IpchainsApp::new(combo, &AppParams::default(), &mut mem);
        (mem, app)
    }

    fn pkt(src: u32, dport: u16, proto: Protocol) -> Packet {
        Packet {
            ts_us: 0,
            src,
            dst: 9,
            sport: 1024,
            dport,
            proto,
            bytes: 100,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn chain_ends_with_catch_all() {
        let rules = IpchainsApp::synthesise_rules(&AppParams::default());
        assert_eq!(rules.len(), 32);
        let last = rules.last().expect("non-empty");
        assert!(last.proto.is_none() && last.dport == 0 && last.accept);
    }

    #[test]
    fn first_match_agrees_with_reference_walk() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        let reference = IpchainsApp::synthesise_rules(&AppParams::default());
        for (dport, proto) in [
            (80, Protocol::Tcp),
            (25, Protocol::Tcp),
            (53, Protocol::Udp),
            (4444, Protocol::Tcp),
            (0, Protocol::Icmp),
        ] {
            let p = pkt(1, dport, proto);
            let got = app.walk_chain(&p, &mut mem);
            let want = reference
                .iter()
                .find(|r| r.matches(&p))
                .expect("catch-all matches");
            assert_eq!(got.key, want.key, "dport {dport} {proto:?}");
        }
    }

    #[test]
    fn icmp_is_denied_and_audited() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        app.process(&pkt(1, 0, Protocol::Icmp), &mut mem);
        assert_eq!(app.denied(), 1);
        assert_eq!(app.audit.len(), 1);
    }

    #[test]
    fn established_flows_bypass_the_chain() {
        let (mut mem, mut app) = build([DdtKind::Sll, DdtKind::Sll]);
        let p = pkt(7, 80, Protocol::Tcp);
        app.process(&p, &mut mem);
        let rule_accesses_after_first = app.rules.counts().accesses;
        for _ in 0..10 {
            app.process(&p, &mut mem);
        }
        assert_eq!(app.conn_hits(), 10);
        assert_eq!(
            app.rules.counts().accesses,
            rule_accesses_after_first,
            "no chain traffic for established flows"
        );
    }

    #[test]
    fn rule_counters_accumulate() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        // distinct sources so each packet misses conntrack
        for src in 0..5u32 {
            app.process(&pkt(src, 25, Protocol::Tcp), &mut mem);
        }
        let matched = app
            .rules
            .get(
                IpchainsApp::synthesise_rules(&AppParams::default())
                    .iter()
                    .find(|r| r.matches(&pkt(0, 25, Protocol::Tcp)))
                    .expect("smtp rule")
                    .key,
                &mut mem,
            )
            .expect("rule exists");
        assert_eq!(matched.hits, 5);
        assert_eq!(matched.bytes, 500);
    }

    #[test]
    fn conn_table_is_capped() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        for src in 0..200u32 {
            app.process(&pkt(src, 80, Protocol::Tcp), &mut mem);
        }
        assert!(app.conns.len() <= AppParams::default().table_cap + 1);
    }

    #[test]
    fn more_rules_cost_more_accesses() {
        let run = |rules: usize| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let params = AppParams {
                firewall_rules: rules,
                ..AppParams::default()
            };
            let mut app = IpchainsApp::new([DdtKind::Sll, DdtKind::Sll], &params, &mut mem);
            mem.reset_stats();
            // all-miss traffic (filler ports never match until catch-all)
            for src in 0..30u32 {
                app.process(&pkt(src, 7777, Protocol::Tcp), &mut mem);
            }
            mem.report().accesses
        };
        assert!(run(64) > run(16), "rule count must matter");
    }

    #[test]
    fn every_packet_gets_a_verdict_on_real_trace() {
        let trace = NetworkPreset::NlanrMra.generate(200);
        let (mut mem, mut app) = build([DdtKind::SllChunk, DdtKind::DllChunkRov]);
        for p in &trace {
            app.process(p, &mut mem);
        }
        assert_eq!(app.accepted() + app.denied(), 200);
        assert!(app.conn_hits() > 0, "zipf traffic must reuse flows");
    }
}
