//! `URL` — URL-based context switching, the second paper case study.
//!
//! NetBench's `url` inspects HTTP payloads and switches each request to an
//! outbound context according to the longest matching URL pattern. Its two
//! dominant DDTs are the pattern table (scanned with early exit on every
//! request) and the session table (looked up, inserted and evicted per
//! flow).

use crate::app::{NetworkApp, SlotProfile};
use crate::kind::AppKind;
use crate::params::AppParams;
use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
use ddtr_mem::MemorySystem;
use ddtr_trace::{Packet, Protocol, URL_STEMS};

/// One entry of the URL pattern table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlPattern {
    /// Pattern key (index into the host-side stem strings).
    pub key: u64,
    /// Outbound context selected when this pattern matches.
    pub ctx: u32,
    /// Pattern length in bytes (drives the modelled compare cost).
    pub len: u32,
}

impl Record for UrlPattern {
    const SIZE: u64 = 48;
    fn key(&self) -> u64 {
        self.key
    }
}

/// One tracked session (per flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// Flow key.
    pub key: u64,
    /// Context the session is pinned to.
    pub ctx: u32,
    /// Packets observed.
    pub packets: u32,
    /// Bytes observed.
    pub bytes: u64,
}

impl Record for SessionEntry {
    const SIZE: u64 = 48;
    fn key(&self) -> u64 {
        self.key
    }
}

/// Minor-slot record: per-context switch log.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SwitchLog {
    seq: u64,
    ctx: u32,
}

impl Record for SwitchLog {
    const SIZE: u64 = 16;
    fn key(&self) -> u64 {
        self.seq
    }
}

const LOG_PERIOD: u64 = 48;
const LOG_CAP: usize = 8;

/// The URL-based context-switching application.
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppParams, NetworkApp, UrlApp};
/// use ddtr_ddt::DdtKind;
/// use ddtr_mem::{MemoryConfig, MemorySystem};
/// use ddtr_trace::NetworkPreset;
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut app = UrlApp::new([DdtKind::SllRov, DdtKind::Dll], &AppParams::default(), &mut mem);
/// for pkt in &NetworkPreset::DartmouthLibrary.generate(120) {
///     app.process(pkt, &mut mem);
/// }
/// assert!(app.switches() > 0);
/// ```
pub struct UrlApp {
    combo: [DdtKind; 2],
    patterns: ProfiledDdt<UrlPattern>,
    sessions: ProfiledDdt<SessionEntry>,
    log: ProfiledDdt<SwitchLog>,
    /// Host-side pattern strings, index = pattern key.
    stems: Vec<String>,
    table_cap: usize,
    packets: u64,
    switches: u64,
    unmatched: u64,
    log_seq: u64,
}

impl UrlApp {
    /// Builds the application with `params.url_patterns` patterns: the
    /// shared [`URL_STEMS`] first, padded with never-matching patterns (the
    /// inactive rules of a real deployment).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the pattern table.
    #[must_use]
    pub fn new(combo: [DdtKind; 2], params: &AppParams, mem: &mut MemorySystem) -> Self {
        let mut patterns = ProfiledDdt::new(combo[0].instantiate::<UrlPattern>(mem));
        let sessions = ProfiledDdt::new(combo[1].instantiate::<SessionEntry>(mem));
        let log = ProfiledDdt::new(DdtKind::Sll.instantiate::<SwitchLog>(mem));
        let mut stems: Vec<String> = URL_STEMS.iter().map(|s| (*s).to_owned()).collect();
        while stems.len() < params.url_patterns {
            stems.push(format!("/inactive/pattern/{}", stems.len()));
        }
        stems.truncate(params.url_patterns.max(1));
        for (i, stem) in stems.iter().enumerate() {
            patterns.insert(
                UrlPattern {
                    key: i as u64,
                    ctx: (i % 4) as u32,
                    len: stem.len() as u32,
                },
                mem,
            );
        }
        UrlApp {
            combo,
            patterns,
            sessions,
            log,
            stems,
            table_cap: params.table_cap,
            packets: 0,
            switches: 0,
            unmatched: 0,
            log_seq: 0,
        }
    }

    /// Requests switched to a context so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Requests that matched no pattern.
    #[must_use]
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Scans the pattern table with early exit; returns the context of the
    /// first matching pattern.
    fn match_pattern(&mut self, url: &str, mem: &mut MemorySystem) -> Option<u32> {
        let stems = &self.stems;
        let mut found = None;
        self.patterns.scan(mem, &mut |p| {
            let stem = &stems[p.key as usize];
            // String compare cost: one CPU op per 8 pattern bytes.
            // (charged outside the closure via the record read itself; the
            // visitor only decides the early exit.)
            if url.starts_with(stem.as_str()) {
                found = Some(p.ctx);
                false
            } else {
                true
            }
        });
        found
    }

    /// Session bookkeeping: hit → update counters; miss → insert and evict
    /// the oldest entry beyond the cap.
    fn touch_session(&mut self, pkt: &Packet, ctx: u32, mem: &mut MemorySystem) {
        let key = pkt.flow_key();
        if let Some(mut s) = self.sessions.get(key, mem) {
            s.packets += 1;
            s.bytes += u64::from(pkt.bytes);
            if ctx != u32::MAX {
                s.ctx = ctx;
            }
            self.sessions.update(key, s, mem);
        } else {
            self.sessions.insert(
                SessionEntry {
                    key,
                    ctx: if ctx == u32::MAX { 0 } else { ctx },
                    packets: 1,
                    bytes: u64::from(pkt.bytes),
                },
                mem,
            );
            if self.sessions.len() > self.table_cap {
                self.sessions.remove_nth(0, mem);
            }
        }
    }
}

impl NetworkApp for UrlApp {
    fn kind(&self) -> AppKind {
        AppKind::Url
    }

    fn combo(&self) -> [DdtKind; 2] {
        self.combo
    }

    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem) {
        self.packets += 1;
        let mut ctx = u32::MAX;
        if let Some(url) = pkt.payload.url() {
            let url = url.to_owned();
            match self.match_pattern(&url, mem) {
                Some(c) => {
                    self.switches += 1;
                    ctx = c;
                }
                None => self.unmatched += 1,
            }
        }
        if pkt.proto == Protocol::Tcp {
            self.touch_session(pkt, ctx, mem);
        }
        if self.packets.is_multiple_of(LOG_PERIOD) {
            self.log_seq += 1;
            self.log.insert(
                SwitchLog {
                    seq: self.log_seq,
                    ctx: if ctx == u32::MAX { 0 } else { ctx },
                },
                mem,
            );
            if self.log.len() > LOG_CAP {
                self.log.remove_nth(0, mem);
            }
        }
    }

    fn slot_profiles(&self) -> Vec<SlotProfile> {
        vec![
            SlotProfile {
                name: "pattern_table".into(),
                counts: self.patterns.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "session_table".into(),
                counts: self.sessions.counts(),
                dominant: true,
            },
            SlotProfile {
                name: "switch_log".into(),
                counts: self.log.counts(),
                dominant: false,
            },
        ]
    }

    fn packets_processed(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::{NetworkPreset, Payload};

    fn build(combo: [DdtKind; 2]) -> (MemorySystem, UrlApp) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let app = UrlApp::new(combo, &AppParams::default(), &mut mem);
        (mem, app)
    }

    fn http_pkt(src: u32, url: &str) -> Packet {
        Packet {
            ts_us: 0,
            src,
            dst: 99,
            sport: 1024,
            dport: 80,
            proto: Protocol::Tcp,
            bytes: 576,
            payload: Payload::Http { url: url.into() },
        }
    }

    #[test]
    fn known_stem_matches() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        app.process(&http_pkt(1, "/index.html"), &mut mem);
        assert_eq!(app.switches(), 1);
        assert_eq!(app.unmatched(), 0);
    }

    #[test]
    fn unknown_url_is_unmatched_but_session_tracked() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        app.process(&http_pkt(1, "/zzz/none"), &mut mem);
        assert_eq!(app.unmatched(), 1);
        assert_eq!(app.sessions.len(), 1);
    }

    #[test]
    fn query_urls_match_their_stem() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        app.process(&http_pkt(1, "/search?q=42"), &mut mem);
        assert_eq!(app.switches(), 1);
    }

    #[test]
    fn sessions_are_evicted_beyond_cap() {
        let (mut mem, mut app) = build([DdtKind::Sll, DdtKind::Sll]);
        for src in 0..200u32 {
            app.process(&http_pkt(src, "/login"), &mut mem);
        }
        assert!(app.sessions.len() <= AppParams::default().table_cap + 1);
        let counts = app.sessions.counts();
        assert!(counts.removes > 0, "eviction must occur");
    }

    #[test]
    fn repeated_flow_updates_instead_of_inserting() {
        let (mut mem, mut app) = build([DdtKind::Dll, DdtKind::Dll]);
        for _ in 0..5 {
            app.process(&http_pkt(7, "/login"), &mut mem);
        }
        assert_eq!(app.sessions.len(), 1);
        let s = app.sessions.get(http_pkt(7, "/login").flow_key(), &mut mem);
        assert_eq!(s.map(|s| s.packets), Some(5));
    }

    #[test]
    fn early_exit_pattern_cost_depends_on_match_position() {
        let (mut mem, mut app) = build([DdtKind::Sll, DdtKind::Sll]);
        let cost = |app: &mut UrlApp, mem: &mut MemorySystem, url: &str| {
            let before = mem.stats().accesses();
            app.match_pattern(url, mem);
            mem.stats().accesses() - before
        };
        let first = cost(&mut app, &mut mem, URL_STEMS[0]);
        let last = cost(&mut app, &mut mem, URL_STEMS[11]);
        assert!(last > first, "deeper match costs more: {first} vs {last}");
    }

    #[test]
    fn non_tcp_packets_skip_sessions() {
        let (mut mem, mut app) = build([DdtKind::Array, DdtKind::Array]);
        let mut pkt = http_pkt(1, "/login");
        pkt.proto = Protocol::Udp;
        pkt.payload = Payload::Empty;
        app.process(&pkt, &mut mem);
        assert_eq!(app.sessions.len(), 0);
    }

    #[test]
    fn trace_drive_produces_switches_on_every_combo_sample() {
        let trace = NetworkPreset::DartmouthLibrary.generate(150);
        for combo in [
            [DdtKind::Array, DdtKind::Sll],
            [DdtKind::SllChunkRov, DdtKind::DllRov],
        ] {
            let (mut mem, mut app) = build(combo);
            for pkt in &trace {
                app.process(pkt, &mut mem);
            }
            assert!(app.switches() > 10, "combo {combo:?}");
            assert_eq!(app.packets_processed(), 150);
        }
    }

    #[test]
    fn pattern_table_size_is_configurable() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let params = AppParams {
            url_patterns: 20,
            ..AppParams::default()
        };
        let app = UrlApp::new([DdtKind::Array, DdtKind::Array], &params, &mut mem);
        assert_eq!(app.patterns.len(), 20);
    }
}
