//! Application-specific exploration parameters.

use crate::kind::AppKind;
use serde::{Deserialize, Serialize};
use std::fmt;

fn default_nat_ports() -> usize {
    64
}

/// Application parameters varied by the network-level exploration.
///
/// The paper calls these "other network parameters … application specific:
/// for example, the Radix tree size is an important parameter for the IPv4
/// routing application … the Level of Fairness used in the Deficit Round
/// Robin scheduling application and the number of rules activated in a
/// firewall application".
///
/// # Example
///
/// ```
/// use ddtr_apps::{AppKind, AppParams};
///
/// // Route is explored for two radix-table sizes, like the paper.
/// let variants = AppParams::variants_for(AppKind::Route);
/// let sizes: Vec<usize> = variants.iter().map(|p| p.route_table_size).collect();
/// assert_eq!(sizes, vec![128, 256]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppParams {
    /// Number of prefixes in the routing table (paper: 128 and 256).
    pub route_table_size: usize,
    /// Number of active firewall rules.
    pub firewall_rules: usize,
    /// DRR quantum in bytes — the "level of fairness".
    pub drr_quantum: u32,
    /// Number of entries in the URL pattern table.
    pub url_patterns: usize,
    /// Size of the NAT external port pool (extension case study).
    #[serde(default = "default_nat_ports")]
    pub nat_ports: usize,
    /// Maximum tracked sessions/connections before the oldest is evicted.
    pub table_cap: usize,
    /// Seed for the deterministic synthesis of tables and rules.
    pub seed: u64,
}

impl AppParams {
    /// The parameter variants explored per application at the network
    /// configuration level, sized to reproduce the paper's simulation
    /// counts (Route x2, IPchains x3, URL/DRR x1).
    #[must_use]
    pub fn variants_for(kind: AppKind) -> Vec<AppParams> {
        let base = AppParams::default();
        match kind {
            AppKind::Route => vec![
                AppParams {
                    route_table_size: 128,
                    ..base.clone()
                },
                AppParams {
                    route_table_size: 256,
                    ..base
                },
            ],
            AppKind::Ipchains => [16, 32, 64]
                .into_iter()
                .map(|rules| AppParams {
                    firewall_rules: rules,
                    ..base.clone()
                })
                .collect(),
            AppKind::Url | AppKind::Drr => vec![base],
            AppKind::Nat => [64, 128]
                .into_iter()
                .map(|ports| AppParams {
                    nat_ports: ports,
                    ..base.clone()
                })
                .collect(),
        }
    }

    /// A short label describing the app-specific knob of this variant.
    #[must_use]
    pub fn label(&self, kind: AppKind) -> String {
        match kind {
            AppKind::Route => format!("radix{}", self.route_table_size),
            AppKind::Ipchains => format!("rules{}", self.firewall_rules),
            AppKind::Url => format!("pat{}", self.url_patterns),
            AppKind::Drr => format!("q{}", self.drr_quantum),
            AppKind::Nat => format!("ports{}", self.nat_ports),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.route_table_size < 2 {
            return Err("routing table needs at least 2 prefixes".into());
        }
        if self.firewall_rules == 0 {
            return Err("firewall needs at least one rule".into());
        }
        if self.drr_quantum == 0 {
            return Err("DRR quantum must be non-zero".into());
        }
        if self.url_patterns == 0 {
            return Err("URL switch needs at least one pattern".into());
        }
        if self.nat_ports < 2 {
            return Err("NAT pool needs at least two ports".into());
        }
        if self.table_cap < 4 {
            return Err("session/connection cap must be at least 4".into());
        }
        Ok(())
    }
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams {
            route_table_size: 128,
            firewall_rules: 32,
            drr_quantum: 1500,
            url_patterns: 16,
            nat_ports: default_nat_ports(),
            table_cap: 48,
            seed: 0x6170_7073,
        }
    }
}

impl fmt::Display for AppParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "radix={} rules={} quantum={} patterns={} ports={} cap={}",
            self.route_table_size,
            self.firewall_rules,
            self.drr_quantum,
            self.url_patterns,
            self.nat_ports,
            self.table_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        AppParams::default().validate().expect("valid");
    }

    #[test]
    fn variant_counts_match_paper() {
        assert_eq!(AppParams::variants_for(AppKind::Route).len(), 2);
        assert_eq!(AppParams::variants_for(AppKind::Ipchains).len(), 3);
        assert_eq!(AppParams::variants_for(AppKind::Url).len(), 1);
        assert_eq!(AppParams::variants_for(AppKind::Drr).len(), 1);
        assert_eq!(AppParams::variants_for(AppKind::Nat).len(), 2);
    }

    #[test]
    fn all_variants_are_valid() {
        for kind in AppKind::EXTENDED_ALL {
            for v in AppParams::variants_for(kind) {
                v.validate().expect("variant valid");
            }
        }
    }

    #[test]
    fn params_without_nat_field_deserialise_to_default_pool() {
        let mut v = serde_json::to_value(AppParams::default()).expect("ser");
        v.as_object_mut().expect("object").remove("nat_ports");
        let p: AppParams = serde_json::from_value(v).expect("de");
        assert_eq!(p.nat_ports, 64);
    }

    #[test]
    fn labels_are_distinct_within_app() {
        for kind in AppKind::EXTENDED_ALL {
            let labels: Vec<String> = AppParams::variants_for(kind)
                .iter()
                .map(|p| p.label(kind))
                .collect();
            let mut dedup = labels.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), labels.len(), "{kind}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        let cases = [
            AppParams {
                route_table_size: 1,
                ..AppParams::default()
            },
            AppParams {
                firewall_rules: 0,
                ..AppParams::default()
            },
            AppParams {
                drr_quantum: 0,
                ..AppParams::default()
            },
            AppParams {
                table_cap: 1,
                ..AppParams::default()
            },
        ];
        for p in cases {
            assert!(p.validate().is_err(), "{p}");
        }
    }
}
