//! The common interface of the benchmark applications.

use crate::kind::AppKind;
use ddtr_ddt::{DdtKind, OpCounts};
use ddtr_mem::MemorySystem;
use ddtr_trace::Packet;
use serde::{Deserialize, Serialize};

/// Number of dominant (explored) container slots in every application.
///
/// All four paper case studies expose exactly two dominant dynamic data
/// structures, so the exploration space is `10^2 = 100` combinations per
/// application.
pub const DOMINANT_SLOTS_PER_APP: usize = 2;

/// Access profile of one container slot, as collected by the profile
/// objects attached to every candidate DDT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotProfile {
    /// Slot name (e.g. `"radix_node"`, `"rtentry"`).
    pub name: String,
    /// Operation and access counters.
    pub counts: OpCounts,
    /// Whether this slot is one of the explored (dominant) containers.
    pub dominant: bool,
}

/// A network application processing one packet at a time against simulated
/// memory.
///
/// Implementations keep their dominant containers behind
/// [`ddtr_ddt::ProfiledDdt`] wrappers so the methodology's profiling step
/// can measure per-container access shares without re-instrumenting.
pub trait NetworkApp {
    /// Which benchmark this is.
    fn kind(&self) -> AppKind;

    /// The DDT implementations currently plugged into the dominant slots.
    fn combo(&self) -> [DdtKind; DOMINANT_SLOTS_PER_APP];

    /// Processes one packet, issuing all container traffic against `mem`.
    fn process(&mut self, pkt: &Packet, mem: &mut MemorySystem);

    /// Per-slot access profiles (dominant and minor slots).
    fn slot_profiles(&self) -> Vec<SlotProfile>;

    /// Application-level sanity counter: packets processed so far.
    fn packets_processed(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AppParams;
    use ddtr_mem::MemoryConfig;
    use ddtr_trace::NetworkPreset;

    #[test]
    fn every_app_reports_two_dominant_slots() {
        let trace = NetworkPreset::DartmouthBerry.generate(40);
        for kind in AppKind::ALL {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut app = kind.instantiate(
                [DdtKind::Array, DdtKind::Array],
                &AppParams::default(),
                &mut mem,
            );
            for pkt in &trace {
                app.process(pkt, &mut mem);
            }
            let profiles = app.slot_profiles();
            let dominant = profiles.iter().filter(|p| p.dominant).count();
            assert_eq!(dominant, DOMINANT_SLOTS_PER_APP, "{kind}");
            assert!(
                profiles.len() > DOMINANT_SLOTS_PER_APP,
                "{kind} must also expose a minor slot"
            );
            assert_eq!(app.packets_processed(), 40);
        }
    }
}
