//! NetBench-style network applications over pluggable dynamic data types.
//!
//! The DATE 2006 paper evaluates its methodology on four applications from
//! the NetBench suite (Memik et al., ICCAD 2001). This crate reimplements
//! their kernels from scratch in Rust, with the *dominant* dynamic data
//! structures — the ones the methodology explores — exposed as pluggable
//! [`ddtr_ddt::Ddt`] containers:
//!
//! | [`AppKind`] | Kernel | Dominant containers |
//! |---|---|---|
//! | `Route` | IPv4 radix (Patricia) routing | radix-node store + `rtentry` table |
//! | `Url` | URL-based context switching | pattern table + session table |
//! | `Ipchains` | ordered-rule firewall | rule chain + connection-tracking table |
//! | `Drr` | deficit round robin scheduling | flow table + packet-queue store |
//! | `Nat` (*extension*) | address-translation gateway | binding table + port pool |
//!
//! `Nat` is not part of the paper's evaluation ([`AppKind::ALL`] stays at
//! the paper's four; see [`AppKind::EXTENDED_ALL`]) — it exists to
//! demonstrate the methodology's generality claim on an application the
//! authors never measured.
//!
//! Every application also owns a deliberately *minor* container (statistics
//! log) so that the profiling step has something to rule out.
//!
//! Per the paper, the original NetBench implementations used singly linked
//! lists for these structures; [`AppKind::baseline`] reproduces that
//! configuration for the headline comparisons.
//!
//! # Example
//!
//! ```
//! use ddtr_apps::{AppKind, AppParams};
//! use ddtr_ddt::DdtKind;
//! use ddtr_mem::{MemoryConfig, MemorySystem};
//! use ddtr_trace::NetworkPreset;
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let mut app = AppKind::Drr.instantiate(
//!     [DdtKind::Array, DdtKind::Dll],
//!     &AppParams::default(),
//!     &mut mem,
//! );
//! for pkt in &NetworkPreset::DartmouthBerry.generate(100) {
//!     app.process(pkt, &mut mem);
//! }
//! assert!(mem.report().accesses > 0);
//! ```

mod app;
mod drr;
mod ipchains;
mod kind;
mod nat;
mod params;
mod route;
mod url;

pub use app::{NetworkApp, SlotProfile, DOMINANT_SLOTS_PER_APP};
pub use drr::{DrrApp, FlowState, QueuedPacket};
pub use ipchains::{ConnEntry, FirewallRule, IpchainsApp, Verdict};
pub use kind::{AppKind, ParseAppKindError};
pub use nat::{NatApp, NatBinding, PortLease};
pub use params::AppParams;
pub use route::{RadixNode, RouteApp, RouteEntry};
pub use url::{SessionEntry, UrlApp, UrlPattern};
