//! Findings and their text / JSON renderings.

use std::fmt;

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (exit code 1).
    Deny,
    /// Reported but non-fatal by default; `--deny-all` promotes it.
    Warn,
}

/// One diagnostic: a rule violation or a waiver-hygiene problem.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (or `unused-waiver` / `unknown-waiver`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// Whether the finding fails the run.
    pub severity: Severity,
}

impl Finding {
    /// A deny-level finding for `rule`.
    #[must_use]
    pub fn deny(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
            severity: Severity::Deny,
        }
    }

    /// A warn-level finding for `rule`.
    #[must_use]
    pub fn warn(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Finding {
        Finding {
            severity: Severity::Warn,
            ..Finding::deny(file, line, rule, message)
        }
    }
}

impl fmt::Display for Finding {
    /// The rustc-style `file:line: rule: message` form CI logs grep for.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes a string for embedding in a JSON document (the checker is
/// dependency-free, so it renders its `--json` output by hand).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a stable machine-readable JSON document.
#[must_use]
pub fn render_json(findings: &[Finding], files_checked: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(&f.rule),
            match f.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            },
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"files_checked\": {files_checked}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let f = Finding::deny("crates/x/src/lib.rs", 7, "float-ord", "no");
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: float-ord: no");
    }

    #[test]
    fn json_escapes_and_counts() {
        let doc = render_json(&[Finding::warn("a.rs", 1, "r", "say \"hi\"\n")], 3);
        assert!(doc.contains("\\\"hi\\\"\\n"));
        assert!(doc.contains("\"files_checked\": 3"));
    }
}
