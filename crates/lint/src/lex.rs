//! The token-level lexer behind every rule.
//!
//! PR 6's front end was a per-line blanking pass: good enough for token
//! scans, but it reconstructed lexical structure from loose character
//! heuristics, and the rules this crate grew in PR 8 (guard scopes, call
//! edges, struct shape) need real tokens with positions. This module
//! lexes a whole file in one pass — raw/byte/C strings with any number
//! of `#`s spanning any number of lines, nested block comments,
//! char-literal-vs-lifetime disambiguation (including `'\''`, which the
//! old blanker mis-consumed, leaking a stray quote into rule input), doc
//! comments, raw identifiers — and hands back:
//!
//! * a [`Tok`] stream with 1-based line / 0-based column positions, and
//! * the comment trivia ([`Comment`]), which is where waivers live.
//!
//! The blanked *code view* the line-level rules still scan is rebuilt
//! from this token stream in [`crate::source`], so every rule — old and
//! new — sits on the same front end.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `cache`, `r#match`).
    Ident,
    /// Lifetime (`'static`, `'_`) — kept distinct from char literals.
    Lifetime,
    /// Numeric literal (`42`, `1.5e-3`, `0xFF`, `1_000u64`).
    Num,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\''`, `b'\n'`.
    Char,
    /// One punctuation character (`{`, `.`, `=`; never grouped).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// `Ident`/`Lifetime`/`Num`/`Punct`: the token text verbatim.
    /// `Str`/`Char`: the literal's *contents* (prefix, hashes and
    /// delimiters stripped, escapes kept raw) — what `doc-drift` reads
    /// metric names out of.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 0-based char column of the first character.
    pub col: usize,
    /// 1-based line of the last character (multi-line strings).
    pub end_line: usize,
    /// 0-based char column of the last character.
    pub end_col: usize,
}

impl Tok {
    /// Whether this token is the identifier `kw`.
    #[must_use]
    pub fn is_ident(&self, kw: &str) -> bool {
        self.kind == TokKind::Ident && self.text == kw
    }

    /// Whether this token is the punctuation character `p`.
    #[must_use]
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(p)
    }
}

/// One comment, with its marker (`//`, `///`, `/*…*/`) kept.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text; block comments keep embedded newlines.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`) — never a waiver.
    pub doc: bool,
    /// Block comment (`/* … */`).
    pub block: bool,
}

/// Lexer output: the token stream plus comment trivia.
#[derive(Debug)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn cur(&self) -> Option<char> {
        self.peek(0)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.cur()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Position of the char the cursor sits on.
    fn pos(&self) -> (usize, usize) {
        (self.line, self.col)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes a whole file. Unterminated literals and comments end at EOF
/// without error — the lexer must accept any bytes CI throws at it.
#[must_use]
pub fn lex(text: &str) -> Lexed {
    let mut cur = Cursor {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
        col: 0,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.cur() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut comments);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut comments);
            continue;
        }
        if let Some(prefix) = string_prefix(&cur) {
            lex_string(&mut cur, prefix, &mut tokens);
            continue;
        }
        if c == 'b' && cur.peek(1) == Some('\'') {
            let (line, col) = cur.pos();
            cur.bump(); // the b prefix
            lex_quote(&mut cur, (line, col), &mut tokens);
            continue;
        }
        if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            lex_ident(&mut cur, &mut tokens); // raw identifier r#type
            continue;
        }
        if is_ident_start(c) {
            lex_ident(&mut cur, &mut tokens);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut tokens);
            continue;
        }
        if c == '\'' {
            let start = cur.pos();
            lex_quote(&mut cur, start, &mut tokens);
            continue;
        }
        // Any other char is one punctuation token.
        let (line, col) = cur.pos();
        cur.bump();
        tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
            end_line: line,
            end_col: col,
        });
    }

    Lexed { tokens, comments }
}

fn lex_line_comment(cur: &mut Cursor, comments: &mut Vec<Comment>) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.cur() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `//` and `////…` are plain comments; `///` and `//!` are docs.
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    comments.push(Comment {
        text,
        line,
        doc,
        block: false,
    });
}

fn lex_block_comment(cur: &mut Cursor, comments: &mut Vec<Comment>) {
    let line = cur.line;
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.cur() {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
        || text.starts_with("/*!");
    comments.push(Comment {
        text,
        line,
        doc,
        block: true,
    });
}

/// The string prefix at the cursor: `(prefix chars consumed, hashes,
/// raw)` — `Some` only when the cursor starts a string literal
/// (`"`, `r"`, `r#"`, `b"`, `br#"`, `c"`, `cr"`, …).
struct StrPrefix {
    /// Chars before the opening quote (`r#` in `r#"…"#` is 2).
    lead: usize,
    /// Number of `#`s (raw strings).
    hashes: usize,
    /// Raw string: escapes are inert, closed by `"` + hashes.
    raw: bool,
}

fn string_prefix(cur: &Cursor) -> Option<StrPrefix> {
    let c = cur.cur()?;
    if c == '"' {
        return Some(StrPrefix {
            lead: 0,
            hashes: 0,
            raw: false,
        });
    }
    if !matches!(c, 'r' | 'b' | 'c') {
        return None;
    }
    // Possible prefixes: r, b, c, br, cr (a leading b/c may be followed
    // by r). Anything longer is an identifier.
    let mut j = 1;
    let mut raw = c == 'r';
    if (c == 'b' || c == 'c') && cur.peek(1) == Some('r') {
        j = 2;
        raw = true;
    }
    let mut hashes = 0;
    if raw {
        while cur.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
    }
    (cur.peek(j + hashes) == Some('"')).then_some(StrPrefix {
        lead: j + hashes,
        hashes,
        raw,
    })
}

fn lex_string(cur: &mut Cursor, prefix: StrPrefix, tokens: &mut Vec<Tok>) {
    let (line, col) = cur.pos();
    for _ in 0..=prefix.lead {
        cur.bump(); // prefix chars and the opening quote
    }
    let mut content = String::new();
    let (mut end_line, mut end_col) = (line, col);
    while let Some(c) = cur.cur() {
        if !prefix.raw && c == '\\' {
            (end_line, end_col) = cur.pos();
            content.push(c);
            cur.bump();
            if let Some(e) = cur.cur() {
                (end_line, end_col) = cur.pos();
                content.push(e);
                cur.bump();
            }
            continue;
        }
        if c == '"' {
            let closed = !prefix.raw || (0..prefix.hashes).all(|k| cur.peek(1 + k) == Some('#'));
            if closed {
                (end_line, end_col) = cur.pos();
                cur.bump();
                for _ in 0..prefix.hashes {
                    (end_line, end_col) = cur.pos();
                    cur.bump();
                }
                break;
            }
        }
        (end_line, end_col) = cur.pos();
        content.push(c);
        cur.bump();
    }
    tokens.push(Tok {
        kind: TokKind::Str,
        text: content,
        line,
        col,
        end_line,
        end_col,
    });
}

/// Lexes from a `'` — a char literal or a lifetime. `start` is the
/// token's first char (the `b` prefix for byte chars).
fn lex_quote(cur: &mut Cursor, start: (usize, usize), tokens: &mut Vec<Tok>) {
    let (line, col) = start;
    let mut end = cur.pos();
    cur.bump(); // the opening quote
    let mut content = String::new();
    match cur.cur() {
        Some('\\') => {
            // Escaped char literal: consume `\` + escape body + `'`.
            content.push('\\');
            end = cur.pos();
            cur.bump();
            if let Some(e) = cur.cur() {
                content.push(e);
                end = cur.pos();
                cur.bump();
                if e == 'u' && cur.cur() == Some('{') {
                    while let Some(c) = cur.cur() {
                        content.push(c);
                        end = cur.pos();
                        cur.bump();
                        if c == '}' {
                            break;
                        }
                    }
                } else if e == 'x' {
                    for _ in 0..2 {
                        if cur.cur().is_some_and(|c| c.is_ascii_hexdigit()) {
                            content.push(cur.cur().unwrap_or_default());
                            end = cur.pos();
                            cur.bump();
                        }
                    }
                }
            }
            if cur.cur() == Some('\'') {
                end = cur.pos();
                cur.bump();
            }
            tokens.push(Tok {
                kind: TokKind::Char,
                text: content,
                line,
                col,
                end_line: end.0,
                end_col: end.1,
            });
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            // `'x'` is a char literal, `'static` is a lifetime: consume
            // the ident run and look for a closing quote.
            while let Some(c) = cur.cur() {
                if !is_ident_cont(c) {
                    break;
                }
                content.push(c);
                end = cur.pos();
                cur.bump();
            }
            if cur.cur() == Some('\'') {
                end = cur.pos();
                cur.bump();
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: content,
                    line,
                    col,
                    end_line: end.0,
                    end_col: end.1,
                });
            } else {
                tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: format!("'{content}"),
                    line,
                    col,
                    end_line: end.0,
                    end_col: end.1,
                });
            }
        }
        Some(c) => {
            // `'('`, `' '`, `'♥'` — one char then the closing quote.
            content.push(c);
            cur.bump();
            if cur.cur() == Some('\'') {
                end = cur.pos();
                cur.bump();
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: content,
                    line,
                    col,
                    end_line: end.0,
                    end_col: end.1,
                });
            } else {
                // Stray quote (invalid source) — keep it as punctuation
                // and re-lex from the consumed char's successor.
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line,
                    col,
                    end_line: line,
                    end_col: col,
                });
            }
        }
        None => tokens.push(Tok {
            kind: TokKind::Punct,
            text: "'".to_string(),
            line,
            col,
            end_line: line,
            end_col: col,
        }),
    }
}

fn lex_ident(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let (line, col) = cur.pos();
    let mut end = cur.pos();
    let mut text = String::new();
    if cur.cur() == Some('r') && cur.peek(1) == Some('#') {
        text.push_str("r#");
        cur.bump();
        cur.bump();
    }
    while let Some(c) = cur.cur() {
        if !is_ident_cont(c) {
            break;
        }
        text.push(c);
        end = cur.pos();
        cur.bump();
    }
    tokens.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
        end_line: end.0,
        end_col: end.1,
    });
}

fn lex_number(cur: &mut Cursor, tokens: &mut Vec<Tok>) {
    let (line, col) = cur.pos();
    let mut end = cur.pos();
    let mut text = String::new();
    let mut last = '0';
    while let Some(c) = cur.cur() {
        let take = is_ident_cont(c)
            || (c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.'))
            || ((c == '+' || c == '-')
                && matches!(last, 'e' | 'E')
                && text.starts_with(|d: char| d.is_ascii_digit())
                && !text.starts_with("0x"));
        if !take {
            break;
        }
        last = c;
        text.push(c);
        end = cur.pos();
        cur.bump();
    }
    tokens.push(Tok {
        kind: TokKind::Num,
        text,
        line,
        col,
        end_line: end.0,
        end_col: end.1,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x_1 = 42.5e-3 + 0xFF;");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x_1".into()));
        assert_eq!(toks[3], (TokKind::Num, "42.5e-3".into()));
        assert_eq!(toks[5], (TokKind::Num, "0xFF".into()));
    }

    #[test]
    fn ranges_do_not_glue_into_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert_eq!(toks[3], (TokKind::Num, "0".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Punct, ".".into()));
        assert_eq!(toks[6], (TokKind::Num, "10".into()));
    }

    #[test]
    fn string_flavours_capture_contents() {
        let toks = kinds(r##"("plain", r#"raw "q" inside"#, b"bytes", c"cstr")"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["plain", r#"raw "q" inside"#, "bytes", "cstr"]);
    }

    #[test]
    fn multi_line_raw_strings_span() {
        let src = "let q = r#\"line one\n\"quoted\" two\"#; done";
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.line, 1);
        assert_eq!(s.end_line, 2);
        assert!(s.text.contains("\"quoted\" two"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks =
            kinds("let c: char = 'x'; let s: &'static str = \"\"; let q = '\\''; 'a: loop {}");
        assert!(toks.contains(&(TokKind::Char, "x".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
        assert!(toks.contains(&(TokKind::Char, "\\'".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
    }

    #[test]
    fn nested_block_comments_and_docs() {
        let src = "/* a /* b */ c */ fn x() {} /// doc\n//! inner\n// plain";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert_eq!(lexed.comments.len(), 4);
        assert!(lexed.comments[0].block);
        assert!(!lexed.comments[0].doc);
        assert!(lexed.comments[1].doc);
        assert!(lexed.comments[2].doc);
        assert!(!lexed.comments[3].doc);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#type".into())));
    }

    #[test]
    fn byte_char_literals() {
        let toks = kinds("let b = b'\\n'; let c = b'x';");
        assert!(toks.contains(&(TokKind::Char, "\\n".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
    }
}
