//! Source loading and lexical preprocessing.
//!
//! Every rule works on a [`SourceFile`]: the raw lines of one `.rs` file
//! plus a *code view* of the same lines in which comment text and the
//! contents of string/char literals are blanked out. Rules match tokens
//! against the code view, so `partial_cmp` inside a doc comment or a
//! string constant can never produce a finding — which is also what lets
//! this crate's own rule sources pass the rules they implement.
//!
//! The preprocessing is deliberately lexical (no `syn`, no full parser),
//! mirroring the hand-written vendored serde derive: it tracks line
//! comments, nested block comments, plain/raw/byte string literals and
//! char-vs-lifetime quotes, which is enough to make token scans reliable
//! on rustfmt-formatted sources.

use std::path::Path;

/// One waiver comment: `// ddtr-lint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// 1-based line of the waiver comment itself.
    pub line: usize,
    /// 1-based line the waiver applies to: its own line when the comment
    /// trails code, otherwise the next line carrying code.
    pub applies_to: usize,
    /// Whether a non-empty justification follows the `allow(...)`.
    pub has_reason: bool,
}

/// One preprocessed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub path: String,
    /// The file's lines, verbatim.
    pub raw: Vec<String>,
    /// The lines with comments and literal contents blanked (quote
    /// delimiters are kept so token boundaries survive).
    pub code: Vec<String>,
    /// Per line: whether it falls inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Waiver comments, in line order.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Loads and preprocesses a file from disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be read.
    pub fn load(path: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_source(rel, &text))
    }

    /// Preprocesses in-memory source text under a synthetic path — the
    /// constructor the fixture tests use to place snippets into any
    /// rule's file scope.
    #[must_use]
    pub fn from_source(rel: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code = strip_comments_and_literals(&raw);
        let in_test = mark_cfg_test(&code);
        let waivers = collect_waivers(&raw, &code);
        SourceFile {
            path: rel.to_string(),
            raw,
            code,
            in_test,
            waivers,
        }
    }

    /// The code view of a 1-based line (empty for out-of-range lines).
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        self.code.get(line - 1).map_or("", String::as_str)
    }

    /// Whether a 1-based line is inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Lexer state carried across lines.
enum State {
    Code,
    /// Nested block comment at the given depth.
    Block(usize),
    /// Plain (escaped) string literal.
    Str,
    /// Raw string literal terminated by `"` plus this many `#`s.
    RawStr(usize),
}

/// Blanks comments and literal contents, preserving delimiters and line
/// lengths so column-free token scans stay honest.
fn strip_comments_and_literals(raw: &[String]) -> Vec<String> {
    let mut state = State::Code;
    let mut out = Vec::with_capacity(raw.len());
    for line in raw {
        let bytes: Vec<char> = line.chars().collect();
        let mut cooked = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        cooked.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        cooked.push_str("  ");
                        i += 2;
                    } else {
                        cooked.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' {
                        cooked.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        state = State::Code;
                        cooked.push('"');
                        i += 1;
                    } else {
                        cooked.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"' && has_hashes(&bytes, i + 1, hashes) {
                        state = State::Code;
                        cooked.push('"');
                        for _ in 0..hashes {
                            cooked.push(' ');
                        }
                        i += 1 + hashes;
                    } else {
                        cooked.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: blank the rest of the line.
                        break;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        cooked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    // Raw / byte-raw string openers: r"", r#""#, br"", ...
                    if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        if c == 'r' || j > i + 1 {
                            let mut hashes = 0;
                            while bytes.get(j + hashes) == Some(&'#') {
                                hashes += 1;
                            }
                            if bytes.get(j + hashes) == Some(&'"') {
                                for _ in i..=(j + hashes) {
                                    cooked.push(' ');
                                }
                                cooked.pop();
                                cooked.push('"');
                                state = State::RawStr(hashes);
                                i = j + hashes + 1;
                                continue;
                            }
                        }
                    }
                    if c == '"' {
                        // Plain or byte string literal.
                        state = State::Str;
                        cooked.push('"');
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal vs lifetime: 'x' / '\n' are
                        // literals, 'static is a lifetime.
                        if bytes.get(i + 1) == Some(&'\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(bytes.len() - 1) {
                                cooked.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                        if bytes.get(i + 2) == Some(&'\'') {
                            cooked.push_str("   ");
                            i += 3;
                            continue;
                        }
                        cooked.push('\'');
                        i += 1;
                        continue;
                    }
                    cooked.push(c);
                    i += 1;
                }
            }
        }
        // A line comment inside State::Code breaks out early; everything
        // before the `//` is already in `cooked`.
        out.push(cooked);
    }
    out
}

fn has_hashes(bytes: &[char], from: usize, count: usize) -> bool {
    (0..count).all(|k| bytes.get(from + k) == Some(&'#'))
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Marks every line belonging to a `#[cfg(test)]` item (in practice: the
/// `mod tests` block) so boundary rules can skip test-only panics.
fn mark_cfg_test(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the annotated item; a `mod x;`
            // (no body in this file) has none before the `;`.
            let mut depth = 0usize;
            let mut opened = false;
            'item: for (j, line) in code.iter().enumerate().skip(i) {
                for c in line.chars() {
                    match c {
                        ';' if !opened => break 'item,
                        '{' => {
                            opened = true;
                            depth += 1;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                flags[i..=j].iter_mut().for_each(|f| *f = true);
                                i = j;
                                break 'item;
                            }
                        }
                        _ => {}
                    }
                }
                flags[j] = opened;
            }
        }
        i += 1;
    }
    flags
}

/// Parses `ddtr-lint: allow(<rule>)` waiver comments out of the raw lines.
///
/// Only real `//` line comments count: the comment is located through the
/// code view (which truncates at `//` but blanks string contents without
/// truncating), so a waiver-shaped string literal is never a waiver, and
/// `///` / `//!` doc comments are skipped so documentation can show the
/// syntax without waiving anything.
fn collect_waivers(raw: &[String], code: &[String]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let code_chars = code.get(idx).map_or(0, |c| c.chars().count());
        if code_chars >= line.chars().count() {
            continue; // no line comment on this line
        }
        let comment: String = line.chars().skip(code_chars).collect();
        let comment = comment.as_str();
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(at) = comment.find("ddtr-lint: allow(") else {
            continue;
        };
        let rest = &comment[at + "ddtr-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':'])
            .trim();
        // A waiver trailing code covers its own line; a standalone waiver
        // comment covers the next line that carries code.
        let own_code = code.get(idx).map_or("", String::as_str);
        let applies_to = if own_code.trim().is_empty() {
            (idx + 1..code.len())
                .find(|&j| !code[j].trim().is_empty())
                .map_or(idx + 1, |j| j + 1)
        } else {
            idx + 1
        };
        waivers.push(Waiver {
            rule,
            line: idx + 1,
            applies_to,
            has_reason: !reason.is_empty(),
        });
    }
    waivers
}

/// Whether `code[pos..]` starts with `token` at an identifier boundary.
/// For tokens beginning with an identifier char, the preceding char must
/// not extend an identifier (`debug_assert!` is not `assert!`); tokens
/// beginning with punctuation (`.unwrap()`) match anywhere.
#[must_use]
pub fn token_at(code: &str, pos: usize, token: &str) -> bool {
    if !code[pos..].starts_with(token) {
        return false;
    }
    let ident_start = token
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    !ident_start
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// All identifier-boundary occurrences of `token` in `code`.
#[must_use]
pub fn find_tokens(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let pos = from + at;
        if token_at(code, pos, token) {
            out.push(pos);
        }
        from = pos + token.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = \"partial_cmp\"; // partial_cmp here\nlet b = 1; /* partial_cmp */ let c = 2;\n",
        );
        assert!(!f.code[0].contains("partial_cmp"));
        assert!(f.code[0].contains("let a"));
        assert!(!f.code[1].contains("partial_cmp"));
        assert!(f.code[1].contains("let c"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = r#\"unwrap() \"quoted\" inside\"#;\nlet c = '\\n'; let l: &'static str = \"x\";\n",
        );
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[1].contains("'static"));
        assert!(!f.code[1].contains("\\n"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f =
            SourceFile::from_source("x.rs", "/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.code[0].contains("let x"));
        assert!(!f.code[0].contains("inner"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn waivers_bind_to_their_line_or_the_next_code_line() {
        let src = "let a = 1; // ddtr-lint: allow(float-ord) — trailing\n// ddtr-lint: allow(det-iter) — standalone\n\nlet b = 2;\n";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].applies_to, 1);
        assert!(f.waivers[0].has_reason);
        assert_eq!(f.waivers[1].applies_to, 4);
    }

    #[test]
    fn token_boundaries_reject_identifier_prefixes() {
        assert!(token_at("assert!(x)", 0, "assert!"));
        let line = "debug_assert!(x)";
        let pos = line.find("assert!").unwrap();
        assert!(!token_at(line, pos, "assert!"));
        assert_eq!(find_tokens("a.unwrap() b_unwrap()", ".unwrap()").len(), 1);
    }
}
