//! Source loading and lexical preprocessing.
//!
//! Every rule works on a [`SourceFile`]: the raw lines of one `.rs` file
//! plus the [`crate::lex`] token stream, the [`crate::scope`] item tree,
//! and a *code view* of the same lines in which comment text and the
//! contents of string/char literals are blanked out. Rules match tokens
//! against the code view (or walk the token stream directly), so
//! `partial_cmp` inside a doc comment or a string constant can never
//! produce a finding — which is also what lets this crate's own rule
//! sources pass the rules they implement.
//!
//! Since PR 8 the preprocessing is a real single-pass lexer rather than
//! a per-line blanking state machine: raw strings spanning lines, nested
//! block comments, `'\''` char literals and doc comments all tokenize
//! exactly, the code view is *rebuilt from the token stream* (so the two
//! can never disagree), waivers are read from comment trivia, and
//! `#[cfg(test)]` regions come from the item parser instead of a brace
//! counter over text.

use crate::lex::{self, Comment, Lexed, Tok, TokKind};
use crate::scope::FileScope;
use std::path::Path;

/// One waiver comment: `// ddtr-lint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// 1-based line of the waiver comment itself.
    pub line: usize,
    /// 1-based line the waiver applies to: its own line when the comment
    /// trails code, otherwise the next line carrying code.
    pub applies_to: usize,
    /// Whether a non-empty justification follows the `allow(...)`.
    pub has_reason: bool,
}

/// One preprocessed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub path: String,
    /// The file's lines, verbatim.
    pub raw: Vec<String>,
    /// The lines with comments and literal contents blanked (quote
    /// delimiters are kept so token boundaries survive). Rebuilt from
    /// the token stream.
    pub code: Vec<String>,
    /// Per line: whether it falls inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Waiver comments, in line order.
    pub waivers: Vec<Waiver>,
    /// The token stream.
    pub tokens: Vec<Tok>,
    /// Comment trivia, in source order.
    pub comments: Vec<Comment>,
    /// Parsed items (functions, types, impls, mods).
    pub scope: FileScope,
}

impl SourceFile {
    /// Loads and preprocesses a file from disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be read.
    pub fn load(path: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_source(rel, &text))
    }

    /// Preprocesses in-memory source text under a synthetic path — the
    /// constructor the fixture tests use to place snippets into any
    /// rule's file scope.
    #[must_use]
    pub fn from_source(rel: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let Lexed { tokens, comments } = lex::lex(text);
        let scope = FileScope::parse(&tokens);
        let code = code_view(&raw, &tokens);
        let in_test = mark_cfg_test(raw.len(), &scope);
        let waivers = collect_waivers(&comments, &code);
        SourceFile {
            path: rel.to_string(),
            raw,
            code,
            in_test,
            waivers,
            tokens,
            comments,
            scope,
        }
    }

    /// The code view of a 1-based line (empty for out-of-range lines).
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        self.code.get(line - 1).map_or("", String::as_str)
    }

    /// Whether a 1-based line is inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Rebuilds the blanked per-line code view from the token stream: every
/// non-literal token is written back at its exact column; string
/// literals keep their opening and closing `"` (token boundaries
/// survive); char literals and comments blank entirely.
fn code_view(raw: &[String], tokens: &[Tok]) -> Vec<String> {
    let mut canvas: Vec<Vec<char>> = raw.iter().map(|l| vec![' '; l.chars().count()]).collect();
    let mut put = |line: usize, col: usize, c: char| {
        if let Some(row) = canvas.get_mut(line - 1) {
            if let Some(slot) = row.get_mut(col) {
                *slot = c;
            }
        }
    };
    for tok in tokens {
        match tok.kind {
            TokKind::Str => {
                put(tok.line, tok.col, '"');
                put(tok.end_line, tok.end_col, '"');
            }
            TokKind::Char => {}
            _ => {
                for (k, c) in tok.text.chars().enumerate() {
                    put(tok.line, tok.col + k, c);
                }
            }
        }
    }
    canvas
        .into_iter()
        .map(|row| {
            let mut s: String = row.into_iter().collect();
            s.truncate(s.trim_end().len());
            s
        })
        .collect()
}

/// Marks every line belonging to a `#[cfg(test)]` (or `#[test]`) item,
/// from its first attribute line to its closing brace.
fn mark_cfg_test(n_lines: usize, scope: &FileScope) -> Vec<bool> {
    let mut flags = vec![false; n_lines];
    for item in &scope.items {
        if item.is_test {
            let from = item.start_line.saturating_sub(1);
            let to = item.end_line.min(n_lines);
            flags[from..to].iter_mut().for_each(|f| *f = true);
        }
    }
    flags
}

/// Parses `ddtr-lint: allow(<rule>)` waivers out of the comment trivia.
///
/// Only real `//` line comments count: a waiver-shaped string literal is
/// a string, not a comment, and `///` / `//!` doc comments are skipped
/// so documentation can show the syntax without waiving anything.
fn collect_waivers(comments: &[Comment], code: &[String]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for comment in comments {
        if comment.doc || comment.block {
            continue;
        }
        let Some(at) = comment.text.find("ddtr-lint: allow(") else {
            continue;
        };
        let rest = &comment.text[at + "ddtr-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':'])
            .trim();
        // A waiver trailing code covers its own line; a standalone waiver
        // comment covers the next line that carries code.
        let idx = comment.line - 1;
        let own_code = code.get(idx).map_or("", String::as_str);
        let applies_to = if own_code.trim().is_empty() {
            (idx + 1..code.len())
                .find(|&j| !code[j].trim().is_empty())
                .map_or(idx + 1, |j| j + 1)
        } else {
            idx + 1
        };
        waivers.push(Waiver {
            rule,
            line: comment.line,
            applies_to,
            has_reason: !reason.is_empty(),
        });
    }
    waivers
}

/// Whether `code[pos..]` starts with `token` at an identifier boundary.
/// For tokens beginning with an identifier char, the preceding char must
/// not extend an identifier (`debug_assert!` is not `assert!`); tokens
/// beginning with punctuation (`.unwrap()`) match anywhere.
#[must_use]
pub fn token_at(code: &str, pos: usize, token: &str) -> bool {
    if !code[pos..].starts_with(token) {
        return false;
    }
    let ident_start = token
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    !ident_start
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// All identifier-boundary occurrences of `token` in `code`.
#[must_use]
pub fn find_tokens(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let pos = from + at;
        if token_at(code, pos, token) {
            out.push(pos);
        }
        from = pos + token.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = \"partial_cmp\"; // partial_cmp here\nlet b = 1; /* partial_cmp */ let c = 2;\n",
        );
        assert!(!f.code[0].contains("partial_cmp"));
        assert!(f.code[0].contains("let a"));
        assert!(!f.code[1].contains("partial_cmp"));
        assert!(f.code[1].contains("let c"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = r#\"unwrap() \"quoted\" inside\"#;\nlet c = '\\n'; let l: &'static str = \"x\";\n",
        );
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[1].contains("'static"));
        assert!(!f.code[1].contains("\\n"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f =
            SourceFile::from_source("x.rs", "/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.code[0].contains("let x"));
        assert!(!f.code[0].contains("inner"));
    }

    #[test]
    fn multi_line_raw_strings_stay_blank_in_the_code_view() {
        let src = "let q = r##\"first\n.unwrap() \"# still inside\nreal end\"##;\nx.iter();\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!f.code.join("\n").contains(".unwrap()"));
        assert!(f.code[3].contains("x.iter()"));
    }

    #[test]
    fn escaped_quote_char_literal_leaves_no_stray_quote() {
        // The old line blanker consumed `'\''` short by one char and
        // leaked a stray `'` into the code view.
        let f = SourceFile::from_source("x.rs", "let c = '\\''; let after = 1;\n");
        assert!(!f.code[0].contains('\''), "{:?}", f.code[0]);
        assert!(f.code[0].contains("let after"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn waivers_bind_to_their_line_or_the_next_code_line() {
        let src = "let a = 1; // ddtr-lint: allow(float-ord) — trailing\n// ddtr-lint: allow(det-iter) — standalone\n\nlet b = 2;\n";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].applies_to, 1);
        assert!(f.waivers[0].has_reason);
        assert_eq!(f.waivers[1].applies_to, 4);
    }

    #[test]
    fn waivers_in_strings_and_doc_comments_do_not_count() {
        let src = "let s = \"// ddtr-lint: allow(float-ord) — not real\";\n/// // ddtr-lint: allow(det-iter) — docs showing syntax\nfn f() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.waivers.is_empty(), "{:?}", f.waivers);
    }

    #[test]
    fn token_boundaries_reject_identifier_prefixes() {
        assert!(token_at("assert!(x)", 0, "assert!"));
        let line = "debug_assert!(x)";
        let pos = line.find("assert!").unwrap();
        assert!(!token_at(line, pos, "assert!"));
        assert_eq!(find_tokens("a.unwrap() b_unwrap()", ".unwrap()").len(), 1);
    }
}
