//! `ddtr-lint` — run the workspace invariant rules.
//!
//! ```text
//! ddtr-lint [--root <dir>] [--json] [--deny-all] [--list]
//! ```
//!
//! * `--list`      print the rule catalog (name + one-line description) and exit
//! * `--json`      machine-readable findings instead of rustc-style lines
//! * `--deny-all`  also fail on warn-level findings (waiver hygiene) — CI mode
//! * `--root`      workspace root (default: walk up from the current directory)
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use ddtr_lint::{all_rules, diag, find_workspace_root, run, Severity, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny_all: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--deny-all" => args.deny_all = true,
            "--list" => args.list = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err("usage: ddtr-lint [--root <dir>] [--json] [--deny-all] [--list]".into())
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        // The catalog prints from the same registry the checker runs, so
        // this list (and the CI log that shows it) cannot drift from the
        // implementation.
        for rule in all_rules() {
            println!("{:20} {}", rule.name(), rule.description());
        }
        println!(
            "{:20} a waiver names a rule `ddtr-lint --list` does not know",
            "unknown-waiver"
        );
        println!(
            "{:20} a waiver suppresses nothing and should be removed",
            "unused-waiver"
        );
        println!(
            "{:20} a waiver carries no justification after `allow(..)`",
            "bare-waiver"
        );
        return ExitCode::SUCCESS;
    }

    let start = args
        .root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_workspace_root(&start) else {
        eprintln!(
            "ddtr-lint: no workspace root (Cargo.toml with [workspace]) at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ddtr-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = run(&ws);

    if args.json {
        print!(
            "{}",
            diag::render_json(&report.findings, report.files_checked)
        );
    } else {
        for finding in &report.findings {
            let tag = match finding.severity {
                Severity::Deny => "",
                Severity::Warn => " (warn)",
            };
            println!("{finding}{tag}");
        }
        eprintln!(
            "ddtr-lint: {} file(s), {} finding(s), {} waiver(s) honoured",
            report.files_checked,
            report.findings.len(),
            report.waivers_used
        );
    }

    if report.failed(args.deny_all) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
