//! `no-panic-boundary`: structured errors, never panics, on the service
//! boundary.
//!
//! The serve protocol contract (docs/PROTOCOL.md) is that every failure a
//! client can provoke comes back as a structured `Error` event — a panic
//! in request handling tears down the connection (or, under
//! `std::thread::scope`, the whole server) and turns one bad request into
//! a denial of service for every other client of the resident session.
//! The boundary is `crates/serve/src/*` plus the shared request→result
//! path `crates/core/src/dispatch.rs`, plus `crates/obs/src/*`: the
//! observability layer records from every exploration thread, so a panic
//! there tears down whatever was being observed — instrumentation must
//! never be the thing that crashes the run. `crates/engine/src/store/*`
//! is in scope too: the pile store's verify-on-read contract says
//! untrusted on-disk bytes surface as structured corruption errors,
//! never as panics.
//!
//! Banned: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, the non-debug `assert*!` family, and literal slice
//! indexing `x[0]` (use `.get(0)`). `#[cfg(test)]` items are exempt —
//! tests *should* unwrap. `debug_assert*!` is allowed (compiled out of
//! release servers).

use super::{in_scope, Rule};
use crate::diag::Finding;
use crate::source::find_tokens;
use crate::Workspace;

/// See the module docs. The boundary file set lives in [`super::SCOPES`].
pub struct NoPanicBoundary;

const BANNED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "convert to a structured error (`unwrap_or_else`, `ok_or`, `?`)",
    ),
    (
        ".expect(",
        "convert to a structured error or a poison-tolerant lock",
    ),
    ("panic!", "return a structured `Error` event instead"),
    (
        "unreachable!",
        "make the match arm return a structured error",
    ),
    ("todo!", "boundary code cannot ship holes"),
    ("unimplemented!", "boundary code cannot ship holes"),
    (
        "assert!(",
        "use `debug_assert!` or return a structured error",
    ),
    (
        "assert_eq!(",
        "use `debug_assert_eq!` or return a structured error",
    ),
    (
        "assert_ne!(",
        "use `debug_assert_ne!` or return a structured error",
    ),
];

impl Rule for NoPanicBoundary {
    fn name(&self) -> &'static str {
        "no-panic-boundary"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic/assert/x[i] in serve, obs, engine::store and core::dispatch"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| in_scope(self.name(), &f.path)) {
            for (idx, code) in file.code.iter().enumerate() {
                if file.is_test_line(idx + 1) {
                    continue;
                }
                for &(token, hint) in BANNED {
                    if !find_tokens(code, token).is_empty() {
                        out.push(Finding::deny(
                            &file.path,
                            idx + 1,
                            self.name(),
                            format!(
                                "`{}` can panic across the serve boundary and kill the \
                                 resident session; {hint}",
                                token.trim_matches(['.', '(', ')']),
                            ),
                        ));
                    }
                }
                if let Some(snippet) = literal_index(code) {
                    out.push(Finding::deny(
                        &file.path,
                        idx + 1,
                        self.name(),
                        format!(
                            "literal slice index `{snippet}` can panic across the serve \
                             boundary; use `.get(..)` and handle `None`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Finds a direct literal index expression `ident[3]` / `)[0]` — the
/// panicking pattern a `.get()` should replace. Slice *patterns*
/// (`[name] => ...`) and attributes (`#[cfg]`) never match because the
/// char before `[` must close a value expression.
fn literal_index(code: &str) -> Option<String> {
    let bytes: Vec<char> = code.chars().collect();
    for (i, &c) in bytes.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > i + 1 && bytes.get(j) == Some(&']') {
            return Some(bytes[i - 1..=j].iter().collect());
        }
    }
    None
}
