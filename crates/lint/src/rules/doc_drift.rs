//! `doc-drift`: shipped docs and code name the same things.
//!
//! Three catalogs in this repo are contracts, not prose: the metric/span
//! name tables in `docs/OBSERVABILITY.md` (dashboards and the
//! Prometheus exposition key on them), the request/event schema in
//! `docs/PROTOCOL.md` (clients are written against it), and the
//! subcommand reference table in `README.md` (the CLI's front door).
//! Each decays silently: renaming a metric or adding a subcommand
//! compiles clean and leaves the docs wrong. This rule cross-checks all
//! three against the source of truth in code:
//!
//! * **metrics/spans** — every name registered in scoped code (a string
//!   literal shaped `engine.…`/`serve.…`/`core.…`: ≥ 2 lowercase
//!   dot-separated segments) must be cataloged in
//!   `docs/OBSERVABILITY.md`, and every cataloged name must still be
//!   registered — both ways. The catalog may brace-expand families:
//!   `` `serve.request.{ping,stats}` `` pins both names.
//! * **protocol** — every `RequestBody`/`Event` variant in
//!   `crates/serve/src/protocol.rs` must appear (as a word) in
//!   `docs/PROTOCOL.md`.
//! * **CLI** — the string arms of `main.rs`'s `match cmd` dispatch and
//!   the rows of README's subcommand reference table (first word of the
//!   first backticked cell, under the header row containing
//!   "subcommand") must agree — both ways.
//!
//! Test code is exempt (bench/test helpers name throwaway metrics), and
//! each sub-check is skipped when its document is absent, so fixture
//! workspaces without docs stay silent.

use super::{in_scope, Rule};
use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scope::ItemKind;
use crate::source::SourceFile;
use crate::{DocFile, Workspace};
use std::collections::BTreeMap;

/// See the module docs. The scanned crate set lives in [`super::SCOPES`].
pub struct DocDrift;

const OBS_DOC: &str = "docs/OBSERVABILITY.md";
const PROTOCOL_DOC: &str = "docs/PROTOCOL.md";
const README: &str = "README.md";
const PROTOCOL_SRC: &str = "crates/serve/src/protocol.rs";
const CLI_MAIN: &str = "crates/cli/src/main.rs";

impl Rule for DocDrift {
    fn name(&self) -> &'static str {
        "doc-drift"
    }

    fn description(&self) -> &'static str {
        "metric names, protocol variants and CLI subcommands match their docs catalogs"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.docs.is_empty() {
            return;
        }
        self.check_metrics(ws, out);
        self.check_protocol(ws, out);
        self.check_cli(ws, out);
    }
}

impl DocDrift {
    /// Metric/span names: code ↔ `docs/OBSERVABILITY.md`, both ways.
    fn check_metrics(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(doc) = ws.docs.iter().find(|d| d.path == OBS_DOC) else {
            return;
        };
        let mut code_names: BTreeMap<String, (String, usize)> = BTreeMap::new();
        for file in ws.files.iter().filter(|f| in_scope(self.name(), &f.path)) {
            for tok in &file.tokens {
                if tok.kind == TokKind::Str
                    && !file.is_test_line(tok.line)
                    && metric_shape(&tok.text)
                {
                    code_names
                        .entry(tok.text.clone())
                        .or_insert((file.path.clone(), tok.line));
                }
            }
        }
        let mut doc_names: BTreeMap<String, usize> = BTreeMap::new();
        for (idx, line) in doc.lines.iter().enumerate() {
            for span in backtick_spans(line) {
                for name in expand_braces(span) {
                    if metric_shape(&name) {
                        doc_names.entry(name).or_insert(idx + 1);
                    }
                }
            }
        }
        for (name, (path, line)) in &code_names {
            if !doc_names.contains_key(name) {
                out.push(Finding::deny(
                    path,
                    *line,
                    self.name(),
                    format!(
                        "metric/span name `{name}` is registered here but missing from \
                         the {OBS_DOC} catalog — document it"
                    ),
                ));
            }
        }
        for (name, line) in &doc_names {
            if !code_names.contains_key(name) {
                out.push(Finding::deny(
                    OBS_DOC,
                    *line,
                    self.name(),
                    format!(
                        "{OBS_DOC} catalogs `{name}` but no scoped code registers it — \
                         remove or fix the entry"
                    ),
                ));
            }
        }
    }

    /// Wire enum variants: `protocol.rs` → `docs/PROTOCOL.md`.
    fn check_protocol(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(doc) = ws.docs.iter().find(|d| d.path == PROTOCOL_DOC) else {
            return;
        };
        let Some(file) = ws.files.iter().find(|f| f.path == PROTOCOL_SRC) else {
            return;
        };
        for item in &file.scope.items {
            if item.kind != ItemKind::Enum
                || item.is_test
                || !matches!(item.name.as_str(), "RequestBody" | "Event")
            {
                continue;
            }
            for variant in &item.variants {
                let documented = doc
                    .lines
                    .iter()
                    .any(|line| word_present(line, &variant.name));
                if !documented {
                    out.push(Finding::deny(
                        &file.path,
                        variant.line,
                        self.name(),
                        format!(
                            "wire variant `{}::{}` is not documented in {PROTOCOL_DOC}",
                            item.name, variant.name
                        ),
                    ));
                }
            }
        }
    }

    /// CLI subcommands: `main.rs` dispatch ↔ README reference table.
    fn check_cli(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(doc) = ws.docs.iter().find(|d| d.path == README) else {
            return;
        };
        let Some(file) = ws.files.iter().find(|f| f.path == CLI_MAIN) else {
            return;
        };
        let arms = cli_arms(file);
        if arms.is_empty() {
            return;
        }
        let rows = readme_subcommands(doc);
        for (name, line) in &arms {
            if !rows.iter().any(|(n, _)| n == name) {
                out.push(Finding::deny(
                    &file.path,
                    *line,
                    self.name(),
                    format!(
                        "CLI subcommand `{name}` is missing from {README}'s subcommand \
                         reference table"
                    ),
                ));
            }
        }
        for (name, line) in &rows {
            if !arms.iter().any(|(n, _)| n == name) {
                out.push(Finding::deny(
                    README,
                    *line,
                    self.name(),
                    format!(
                        "{README} documents subcommand `{name}` but the CLI no longer \
                         dispatches it"
                    ),
                ));
            }
        }
    }
}

/// Whether `s` is shaped like a metric/span name: ≥ 2 non-empty
/// dot-separated segments of `[a-z0-9_]`, rooted in an instrumented
/// layer.
fn metric_shape(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() >= 2
        && matches!(parts[0], "engine" | "serve" | "core")
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// The inline-code spans of one markdown line (text between backticks).
fn backtick_spans(line: &str) -> Vec<&str> {
    line.split('`').skip(1).step_by(2).collect()
}

/// Expands one `prefix{a,b}suffix` brace family (no nesting); a plain
/// name expands to itself.
fn expand_braces(s: &str) -> Vec<String> {
    if let (Some(open), Some(close)) = (s.find('{'), s.find('}')) {
        if open < close {
            let prefix = &s[..open];
            let suffix = &s[close + 1..];
            return s[open + 1..close]
                .split(',')
                .map(|alt| format!("{prefix}{}{suffix}", alt.trim()))
                .collect();
        }
    }
    vec![s.to_string()]
}

/// Whether `word` occurs in `line` at identifier boundaries.
fn word_present(line: &str, word: &str) -> bool {
    let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(at) = line[from..].find(word) {
        let pos = from + at;
        if boundary(line[..pos].chars().next_back())
            && boundary(line[pos + word.len()..].chars().next())
        {
            return true;
        }
        from = pos + word.len();
    }
    false
}

/// The string arms of `main.rs`'s `match cmd …` dispatch, with lines.
fn cli_arms(file: &SourceFile) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].is_ident("match") {
            // The scrutinee runs to the body's `{`; the dispatch is the
            // match whose scrutinee mentions `cmd`.
            let mut j = i + 1;
            let mut depth = 0i64;
            let mut has_cmd = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('{') && depth == 0 {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("cmd") {
                    has_cmd = true;
                }
                j += 1;
            }
            if has_cmd && j < toks.len() {
                return arms_of(file, j);
            }
            i = j;
        }
        i += 1;
    }
    Vec::new()
}

/// String-literal arm patterns (`"name" =>`) at the top level of the
/// match body opening at token `open`.
fn arms_of(file: &SourceFile, open: usize) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut arms = Vec::new();
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t.kind == TokKind::Str
            && toks.get(k + 1).is_some_and(|n| n.is_punct('='))
            && toks.get(k + 2).is_some_and(|n| n.is_punct('>'))
        {
            arms.push((t.text.clone(), t.line));
        }
        k += 1;
    }
    arms
}

/// The subcommand names of README's reference table: rows under the
/// header row containing "subcommand"; each name is the first word of
/// the row's first backticked cell.
fn readme_subcommands(doc: &DocFile) -> Vec<(String, usize)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (idx, line) in doc.lines.iter().enumerate() {
        let t = line.trim();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        if !in_table {
            in_table = t.to_lowercase().contains("subcommand") && !t.contains('`');
            continue;
        }
        if t.chars().all(|c| matches!(c, '|' | '-' | ' ' | ':')) {
            continue; // the `|---|` separator row
        }
        let Some(tick) = t.find('`') else { continue };
        let rest = &t[tick + 1..];
        let Some(close) = rest.find('`') else {
            continue;
        };
        if let Some(name) = rest[..close].split_whitespace().next() {
            rows.push((name.to_string(), idx + 1));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    #[test]
    fn metric_names_are_cross_checked_both_ways() {
        let code = SourceFile::from_source(
            "crates/engine/src/cache.rs",
            "fn f() { counter(\"engine.cache.hit\"); counter(\"engine.cache.evict\"); }\n\
             #[cfg(test)] mod t { fn g() { counter(\"engine.test.only\"); } }\n",
        );
        let doc = DocFile::from_text(
            OBS_DOC,
            "| `engine.cache.{hit,miss}` | per lookup |\nprose `not.a.metric` here\n",
        );
        let ws = Workspace::from_files_and_docs(vec![code], vec![doc]);
        let mut out = Vec::new();
        DocDrift.check(&ws, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("`engine.cache.evict`") && m.contains("missing from")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("`engine.cache.miss`") && m.contains("no scoped code")),
            "{msgs:?}"
        );
    }

    #[test]
    fn undocumented_protocol_variants_deny() {
        let code = SourceFile::from_source(
            PROTOCOL_SRC,
            "pub enum Event { Hello, Surprise }\npub enum Other { NotWire }\n",
        );
        let doc = DocFile::from_text(PROTOCOL_DOC, "The server greets with `Hello`.\n");
        let ws = Workspace::from_files_and_docs(vec![code], vec![doc]);
        let mut out = Vec::new();
        DocDrift.check(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("Event::Surprise"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn cli_table_and_dispatch_are_cross_checked_both_ways() {
        let code = SourceFile::from_source(
            CLI_MAIN,
            "fn run(cmd: &str) -> bool {\n\
             match cmd {\n\
             \"explore\" => { match inner { \"not-a-subcommand\" => {} _ => {} } true }\n\
             \"undocumented\" => true,\n\
             other => false,\n\
             }\n}\n",
        );
        let doc = DocFile::from_text(
            README,
            "| subcommand | does |\n|---|---|\n| `explore <app>` | explores |\n\
             | `vanished` | gone |\n\nOther table:\n| `baseline` | a scenario |\n",
        );
        let ws = Workspace::from_files_and_docs(vec![code], vec![doc]);
        let mut out = Vec::new();
        DocDrift.check(&ws, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("`undocumented`") && m.contains("missing")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("`vanished`") && m.contains("no longer")),
            "{msgs:?}"
        );
    }

    #[test]
    fn no_docs_means_no_findings() {
        let code = SourceFile::from_source(
            "crates/engine/src/cache.rs",
            "fn f() { counter(\"engine.cache.hit\"); }\n",
        );
        let ws = Workspace::from_files(vec![code]);
        let mut out = Vec::new();
        DocDrift.check(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
