//! `cache-key-coverage`: every config field that feeds a `CacheKey`
//! fingerprint is declared covered.
//!
//! The engine's result cache addresses a simulation by `CacheKey`, whose
//! `params_fp` / `trace_fp` / `mem_fp` components are FNV-1a fingerprints
//! over the *serde encoding* of the config structs
//! (`ddtr_engine::fingerprint_value`). That design covers new fields
//! automatically — **unless** a field is added with `#[serde(skip)]` (or
//! the fingerprint routine stops serialising the whole struct), in which
//! case two configs that simulate differently share a fingerprint and the
//! cache silently replays stale results. That is the worst bug class in
//! the repo: wrong numbers with no crash.
//!
//! Mechanization: `crates/engine/src/key.rs` carries a comment manifest
//!
//! ```text
//! // ddtr-lint: cache-key-coverage begin
//! // AppParams @ crates/apps/src/params.rs: drr_quantum, firewall_rules, ...
//! // ddtr-lint: cache-key-coverage end
//! ```
//!
//! and this rule cross-checks each entry against the real struct
//! definition: a struct field missing from the manifest, a manifest field
//! missing from the struct, a missing struct/file, and any
//! `#[serde(skip..)]` attribute inside a covered struct are all findings.
//! Adding a config field therefore *forces* a visit to key.rs — the point
//! where its fingerprint impact must be considered.

use super::Rule;
use crate::diag::Finding;
use crate::source::SourceFile;
use crate::Workspace;
use std::collections::BTreeSet;

/// See the module docs.
pub struct CacheKeyCoverage;

/// Where the manifest lives.
const MANIFEST_FILE: &str = "crates/engine/src/key.rs";
const BEGIN: &str = "ddtr-lint: cache-key-coverage begin";
const END: &str = "ddtr-lint: cache-key-coverage end";

struct Entry {
    strukt: String,
    file: String,
    fields: BTreeSet<String>,
    /// 1-based manifest line in `key.rs`.
    line: usize,
}

impl Rule for CacheKeyCoverage {
    fn name(&self) -> &'static str {
        "cache-key-coverage"
    }

    fn description(&self) -> &'static str {
        "every serde-visible field of the CacheKey config structs is declared in the key.rs manifest"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(key_rs) = ws.files.iter().find(|f| f.path == MANIFEST_FILE) else {
            // Workspace slice without the engine (fixture runs): nothing
            // to check against.
            return;
        };
        let entries = parse_manifest(key_rs);
        if entries.is_empty() {
            out.push(Finding::deny(
                MANIFEST_FILE,
                1,
                self.name(),
                format!(
                    "no `{BEGIN}` manifest found; the CacheKey coverage contract is \
                     unverifiable — restore the manifest block"
                ),
            ));
            return;
        }
        for entry in entries {
            let Some(file) = ws.files.iter().find(|f| f.path == entry.file) else {
                out.push(Finding::deny(
                    MANIFEST_FILE,
                    entry.line,
                    self.name(),
                    format!(
                        "manifest names `{}` in `{}`, but that file is not in the \
                         workspace (moved or deleted?)",
                        entry.strukt, entry.file
                    ),
                ));
                continue;
            };
            let Some(parsed) = parse_struct(file, &entry.strukt) else {
                out.push(Finding::deny(
                    MANIFEST_FILE,
                    entry.line,
                    self.name(),
                    format!(
                        "manifest names struct `{}` in `{}`, but no such struct is \
                         defined there (renamed?)",
                        entry.strukt, entry.file
                    ),
                ));
                continue;
            };
            for (field, line) in &parsed.fields {
                if !entry.fields.contains(field) {
                    out.push(Finding::deny(
                        &entry.file,
                        *line,
                        self.name(),
                        format!(
                            "field `{field}` of `{}` feeds a CacheKey fingerprint but is \
                             not declared in the coverage manifest \
                             ({MANIFEST_FILE}); confirm it is serde-visible (no skip) \
                             and add it to the manifest",
                            entry.strukt
                        ),
                    ));
                }
            }
            for field in &entry.fields {
                if !parsed.fields.iter().any(|(f, _)| f == field) {
                    out.push(Finding::deny(
                        MANIFEST_FILE,
                        entry.line,
                        self.name(),
                        format!(
                            "manifest declares `{}::{field}`, but the struct has no such \
                             field any more — remove it from the manifest",
                            entry.strukt
                        ),
                    ));
                }
            }
            for line in &parsed.skips {
                out.push(Finding::deny(
                    &entry.file,
                    *line,
                    self.name(),
                    format!(
                        "`#[serde(skip..)]` inside `{}` makes the field invisible to \
                         `fingerprint_value`: two configs that simulate differently \
                         would share a cache entry (silent stale results)",
                        entry.strukt
                    ),
                ));
            }
        }
    }
}

/// Parses the manifest comment block out of key.rs's raw lines.
fn parse_manifest(key_rs: &SourceFile) -> Vec<Entry> {
    let mut entries = Vec::new();
    let mut inside = false;
    for (idx, raw) in key_rs.raw.iter().enumerate() {
        if raw.contains(BEGIN) {
            inside = true;
            continue;
        }
        if raw.contains(END) {
            break;
        }
        if !inside {
            continue;
        }
        let body = raw.trim_start().trim_start_matches("//").trim();
        let Some((head, fields)) = body.split_once(':') else {
            continue;
        };
        let Some((strukt, file)) = head.split_once('@') else {
            continue;
        };
        entries.push(Entry {
            strukt: strukt.trim().to_string(),
            file: file.trim().to_string(),
            fields: fields
                .split(',')
                .map(|f| f.trim().to_string())
                .filter(|f| !f.is_empty())
                .collect(),
            line: idx + 1,
        });
    }
    entries
}

struct ParsedStruct {
    /// `(field name, 1-based line)` in declaration order.
    fields: Vec<(String, usize)>,
    /// Lines carrying `#[serde(skip..)]` attributes inside the body.
    skips: Vec<usize>,
}

/// Finds `struct <name> { .. }` in the file's code view and collects its
/// top-level named fields (pub or private — serde sees both).
fn parse_struct(file: &SourceFile, name: &str) -> Option<ParsedStruct> {
    let needle = format!("struct {name}");
    let start = file.code.iter().position(|l| {
        l.contains(&needle)
            && !l
                .split(&needle)
                .nth(1)
                .is_some_and(|rest| rest.starts_with(|c: char| c.is_alphanumeric() || c == '_'))
    })?;
    let mut depth = 0usize;
    let mut opened = false;
    let mut fields = Vec::new();
    let mut skips = Vec::new();
    for (j, line) in file.code.iter().enumerate().skip(start) {
        // A tuple struct / unit struct ends before any `{`.
        if !opened && line.contains(';') && !line.contains('{') {
            return Some(ParsedStruct { fields, skips });
        }
        if opened && depth == 1 {
            let trimmed = line.trim();
            if trimmed.starts_with("#[") {
                // Attributes are blanked in the code view only when they
                // sit in strings; check the raw line for serde(skip.
                let raw = file.raw.get(j).map_or("", String::as_str);
                if raw.contains("serde(") && raw.contains("skip") {
                    skips.push(j + 1);
                }
            } else {
                let decl = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
                if let Some(colon) = decl.find(':') {
                    let field: String = decl[..colon]
                        .trim()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !field.is_empty() && decl[..colon].trim().len() == field.len() {
                        fields.push((field, j + 1));
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    opened = true;
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some(ParsedStruct { fields, skips });
                    }
                }
                _ => {}
            }
        }
    }
    Some(ParsedStruct { fields, skips })
}
