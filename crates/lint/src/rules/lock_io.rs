//! `lock-across-io`: no mutex guard held across blocking I/O in the
//! service crate.
//!
//! The slow-client stall class: PR 4's review found the engine session
//! holding its jobs-pool permit while writing progress events, so one
//! client that stopped reading its socket stalled every other request of
//! the resident session. The same shape — acquire a `Mutex`, then
//! `write`/`flush`/`emit` while the guard is live — reappears easily in
//! `crates/serve`, where almost every path touches both shared state and
//! a connection writer.
//!
//! Detection is lexical and scoped to `crates/serve/src/` and
//! `crates/obs/src/` (the metrics registry and span ring are mutexes
//! every exploration thread touches — holding either across I/O such as
//! the trace export would stall recording everywhere):
//!
//! * a single expression that both locks and does I/O
//!   (`x.lock()...flush()`), and
//! * a `let guard = ...lock()...;` binding (the guard-shaped statement
//!   may only postfix `unwrap`/`expect`/`unwrap_or_else` after `.lock()`)
//!   followed by an I/O call before the guard's block ends or it is
//!   `drop`ped.
//!
//! The one legitimate site — a writer mutex whose entire purpose is to
//! serialise the write itself — carries a waiver with its justification.

use super::{in_scope, Rule};
use crate::diag::Finding;
use crate::Workspace;

/// See the module docs. The watched file set lives in [`super::SCOPES`].
pub struct LockAcrossIo;

const IO_TOKENS: &[&str] = &[
    "writeln!",
    "write!",
    ".write(",
    ".write_all(",
    ".flush(",
    ".emit(",
    ".send(",
    ".read_line(",
    ".connect(",
];

fn io_token(code: &str) -> Option<&'static str> {
    IO_TOKENS.iter().copied().find(|t| code.contains(t))
}

impl Rule for LockAcrossIo {
    fn name(&self) -> &'static str {
        "lock-across-io"
    }

    fn description(&self) -> &'static str {
        "no MutexGuard held across write/flush/socket calls in crates/serve and crates/obs"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| in_scope(self.name(), &f.path)) {
            for (idx, code) in file.code.iter().enumerate() {
                if file.is_test_line(idx + 1) {
                    continue;
                }
                if code.contains(".lock()") {
                    if let Some(tok) = io_token(code) {
                        out.push(Finding::deny(
                            &file.path,
                            idx + 1,
                            self.name(),
                            format!(
                                "`{tok}` runs while the same expression holds a mutex \
                                 guard; a slow peer blocks every other holder — do the \
                                 I/O after the guard drops"
                            ),
                        ));
                        continue;
                    }
                }
                if let Some(guard) = guard_binding(file, idx) {
                    scan_guard_scope(file, idx, &guard, self.name(), out);
                }
            }
        }
    }
}

/// If the logical `let` statement starting at `idx` binds a mutex guard,
/// returns the bound name. Statements that keep calling into the locked
/// value (`.lock()...get(..)`) produce a temporary guard dropped at the
/// `;`, not a live binding.
fn guard_binding(file: &crate::source::SourceFile, idx: usize) -> Option<String> {
    let first = file.code[idx].trim_start();
    let rest = first.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // Join rustfmt-split chains into one logical statement (bounded).
    let mut stmt = String::new();
    for line in file.code.iter().skip(idx).take(8) {
        stmt.push_str(line.trim());
        if line.contains(';') {
            break;
        }
    }
    let after_lock = stmt.rsplit_once(".lock()")?.1;
    // Only guard-preserving postfixes may follow the lock call.
    let mut ok = true;
    let mut scan = after_lock;
    while let Some(dot) = scan.find('.') {
        let method: String = scan[dot + 1..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !matches!(method.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
            ok = false;
            break;
        }
        scan = &scan[dot + 1..];
    }
    (ok && after_lock.trim_end().ends_with(';')).then_some(name)
}

/// Flags I/O between a guard binding and the end of its enclosing block
/// (or an explicit `drop(guard)`).
fn scan_guard_scope(
    file: &crate::source::SourceFile,
    bind_idx: usize,
    guard: &str,
    rule: &str,
    out: &mut Vec<Finding>,
) {
    let mut rel: i64 = 0;
    for (j, code) in file.code.iter().enumerate().skip(bind_idx + 1) {
        if code.contains(&format!("drop({guard})")) {
            return;
        }
        if let Some(tok) = io_token(code) {
            out.push(Finding::deny(
                &file.path,
                j + 1,
                rule,
                format!(
                    "`{tok}` runs while mutex guard `{guard}` (bound at line {}) is \
                     held; a slow peer blocks every other holder — drop the guard \
                     first or buffer and write after the critical section",
                    bind_idx + 1
                ),
            ));
        }
        for c in code.chars() {
            match c {
                '{' => rel += 1,
                '}' => {
                    rel -= 1;
                    if rel < 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }
}
