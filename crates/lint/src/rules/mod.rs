//! The rule catalog.
//!
//! Every rule implements [`Rule`] over the whole [`Workspace`] (most scan
//! file by file; `cache-key-coverage` is genuinely cross-file). The
//! checker in [`crate::run`] applies waivers afterwards, so rules report
//! every raw violation they see.

use crate::diag::Finding;
use crate::Workspace;

mod cache_key;
mod det_iter;
mod float_ord;
mod lock_io;
mod no_panic;

pub use cache_key::CacheKeyCoverage;
pub use det_iter::DetIter;
pub use float_ord::FloatOrd;
pub use lock_io::LockAcrossIo;
pub use no_panic::NoPanicBoundary;

/// One invariant checker.
pub trait Rule {
    /// Stable rule name — what waivers and diagnostics reference.
    fn name(&self) -> &'static str;
    /// One-line description for `--list` and the docs.
    fn description(&self) -> &'static str;
    /// Scans the workspace and appends raw (pre-waiver) findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every shipped rule, in catalog order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatOrd),
        Box::new(NoPanicBoundary),
        Box::new(DetIter),
        Box::new(CacheKeyCoverage),
        Box::new(LockAcrossIo),
    ]
}
