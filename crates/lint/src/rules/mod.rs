//! The rule catalog.
//!
//! Every rule implements [`Rule`] over the whole [`Workspace`] (most scan
//! file by file; `cache-key-coverage` and `serde-compat` are genuinely
//! cross-file, `lock-order` is inter-procedural, `doc-drift` crosses into
//! markdown). The checker in [`crate::run`] applies waivers afterwards,
//! so rules report every raw violation they see.
//!
//! Path scoping lives in one declarative [`SCOPES`] table instead of a
//! private predicate per rule, so "which rule watches which files" is a
//! single diffable surface — `docs/LINTS.md` mirrors it verbatim.

use crate::diag::Finding;
use crate::Workspace;

mod cache_key;
mod det_iter;
mod doc_drift;
mod float_ord;
mod lock_io;
mod lock_order;
mod no_panic;
mod serde_compat;

pub use cache_key::CacheKeyCoverage;
pub use det_iter::DetIter;
pub use doc_drift::DocDrift;
pub use float_ord::FloatOrd;
pub use lock_io::LockAcrossIo;
pub use lock_order::LockOrder;
pub use no_panic::NoPanicBoundary;
pub use serde_compat::SerdeCompat;

/// One invariant checker.
pub trait Rule {
    /// Stable rule name — what waivers and diagnostics reference.
    fn name(&self) -> &'static str;
    /// One-line description for `--list` and the docs.
    fn description(&self) -> &'static str;
    /// Scans the workspace and appends raw (pre-waiver) findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every shipped rule, in catalog order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatOrd),
        Box::new(NoPanicBoundary),
        Box::new(DetIter),
        Box::new(CacheKeyCoverage),
        Box::new(LockAcrossIo),
        Box::new(LockOrder),
        Box::new(SerdeCompat),
        Box::new(DocDrift),
    ]
}

/// The path scope of one rule: a file is in scope when its
/// workspace-relative path starts with any listed prefix or equals any
/// listed file.
pub struct Scope {
    /// Directory prefixes (always ending in `/`).
    pub prefixes: &'static [&'static str],
    /// Exact file paths.
    pub files: &'static [&'static str],
}

/// Which rule watches which files, declaratively. `float-ord`,
/// `cache-key-coverage` and `serde-compat` are absent on purpose: the
/// first is workspace-wide, the other two anchor on a manifest file of
/// their own (`engine/src/key.rs`, `serve/src/protocol.rs`).
///
/// Scope rationale, kept with the data it explains:
///
/// * `no-panic-boundary` — the serve boundary, the shared dispatch path,
///   the observability layer (instrumentation that panics tears down
///   whatever it was observing) and the pile store (verify-on-read means
///   untrusted bytes flow through it; corruption must surface as errors,
///   never panics).
/// * `det-iter` — the Pareto crate, the GA, the engine cache/key/store
///   path and obs snapshots: everywhere hash-order iteration would break
///   byte-identical output.
/// * `lock-across-io` / `lock-order` — every crate that holds long-lived
///   mutexes (`serve` connection + inflight state, `obs` registries,
///   `engine` cache and jobs pool).
/// * `doc-drift` — the crates whose metric/span names and CLI surface the
///   shipped docs catalog.
pub const SCOPES: &[(&str, Scope)] = &[
    (
        "no-panic-boundary",
        Scope {
            prefixes: &[
                "crates/serve/src/",
                "crates/obs/src/",
                "crates/engine/src/store/",
            ],
            files: &["crates/core/src/dispatch.rs"],
        },
    ),
    (
        "det-iter",
        Scope {
            prefixes: &[
                "crates/pareto/src/",
                "crates/obs/src/",
                "crates/engine/src/store/",
            ],
            files: &[
                "crates/core/src/ga.rs",
                "crates/engine/src/cache.rs",
                "crates/engine/src/engine.rs",
                "crates/engine/src/key.rs",
            ],
        },
    ),
    (
        "lock-across-io",
        Scope {
            prefixes: &["crates/serve/src/", "crates/obs/src/"],
            files: &[],
        },
    ),
    (
        "lock-order",
        Scope {
            prefixes: &["crates/engine/src/", "crates/serve/src/", "crates/obs/src/"],
            files: &[],
        },
    ),
    (
        "doc-drift",
        Scope {
            prefixes: &[
                "crates/engine/src/",
                "crates/serve/src/",
                "crates/obs/src/",
                "crates/core/src/",
                "crates/cli/src/",
            ],
            files: &[],
        },
    ),
];

/// Whether `path` is in `rule`'s scope per [`SCOPES`]. Rules without a
/// table entry must not call this (it returns `false` for them).
#[must_use]
pub fn in_scope(rule: &str, path: &str) -> bool {
    SCOPES
        .iter()
        .find(|(name, _)| *name == rule)
        .is_some_and(|(_, scope)| {
            scope.prefixes.iter().any(|p| path.starts_with(p)) || scope.files.contains(&path)
        })
}
