//! `det-iter`: no hash-order iteration in determinism-critical modules.
//!
//! The repo's headline guarantee is byte-identical Pareto fronts at any
//! `--jobs N` (regression-tested since PR 2). `HashMap`/`HashSet`
//! iteration order is randomized per process, so one `for (k, v) in &map`
//! in a module that feeds result ordering silently breaks the guarantee
//! — and only ever shows up as an unreproducible cross-run diff. The
//! critical modules are the Pareto crate, the GA (`core::ga`), and the
//! engine's cache/execution/key path, where hash collections are fine as
//! *lookup* structures (the GA's `Archive` pairs its memo map with a
//! first-insertion `order` vector for exactly this reason) but must not
//! be *iterated* without a deterministic sort.
//!
//! Detection is lexical: names bound or typed as `HashMap`/`HashSet` in
//! the file are tracked, and iteration adapters (`.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `for _ in &name`, …) over those names are
//! flagged. A waiver (`// ddtr-lint: allow(det-iter) — sorted below`) is
//! the documented escape hatch for collect-then-sort sites.

use super::{in_scope, Rule};
use crate::diag::Finding;
use crate::source::SourceFile;
use crate::Workspace;
use std::collections::BTreeSet;

/// See the module docs. The determinism-critical file set lives in
/// [`super::SCOPES`]; `crates/obs` is on it because its snapshots
/// serialise (metrics exposition, `Event::Stats`, trace export) —
/// hash-order iteration there would make two exports of identical state
/// differ byte-for-byte.
pub struct DetIter;

const ITER_SUFFIXES: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

impl Rule for DetIter {
    fn name(&self) -> &'static str {
        "det-iter"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in pareto, obs, core::ga and the engine cache/store path"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in ws.files.iter().filter(|f| in_scope(self.name(), &f.path)) {
            let names = hash_collection_names(file);
            if names.is_empty() {
                continue;
            }
            for (idx, code) in file.code.iter().enumerate() {
                if file.is_test_line(idx + 1) {
                    continue;
                }
                for name in &names {
                    if iterates(code, name) {
                        out.push(Finding::deny(
                            &file.path,
                            idx + 1,
                            self.name(),
                            format!(
                                "iterating hash collection `{name}` has randomized order \
                                 in a determinism-critical module; collect and sort (then \
                                 waive with a reason) or keep a first-insertion order \
                                 vector beside the map"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// Collects identifiers bound or typed as `HashMap`/`HashSet` anywhere in
/// the file: `let [mut] name = HashMap::new()`, `let name: HashSet<..>`,
/// struct fields and fn params `name: [&]HashMap<..>`.
fn hash_collection_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for code in &file.code {
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if let Some(name) = leading_ident(rest) {
                names.insert(name);
                continue;
            }
        }
        // `name: HashMap<..>` / `name: &mut HashSet<..>` (field, param or
        // annotated binding) — anchor on each type occurrence and walk back
        // to *its* colon, so a line with several params binds the right one.
        for needle in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(needle) {
                let pos = from + at;
                from = pos + needle.len();
                let ident_boundary = |c: char| c.is_alphanumeric() || c == '_';
                if code[..pos].chars().next_back().is_some_and(ident_boundary)
                    || code[pos + needle.len()..].starts_with(ident_boundary)
                {
                    continue; // inside a larger ident like `MyHashMapLike`
                }
                let Some(colon) = last_single_colon(&code[..pos]) else {
                    continue;
                };
                // Only `&`, `mut` and lifetimes may sit between `:` and the
                // type — `Vec<HashMap<..>>` etc. must not bind the name.
                let seg = &code[colon + 1..pos];
                if !seg
                    .chars()
                    .all(|c| c.is_whitespace() || "&'_".contains(c) || c.is_alphanumeric())
                {
                    continue;
                }
                if let Some(name) = trailing_ident(code[..colon].trim_end()) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Position of the last `:` in `code` that is not part of a `::` path
/// separator.
fn last_single_colon(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    (0..bytes.len()).rev().find(|&i| {
        bytes[i] == b':' && bytes.get(i + 1) != Some(&b':') && (i == 0 || bytes[i - 1] != b':')
    })
}

fn leading_ident(s: &str) -> Option<String> {
    let name: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then_some(name)
}

fn trailing_ident(s: &str) -> Option<String> {
    let name: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then_some(name)
}

/// Whether this line iterates `name`: an iteration adapter directly on it
/// (possibly behind `self.`) or a `for .. in [&[mut ]]name` header.
fn iterates(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(name) {
        let pos = from + at;
        let before_ok = !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[pos + name.len()..];
        if before_ok && ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
            return true;
        }
        if before_ok && (after.trim_start().starts_with('{') || after.trim_start().is_empty()) {
            // `for x in name {` / `for x in &name` at line end.
            let head = code[..pos].trim_end();
            let head = head.trim_end_matches(['&']).trim_end();
            let head = head.strip_suffix("mut").map_or(head, str::trim_end);
            let head = head.trim_end_matches(['&']).trim_end();
            if head.ends_with(" in") {
                return true;
            }
        }
        from = pos + name.len();
    }
    false
}
