//! `float-ord`: ban `partial_cmp` in favour of `f64::total_cmp`.
//!
//! The bug class: `a.partial_cmp(&b).unwrap()/.expect("finite")` inside a
//! sort comparator panics on NaN, and the `unwrap_or(Equal)` variant is
//! worse — it makes the comparator non-transitive, so sort order (and
//! with it Pareto fronts, GA selection and report ordering) silently
//! depends on element order and thread count. PR 3 converted every core
//! comparator to the IEEE 754 `total_cmp` total order; this rule keeps
//! the pattern from growing back (it had already reappeared in the
//! figure-reproduction bins and a pareto property test by PR 6).
//!
//! The ban is workspace-wide, tests included: a nondeterministic
//! comparator in a test is a flaky test. `fn partial_cmp` *definitions*
//! (manual `PartialOrd` impls) are exempt; calls are not.

use super::Rule;
use crate::diag::Finding;
use crate::source::find_tokens;
use crate::Workspace;

/// See the module docs.
pub struct FloatOrd;

impl Rule for FloatOrd {
    fn name(&self) -> &'static str {
        "float-ord"
    }

    fn description(&self) -> &'static str {
        "no partial_cmp comparators: NaN makes them panic or go non-transitive; use f64::total_cmp"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            for (idx, code) in file.code.iter().enumerate() {
                if code.contains("fn partial_cmp") {
                    continue;
                }
                if !find_tokens(code, "partial_cmp").is_empty() {
                    out.push(Finding::deny(
                        &file.path,
                        idx + 1,
                        self.name(),
                        "`partial_cmp` is not a total order on floats (NaN panics the \
                         `expect` form and de-sorts the `unwrap_or` form); compare with \
                         `f64::total_cmp` like the core comparators",
                    ));
                }
            }
        }
    }
}
