//! `serde-compat`: the wire protocol stays v1-compatible.
//!
//! `ddtr serve` speaks newline-delimited JSON whose schema is the serde
//! shape of the types in `crates/serve/src/protocol.rs`. Old clients
//! keep talking to new servers (and vice versa) only if every change to
//! those types is *additive*: a field a v1 peer does not send must
//! deserialize anyway (`Option` or `#[serde(default)]`), and nothing a
//! v1 peer relies on may be removed or renamed. That contract was
//! enforced by review; this rule mechanizes it the same way
//! `cache-key-coverage` pins the fingerprint: a manifest comment block
//! in `protocol.rs` records the v1 field set of every wire-visible
//! type, and the rule cross-checks manifest and code both ways.
//!
//! Manifest syntax, between `// ddtr-lint: serde-compat begin` and
//! `// ddtr-lint: serde-compat end`:
//!
//! ```text
//! // struct JobSpec v1: inline, mode, app, quick
//! // enum Event v1: Hello, Pong, Bye
//! // variant Event::Hello v1: protocol, server, jobs
//! ```
//!
//! Checks:
//!
//! * every serde-deriving type in `protocol.rs` must be pinned;
//! * every pinned field/variant must still exist — a removal or rename
//!   is a wire break and denies at the manifest line;
//! * a code field beyond its type's pinned set must be `Option`-typed
//!   or carry `#[serde(default)]` (v1 peers omit it);
//! * enum variants beyond the pinned set are additive and fine, but a
//!   *pinned* variant with named fields needs its own `variant` entry so
//!   those fields are checked too;
//! * `#[serde(rename…)]` inside a pinned type denies — it changes wire
//!   names underneath the manifest.
//!
//! Bumping the protocol deliberately means editing the manifest in the
//! same commit — exactly the reviewable diff this rule exists to force.

use super::Rule;
use crate::diag::Finding;
use crate::scope::{Item, ItemKind};
use crate::Workspace;
use std::collections::BTreeMap;

/// See the module docs.
pub struct SerdeCompat;

/// The file whose types are the wire protocol, and whose comments carry
/// the manifest.
const MANIFEST_FILE: &str = "crates/serve/src/protocol.rs";

const BEGIN: &str = "ddtr-lint: serde-compat begin";
const END: &str = "ddtr-lint: serde-compat end";

/// One parsed manifest: pinned field/variant names per type, with the
/// manifest comment line for diagnostics.
#[derive(Default)]
struct Manifest {
    structs: BTreeMap<String, (usize, Vec<String>)>,
    enums: BTreeMap<String, (usize, Vec<String>)>,
    variants: BTreeMap<(String, String), (usize, Vec<String>)>,
    found: bool,
}

impl Rule for SerdeCompat {
    fn name(&self) -> &'static str {
        "serde-compat"
    }

    fn description(&self) -> &'static str {
        "wire types in serve/protocol.rs match their pinned v1 manifest; new fields are optional"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(file) = ws.files.iter().find(|f| f.path == MANIFEST_FILE) else {
            return;
        };
        let manifest = parse_manifest(file);
        if !manifest.found {
            out.push(Finding::deny(
                &file.path,
                1,
                self.name(),
                format!(
                    "wire types have no serde-compat manifest — add a `// {BEGIN}` block \
                     pinning the v1 field set of every Request/Event type"
                ),
            ));
            return;
        }

        let wire_types: Vec<&Item> = file
            .scope
            .items
            .iter()
            .filter(|i| {
                matches!(i.kind, ItemKind::Struct | ItemKind::Enum)
                    && !i.is_test
                    && derives_serde(i)
            })
            .collect();

        for item in &wire_types {
            match item.kind {
                ItemKind::Struct => {
                    let Some((line, pinned)) = manifest.structs.get(&item.name) else {
                        out.push(Finding::deny(
                            &file.path,
                            item.start_line,
                            self.name(),
                            format!(
                                "wire struct `{}` is not pinned in the serde-compat \
                                 manifest — add a `struct {} v1: …` entry",
                                item.name, item.name
                            ),
                        ));
                        continue;
                    };
                    check_fields(
                        &file.path,
                        &item.name,
                        &item.fields,
                        *line,
                        pinned,
                        self.name(),
                        out,
                    );
                }
                ItemKind::Enum => {
                    let Some((line, pinned)) = manifest.enums.get(&item.name) else {
                        out.push(Finding::deny(
                            &file.path,
                            item.start_line,
                            self.name(),
                            format!(
                                "wire enum `{}` is not pinned in the serde-compat \
                                 manifest — add an `enum {} v1: …` entry",
                                item.name, item.name
                            ),
                        ));
                        continue;
                    };
                    for pin in pinned {
                        let Some(variant) = item.variants.iter().find(|v| v.name == *pin) else {
                            out.push(Finding::deny(
                                &file.path,
                                *line,
                                self.name(),
                                format!(
                                    "v1 variant `{}::{pin}` was removed or renamed — a \
                                     wire break for every v1 peer",
                                    item.name
                                ),
                            ));
                            continue;
                        };
                        if !variant.fields.is_empty() {
                            let key = (item.name.clone(), pin.clone());
                            if let Some((vline, vpinned)) = manifest.variants.get(&key) {
                                check_fields(
                                    &file.path,
                                    &format!("{}::{pin}", item.name),
                                    &variant.fields,
                                    *vline,
                                    vpinned,
                                    self.name(),
                                    out,
                                );
                            } else {
                                out.push(Finding::deny(
                                    &file.path,
                                    variant.line,
                                    self.name(),
                                    format!(
                                        "pinned variant `{}::{pin}` carries fields but \
                                         has no `variant {}::{pin} v1: …` manifest entry",
                                        item.name, item.name
                                    ),
                                ));
                            }
                        }
                    }
                    for variant in &item.variants {
                        if variant.attrs.iter().any(|a| is_serde_rename(a)) {
                            out.push(Finding::deny(
                                &file.path,
                                variant.line,
                                self.name(),
                                format!(
                                    "`#[serde(rename…)]` on pinned wire enum `{}` changes \
                                     wire names underneath the manifest — bump the \
                                     manifest instead",
                                    item.name
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }

        // The manifest must not pin phantoms: every entry resolves to a
        // wire type (and every variant entry to its pinned enum variant).
        for (name, (line, _)) in &manifest.structs {
            if !wire_types
                .iter()
                .any(|i| i.kind == ItemKind::Struct && i.name == *name)
            {
                out.push(Finding::deny(
                    &file.path,
                    *line,
                    self.name(),
                    format!("manifest pins struct `{name}` but no such wire type exists"),
                ));
            }
        }
        for (name, (line, _)) in &manifest.enums {
            if !wire_types
                .iter()
                .any(|i| i.kind == ItemKind::Enum && i.name == *name)
            {
                out.push(Finding::deny(
                    &file.path,
                    *line,
                    self.name(),
                    format!("manifest pins enum `{name}` but no such wire type exists"),
                ));
            }
        }
        for ((enum_name, var), (line, _)) in &manifest.variants {
            let resolves = manifest
                .enums
                .get(enum_name)
                .is_some_and(|(_, pins)| pins.contains(var));
            if !resolves {
                out.push(Finding::deny(
                    &file.path,
                    *line,
                    self.name(),
                    format!(
                        "manifest variant entry `{enum_name}::{var}` does not match any \
                         pinned v1 variant of a pinned enum"
                    ),
                ));
            }
        }
    }
}

/// Field-level checks shared by structs and struct-variants.
fn check_fields(
    path: &str,
    type_name: &str,
    fields: &[crate::scope::FieldDef],
    manifest_line: usize,
    pinned: &[String],
    rule: &str,
    out: &mut Vec<Finding>,
) {
    for pin in pinned {
        if !fields.iter().any(|f| f.name == *pin) {
            out.push(Finding::deny(
                path,
                manifest_line,
                rule,
                format!(
                    "v1 field `{pin}` of `{type_name}` was removed or renamed — a wire \
                     break for every v1 peer"
                ),
            ));
        }
    }
    for field in fields {
        if field.attrs.iter().any(|a| is_serde_rename(a)) {
            out.push(Finding::deny(
                path,
                field.line,
                rule,
                format!(
                    "`#[serde(rename…)]` on `{type_name}.{}` changes wire names \
                     underneath the manifest — bump the manifest instead",
                    field.name
                ),
            ));
        }
        if pinned.contains(&field.name) {
            continue;
        }
        let optional = field.ty.starts_with("Option<")
            || field
                .attrs
                .iter()
                .any(|a| a.starts_with("#[serde(") && a.contains("default"));
        if !optional {
            out.push(Finding::deny(
                path,
                field.line,
                rule,
                format!(
                    "field `{}` of `{type_name}` is newer than v1 but neither `Option` \
                     nor `#[serde(default)]` — a v1 peer omitting it fails to \
                     deserialize",
                    field.name
                ),
            ));
        }
    }
}

/// Whether an item's attributes include a serde derive.
fn derives_serde(item: &Item) -> bool {
    item.attrs.iter().any(|a| {
        a.starts_with("#[derive(") && (a.contains("Serialize") || a.contains("Deserialize"))
    })
}

/// Whether an attribute renames on the wire (`rename` / `rename_all`).
fn is_serde_rename(attr: &str) -> bool {
    attr.starts_with("#[serde(") && attr.contains("rename")
}

/// Parses the manifest block out of the file's line comments.
fn parse_manifest(file: &crate::source::SourceFile) -> Manifest {
    let mut manifest = Manifest::default();
    let mut inside = false;
    for comment in &file.comments {
        if comment.block || comment.doc {
            continue;
        }
        let text = comment.text.trim_start_matches('/').trim();
        if text.contains(BEGIN) {
            inside = true;
            manifest.found = true;
            continue;
        }
        if text.contains(END) {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let Some((head, list)) = text.split_once(" v1:") else {
            continue;
        };
        let names: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let entry = (comment.line, names);
        if let Some(name) = head.trim().strip_prefix("struct ") {
            manifest.structs.insert(name.trim().to_string(), entry);
        } else if let Some(name) = head.trim().strip_prefix("enum ") {
            manifest.enums.insert(name.trim().to_string(), entry);
        } else if let Some(path) = head.trim().strip_prefix("variant ") {
            if let Some((enum_name, var)) = path.trim().split_once("::") {
                manifest
                    .variants
                    .insert((enum_name.to_string(), var.to_string()), entry);
            }
        }
    }
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::Workspace;

    fn check(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_files(vec![SourceFile::from_source(MANIFEST_FILE, src)]);
        let mut out = Vec::new();
        SerdeCompat.check(&ws, &mut out);
        out
    }

    const HEADER: &str = "// ddtr-lint: serde-compat begin\n\
         // struct Job v1: id, mode\n\
         // enum Ev v1: Done, Fail\n\
         // variant Ev::Fail v1: error\n\
         // ddtr-lint: serde-compat end\n";

    #[test]
    fn compatible_evolution_passes() {
        let src = format!(
            "{HEADER}\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Job {{ pub id: String, pub mode: String, pub extra: Option<u32>,\n\
             #[serde(default)]\n pub more: bool }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum Ev {{ Done, Fail {{ error: String }}, New {{ anything: u64 }} }}\n"
        );
        assert!(check(&src).is_empty(), "{:?}", check(&src));
    }

    #[test]
    fn new_field_without_default_denies() {
        let src = format!(
            "{HEADER}\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Job {{ pub id: String, pub mode: String, pub extra: u32 }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum Ev {{ Done, Fail {{ error: String }} }}\n"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`extra`"), "{}", out[0].message);
        assert!(
            out[0].message.contains("serde(default)"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn removed_pinned_field_and_variant_deny_at_the_manifest() {
        let src = format!(
            "{HEADER}\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Job {{ pub id: String }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum Ev {{ Done }}\n"
        );
        let out = check(&src);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("`mode`") && m.contains("removed")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("Ev::Fail") && m.contains("removed")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unpinned_wire_types_and_missing_manifest_deny() {
        let out = check("#[derive(Serialize, Deserialize)]\npub struct Job { pub id: String }\n");
        assert!(out
            .iter()
            .any(|f| f.message.contains("no serde-compat manifest")));
        let src = format!(
            "{HEADER}\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Job {{ pub id: String, pub mode: String }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum Ev {{ Done, Fail {{ error: String }} }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Sneaky {{ pub x: u32 }}\n"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`Sneaky`"), "{}", out[0].message);
    }

    #[test]
    fn serde_rename_denies() {
        let src = format!(
            "{HEADER}\
             #[derive(Serialize, Deserialize)]\n\
             pub struct Job {{ pub id: String, #[serde(rename = \"m\")] pub mode: String }}\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum Ev {{ Done, Fail {{ error: String }} }}\n"
        );
        let out = check(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("rename"), "{}", out[0].message);
    }
}
