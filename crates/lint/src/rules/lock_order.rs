//! `lock-order`: deadlock-shape detection across engine, serve and obs.
//!
//! The workspace now has enough long-lived mutexes to deadlock the
//! classic way — two threads acquiring the same two locks in opposite
//! orders (`cache` then `state` in one function, `state` then `cache` in
//! another), or a guard held across a call that blocks on the jobs pool
//! while every pool permit is owned by threads waiting on that guard.
//! Neither shape is visible file-locally, so this rule is
//! inter-procedural: it extracts every guard acquisition and its live
//! scope per function, links functions through same-workspace call
//! edges, and checks the resulting lock-acquisition graph.
//!
//! Per function (token walk over the [`crate::scope`] body range):
//!
//! * an *acquisition* is `recv.lock()` (or zero-argument
//!   `.read()`/`.write()` — `RwLock`; the I/O `write(buf)` takes an
//!   argument and never matches). Lock identity is the receiver
//!   identifier: `self.cache.lock()` acquires `cache`.
//! * the guard is *persistent* when bound by a plain `let` whose only
//!   postfixes after the acquire are `unwrap`/`expect`/`unwrap_or_else`/
//!   `map_err`/`?` — it then lives to the end of its block or an explicit
//!   `drop(guard)`. Anything else (`.lock().insert(..)`, match heads,
//!   temporaries in bigger expressions) is a temporary dropped at the
//!   statement's `;`.
//! * *call edges* resolve `Type::method` exactly, `self.method` against
//!   the enclosing impl, `ddtr_xxx::free_fn` within that crate, and bare
//!   names only when unique among all workspace `src/` functions —
//!   ambiguous names are skipped, so the graph under-approximates rather
//!   than inventing edges.
//!
//! A fixpoint then computes each function's transitive acquire set and
//! whether it can reach `JobsPool::acquire` (the blocking source: it
//! waits on a condvar until a permit frees). Findings:
//!
//! * **cycle** — the lock graph (edge `a` → `b` when `b` is acquired,
//!   directly or transitively, while `a` is held) contains a cycle; the
//!   message carries the full witness chain, one `file:line` + holder
//!   function (+ call path) per edge.
//! * **blocking** — a guard is held across a call that can block on the
//!   jobs pool; a saturated pool then stalls every other holder.
//!
//! Known approximations, on purpose: lock identity is the receiver
//! *name* (two fields named `inner` on different types alias), moved
//! guards are assumed live to end of block, and unresolvable calls
//! contribute nothing. Waive false positives per line with
//! `// ddtr-lint: allow(lock-order) — <why the order is safe>`.

use super::{in_scope, Rule};
use crate::diag::Finding;
use crate::lex::{Tok, TokKind};
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// See the module docs. The watched file set lives in [`super::SCOPES`].
pub struct LockOrder;

/// Guard-preserving postfix methods after an acquire call.
const POSTFIX: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Names never recorded as call edges: acquire forms, the
/// guard-preserving postfixes (they resolve to std, not the workspace),
/// and `clone`/`drop` — the workspace has manual `Clone`/`Drop` impls,
/// and resolving every `.clone()` to whichever happens to be unique
/// would invent edges.
const NOT_CALLS: &[&str] = &[
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "map_err",
    "clone",
    "drop",
];

/// Keywords that look like `name (` but are not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "fn", "move",
];

/// One acquisition site inside a function body.
struct Acq {
    /// Lock identity (receiver identifier).
    lock: String,
    /// 1-based source line.
    line: usize,
    /// Locks already held at this point.
    under: Vec<String>,
}

/// One call site inside a function body.
struct CallSite {
    /// Callee name.
    name: String,
    /// `Qual::name(..)` path qualifier, if any.
    qual: Option<String>,
    /// `self.name(..)`.
    recv_self: bool,
    /// `recv.name(..)` (method syntax).
    is_method: bool,
    /// 1-based source line.
    line: usize,
    /// Locks held while the call runs.
    under: Vec<String>,
}

/// One analysed function.
struct FnInfo {
    /// `Type::name` or bare `name`.
    display: String,
    /// Index into `ws.files`.
    file: usize,
    /// Enclosing impl/trait type.
    self_ty: Option<String>,
    /// `crates/<name>` prefix of the defining file (empty for root src).
    crate_dir: String,
    acquires: Vec<Acq>,
    calls: Vec<CallSite>,
    /// A blocking source itself (`JobsPool::acquire` waits on a condvar
    /// until a permit frees).
    blocking: bool,
}

/// How a lock (or the blocking source) is reached from a function:
/// directly (`via: None`) or through a call to another function.
#[derive(Clone)]
struct Trace {
    via: Option<usize>,
}

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "no lock-acquisition cycles or guards held across jobs-pool blocking calls"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let fns = collect_fns(ws);
        let resolved = resolve_calls(&fns);

        // Transitive acquire sets and jobs-pool reachability, to fixpoint.
        let mut acquire_sets: Vec<BTreeMap<String, Trace>> = fns
            .iter()
            .map(|f| {
                let mut set = BTreeMap::new();
                for acq in &f.acquires {
                    set.entry(acq.lock.clone()).or_insert(Trace { via: None });
                }
                set
            })
            .collect();
        let mut blocks: Vec<Option<Trace>> = fns
            .iter()
            .map(|f| f.blocking.then_some(Trace { via: None }))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, calls) in resolved.iter().enumerate() {
                for &(_ci, gi) in calls {
                    let callee_locks: Vec<String> = acquire_sets[gi].keys().cloned().collect();
                    for lock in callee_locks {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            acquire_sets[fi].entry(lock)
                        {
                            e.insert(Trace { via: Some(gi) });
                            changed = true;
                        }
                    }
                    if blocks[gi].is_some() && blocks[fi].is_none() {
                        blocks[fi] = Some(Trace { via: Some(gi) });
                        changed = true;
                    }
                }
            }
        }

        // Lock graph: edge a → b when b is acquired (directly or through a
        // call) while a is held. One witness per edge, first writer wins
        // (files and functions are visited in sorted order).
        let mut edges: BTreeMap<String, BTreeMap<String, Witness>> = BTreeMap::new();
        let mut add_edge = |from: &str, to: &str, w: Witness| {
            edges
                .entry(from.to_string())
                .or_default()
                .entry(to.to_string())
                .or_insert(w);
        };
        let mut blocking_seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
        for (fi, f) in fns.iter().enumerate() {
            if !in_scope(self.name(), &ws.files[f.file].path) {
                continue;
            }
            for acq in &f.acquires {
                for held in &acq.under {
                    add_edge(
                        held,
                        &acq.lock,
                        Witness {
                            file: ws.files[f.file].path.clone(),
                            line: acq.line,
                            holder: f.display.clone(),
                            via: Vec::new(),
                        },
                    );
                }
            }
            for &(ci, gi) in &resolved[fi] {
                let call = &f.calls[ci];
                if call.under.is_empty() {
                    continue;
                }
                for lock in acquire_sets[gi].keys() {
                    let via = chain(&fns, &acquire_sets, gi, lock);
                    for held in &call.under {
                        add_edge(
                            held,
                            lock,
                            Witness {
                                file: ws.files[f.file].path.clone(),
                                line: call.line,
                                holder: f.display.clone(),
                                via: via.clone(),
                            },
                        );
                    }
                }
                if blocks[gi].is_some() {
                    let via = block_chain(&fns, &blocks, gi);
                    for held in &call.under {
                        if !blocking_seen.insert((f.file, call.line, held.clone())) {
                            continue;
                        }
                        out.push(Finding::deny(
                            &ws.files[f.file].path,
                            call.line,
                            self.name(),
                            format!(
                                "mutex guard `{held}` is held across `{}`{}, which blocks \
                                 until a jobs-pool permit frees; a saturated pool stalls \
                                 every other holder of `{held}` — drop the guard before \
                                 dispatching",
                                fns[gi].display,
                                fmt_via(&via),
                            ),
                        ));
                    }
                }
            }
        }

        for cycle in find_cycles(&edges) {
            let mut hops = Vec::new();
            for k in 0..cycle.len() {
                let (a, b) = (&cycle[k], &cycle[(k + 1) % cycle.len()]);
                let w = &edges[a][b];
                hops.push(format!(
                    "`{a}` → `{b}` at {}:{} in `{}`{}",
                    w.file,
                    w.line,
                    w.holder,
                    fmt_via(&w.via),
                ));
            }
            let first = &edges[&cycle[0]][&cycle[1 % cycle.len()]];
            let shape = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|l| format!("`{l}`"))
                .collect::<Vec<_>>()
                .join(" → ");
            out.push(Finding::deny(
                &first.file,
                first.line,
                self.name(),
                format!(
                    "lock acquisition cycle {shape}: {} — two threads taking these in \
                     opposite orders deadlock; pick one global order",
                    hops.join("; "),
                ),
            ));
        }
    }
}

/// One witness for a lock-graph edge.
struct Witness {
    file: String,
    line: usize,
    holder: String,
    /// Call path (callee display names) for transitive edges.
    via: Vec<String>,
}

fn fmt_via(via: &[String]) -> String {
    if via.is_empty() {
        String::new()
    } else {
        format!(
            " (via {})",
            via.iter()
                .map(|v| format!("`{v}`"))
                .collect::<Vec<_>>()
                .join(" → ")
        )
    }
}

/// Call path from `fi` down to the direct acquisition of `lock`.
fn chain(fns: &[FnInfo], sets: &[BTreeMap<String, Trace>], fi: usize, lock: &str) -> Vec<String> {
    let mut path = vec![fns[fi].display.clone()];
    let mut cur = fi;
    let mut hops = 0;
    while let Some(trace) = sets[cur].get(lock) {
        let Some(next) = trace.via else { break };
        path.push(fns[next].display.clone());
        cur = next;
        hops += 1;
        if hops > fns.len() {
            break;
        }
    }
    path
}

/// Call path from `fi` down to the blocking source.
fn block_chain(fns: &[FnInfo], blocks: &[Option<Trace>], fi: usize) -> Vec<String> {
    let mut path = Vec::new();
    let mut cur = fi;
    let mut hops = 0;
    while let Some(trace) = &blocks[cur] {
        let Some(next) = trace.via else { break };
        path.push(fns[next].display.clone());
        cur = next;
        hops += 1;
        if hops > fns.len() {
            break;
        }
    }
    path
}

/// Every simple cycle of the lock graph, each reported once: a DFS from
/// each start node that only walks nodes `>= start`, so the rotation
/// beginning at the cycle's minimum is the one emitted.
fn find_cycles(edges: &BTreeMap<String, BTreeMap<String, Witness>>) -> Vec<Vec<String>> {
    let mut cycles = Vec::new();
    for start in edges.keys() {
        let mut path = vec![start.clone()];
        dfs(edges, start, &mut path, &mut cycles);
    }
    cycles
}

fn dfs(
    edges: &BTreeMap<String, BTreeMap<String, Witness>>,
    start: &str,
    path: &mut Vec<String>,
    cycles: &mut Vec<Vec<String>>,
) {
    let cur = path.last().expect("non-empty path").clone();
    let Some(nexts) = edges.get(&cur) else { return };
    for next in nexts.keys() {
        if next == start {
            cycles.push(path.clone());
        } else if next.as_str() > start && !path.contains(next) {
            path.push(next.clone());
            dfs(edges, start, path, cycles);
            path.pop();
        }
    }
}

/// Analyses every non-test function defined under a `src/` directory.
/// The whole workspace is indexed (call resolution needs it); findings
/// are scope-gated by the caller.
fn collect_fns(ws: &Workspace) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        if !file.path.contains("src/") {
            continue;
        }
        let crate_dir = file
            .path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|name| format!("crates/{name}"))
            .unwrap_or_default();
        for item in file.scope.fns() {
            if item.is_test {
                continue;
            }
            let Some(body) = &item.body else { continue };
            let display = match &item.self_ty {
                Some(ty) => format!("{ty}::{}", item.name),
                None => item.name.clone(),
            };
            let (acquires, calls) = walk_body(&file.tokens, body.clone());
            let blocking = item.name == "acquire"
                && item.self_ty.as_deref().is_some_and(|t| t.contains("Pool"));
            fns.push(FnInfo {
                display,
                file: file_idx,
                self_ty: item.self_ty.clone(),
                crate_dir: crate_dir.clone(),
                acquires,
                calls,
                blocking,
            });
        }
    }
    fns
}

/// A guard being tracked during the body walk.
struct Guard {
    binding: Option<String>,
    lock: String,
    depth: i64,
    ephemeral: bool,
}

/// Extracts acquisitions and call sites from one body token range.
#[allow(clippy::too_many_lines)]
fn walk_body(toks: &[Tok], range: std::ops::Range<usize>) -> (Vec<Acq>, Vec<CallSite>) {
    let mut acquires = Vec::new();
    let mut calls = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let mut stmt_start = range.start;
    let held = |guards: &[Guard]| -> Vec<String> {
        let mut locks: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        locks.sort();
        locks.dedup();
        locks
    };
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.ephemeral && g.depth == depth));
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        // `drop(guard)` releases by name.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            let name = toks[i + 2].text.clone();
            guards.retain(|g| g.binding.as_deref() != Some(&name));
            i += 4;
            continue;
        }
        // Macro invocations are opaque (writeln! et al. call no workspace
        // functions we could resolve).
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            i += 2;
            continue;
        }
        // Acquisition: `.lock()` / zero-argument `.read()` / `.write()`.
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("lock") || n.is_ident("read") || n.is_ident("write"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(lock) = receiver_name(toks, range.start, i) {
                acquires.push(Acq {
                    lock: lock.clone(),
                    line: toks[i + 1].line,
                    under: held(&guards),
                });
                let persistent = guard_persists(toks, i + 4, range.end)
                    && toks.get(stmt_start).is_some_and(|t| t.is_ident("let"));
                let binding = persistent.then(|| binding_name(toks, stmt_start)).flatten();
                guards.push(Guard {
                    ephemeral: !(persistent && binding.is_some()),
                    binding,
                    lock,
                    depth,
                });
            }
            i += 4;
            continue;
        }
        // Method call `recv.name(..)`.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let name = toks[i + 1].text.clone();
            if !NOT_CALLS.contains(&name.as_str()) {
                calls.push(CallSite {
                    recv_self: i > range.start && toks[i - 1].is_ident("self"),
                    name,
                    qual: None,
                    is_method: true,
                    line: toks[i + 1].line,
                    under: held(&guards),
                });
            }
            i += 3;
            continue;
        }
        // Free or path call `name(..)` / `Qual::name(..)`.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !KEYWORDS.contains(&t.text.as_str())
            && !(i > range.start && toks[i - 1].is_punct('.'))
            && !(i > range.start && toks[i - 1].is_ident("fn"))
            && !NOT_CALLS.contains(&t.text.as_str())
        {
            let qual = (i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == TokKind::Ident)
                .then(|| toks[i - 3].text.clone());
            calls.push(CallSite {
                name: t.text.clone(),
                qual,
                recv_self: false,
                is_method: false,
                line: t.line,
                under: held(&guards),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    (acquires, calls)
}

/// The receiver identifier of `recv.lock()` at the `.` token `dot`:
/// the identifier just before the dot (skipping one balanced call-paren
/// group, so `self.state().lock()` names `state`). `self.x.lock()` names
/// `x`.
fn receiver_name(toks: &[Tok], start: usize, dot: usize) -> Option<String> {
    if dot == start {
        return None;
    }
    let mut j = dot - 1;
    if toks[j].is_punct(')') {
        let mut depth = 0i64;
        loop {
            if toks[j].is_punct(')') {
                depth += 1;
            } else if toks[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == start {
                return None;
            }
            j -= 1;
        }
        if j == start {
            return None;
        }
        j -= 1;
    }
    (toks[j].kind == TokKind::Ident && toks[j].text != "self").then(|| toks[j].text.clone())
}

/// Whether only guard-preserving postfixes (`?`, `.unwrap()`, …) follow
/// the acquire call before the statement's `;`.
fn guard_persists(toks: &[Tok], mut i: usize, end: usize) -> bool {
    while i < end {
        let t = &toks[i];
        if t.is_punct(';') {
            return true;
        }
        if t.is_punct('?') {
            i += 1;
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| POSTFIX.contains(&n.text.as_str()))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            // Skip past the postfix's balanced argument list.
            let mut depth = 0i64;
            i += 2;
            while i < end {
                if toks[i].is_punct('(') {
                    depth += 1;
                } else if toks[i].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        return false;
    }
    false
}

/// The binding name of `let [mut] name [: Ty] = …` starting at `i`.
fn binding_name(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    toks.get(j)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Resolves every call site of every function; returns, per function,
/// `(call index, target function index)` pairs.
fn resolve_calls(fns: &[FnInfo]) -> Vec<Vec<(usize, usize)>> {
    let mut by_key: BTreeMap<(Option<&str>, &str), Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        let (_, name) = f
            .display
            .rsplit_once("::")
            .map_or(("", f.display.as_str()), |(t, n)| (t, n));
        by_key
            .entry((f.self_ty.as_deref(), name))
            .or_default()
            .push(idx);
        by_name.entry(name).or_default().push(idx);
    }
    fns.iter()
        .map(|f| {
            f.calls
                .iter()
                .enumerate()
                .filter_map(|(ci, call)| {
                    resolve_one(f, call, &by_key, &by_name, fns).map(|gi| (ci, gi))
                })
                .collect()
        })
        .collect()
}

fn resolve_one(
    caller: &FnInfo,
    call: &CallSite,
    by_key: &BTreeMap<(Option<&str>, &str), Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnInfo],
) -> Option<usize> {
    let name = call.name.as_str();
    // `self.method(..)` — the enclosing impl type wins.
    if call.is_method && call.recv_self {
        if let Some(ty) = caller.self_ty.as_deref() {
            if let Some(c) = by_key.get(&(Some(ty), name)) {
                if c.len() == 1 {
                    return Some(c[0]);
                }
            }
        }
    }
    // `Qual::name(..)` — exact type match, `Self`, or a `ddtr_*` crate
    // path narrowing the candidate set.
    if let Some(qual) = call.qual.as_deref() {
        let qual = if qual == "Self" {
            caller.self_ty.as_deref().unwrap_or(qual)
        } else {
            qual
        };
        if let Some(c) = by_key.get(&(Some(qual), name)) {
            if c.len() == 1 {
                return Some(c[0]);
            }
        }
        if let Some(krate) = qual.strip_prefix("ddtr_") {
            let dir = format!("crates/{krate}");
            let c: Vec<usize> = by_name
                .get(name)?
                .iter()
                .copied()
                .filter(|&i| fns[i].crate_dir == dir)
                .collect();
            if c.len() == 1 {
                return Some(c[0]);
            }
        }
        return None;
    }
    // Bare name: only a workspace-unique name resolves.
    let c = by_name.get(name)?;
    (c.len() == 1).then_some(c[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SourceFile, Workspace};

    fn check(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_files(
            files
                .iter()
                .map(|(p, s)| SourceFile::from_source(p, s))
                .collect(),
        );
        let mut out = Vec::new();
        LockOrder.check(&ws, &mut out);
        out
    }

    #[test]
    fn two_function_inversion_is_a_cycle_with_a_witness_chain() {
        let out = check(&[(
            "crates/engine/src/x.rs",
            "impl Eng {\n\
             fn ab(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn ba(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n\
             }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        let msg = &out[0].message;
        assert!(msg.contains("cycle"), "{msg}");
        assert!(msg.contains("`alpha` → `beta`"), "{msg}");
        assert!(msg.contains("`beta` → `alpha`"), "{msg}");
        assert!(msg.contains("Eng::ab"), "{msg}");
        assert!(msg.contains("Eng::ba"), "{msg}");
    }

    #[test]
    fn cross_function_inversion_goes_through_call_edges() {
        let out = check(&[(
            "crates/serve/src/x.rs",
            "impl Srv {\n\
             fn outer(&self) { let g = self.state.lock().unwrap(); self.helper(); }\n\
             fn helper(&self) { let c = self.cache.lock().unwrap(); }\n\
             fn inverted(&self) { let c = self.cache.lock().unwrap(); let g = self.state.lock().unwrap(); }\n\
             }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("via `Srv::helper`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn guard_across_pool_acquire_is_flagged_and_scoped_guards_are_not() {
        let out = check(&[(
            "crates/serve/src/x.rs",
            "impl Pool { fn acquire(&self) { let s = self.state.lock().unwrap(); } }\n\
             impl Srv {\n\
             fn bad(&self) { let g = self.inflight.lock().unwrap(); self.dispatch(); }\n\
             fn dispatch(&self) { self.pool_handle.acquire(); }\n\
             fn good(&self) { { let g = self.inflight.lock().unwrap(); } self.dispatch(); }\n\
             }\n",
        )]);
        let blocking: Vec<_> = out
            .iter()
            .filter(|f| f.message.contains("jobs-pool"))
            .collect();
        assert_eq!(blocking.len(), 1, "{out:?}");
        assert_eq!(blocking[0].line, 3);
        assert!(blocking[0].message.contains("`inflight`"));
    }

    #[test]
    fn temporaries_and_dropped_guards_create_no_edges() {
        let out = check(&[(
            "crates/obs/src/x.rs",
            "impl Reg {\n\
             fn a(&self) { self.counters.lock().unwrap().insert(1); let g = self.gauges.lock().unwrap(); }\n\
             fn b(&self) { let g = self.gauges.lock().unwrap(); drop(g); let c = self.counters.lock().unwrap(); }\n\
             }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
