//! A lightweight item parser over the token stream.
//!
//! Rules that reason about *shape* — which functions exist (and on which
//! impl type), where their bodies start and end, what fields a struct or
//! enum variant carries, which items are `#[cfg(test)]` — get it from
//! here instead of re-deriving it from line heuristics. The parser is
//! deliberately partial: it tracks items, attributes, visibility,
//! impl/mod/trait nesting and brace-balanced bodies, and skips anything
//! it does not understand one token at a time. Because it walks the
//! [`crate::lex`] token stream, braces inside strings, chars or comments
//! can never desynchronise it — the failure mode the old line blanker
//! was one odd literal away from.

use crate::lex::{Tok, TokKind};

/// What kind of item a [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl method or trait default method).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `impl` block.
    Impl,
    /// `mod` with an inline body.
    Mod,
    /// `trait` definition.
    Trait,
}

/// One named field of a struct or struct-variant.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Attribute texts (`#[serde(default)]`), concatenated token-wise.
    pub attrs: Vec<String>,
    /// Concatenated type tokens (`Option<String>`).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// Attribute texts.
    pub attrs: Vec<String>,
    /// Named fields (struct variants only; tuple payloads have none).
    pub fields: Vec<FieldDef>,
    /// 1-based line of the variant name.
    pub line: usize,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name; for `impl` blocks, the self type's last path segment.
    pub name: String,
    /// For `fn`s inside `impl`/`trait` blocks: the self type.
    pub self_ty: Option<String>,
    /// Attribute texts, token-concatenated (`#[cfg(test)]`).
    pub attrs: Vec<String>,
    /// 1-based first line (the first attribute, if any).
    pub start_line: usize,
    /// 1-based last line of the item.
    pub end_line: usize,
    /// Token index range of the `{ … }` body, braces excluded.
    pub body: Option<std::ops::Range<usize>>,
    /// Named fields (structs only).
    pub fields: Vec<FieldDef>,
    /// Variants (enums only).
    pub variants: Vec<VariantDef>,
    /// Inside a `#[cfg(test)]` item (directly or via an enclosing item).
    pub is_test: bool,
}

/// Every item of one file, flattened (nested items follow their parent).
#[derive(Debug, Default)]
pub struct FileScope {
    /// All items in source order.
    pub items: Vec<Item>,
}

impl FileScope {
    /// Parses the whole token stream.
    #[must_use]
    pub fn parse(tokens: &[Tok]) -> FileScope {
        let mut scope = FileScope::default();
        parse_items(tokens, 0, tokens.len(), None, false, &mut scope.items);
        scope
    }

    /// All functions, in source order.
    pub fn fns(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|i| i.kind == ItemKind::Fn)
    }

    /// The struct or enum named `name`, if any (non-test preferred).
    #[must_use]
    pub fn type_item(&self, name: &str) -> Option<&Item> {
        self.items
            .iter()
            .find(|i| matches!(i.kind, ItemKind::Struct | ItemKind::Enum) && i.name == name)
    }
}

/// Whether an attribute text marks a test item (`#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[test]`).
fn is_test_attr(attr: &str) -> bool {
    attr == "#[test]" || (attr.starts_with("#[cfg(") && attr.contains("test"))
}

fn parse_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    in_test: bool,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    while i < end {
        let item_start = i;
        let mut attrs = Vec::new();
        while i < end && toks[i].is_punct('#') {
            let (attr, next) = consume_attr(toks, i, end);
            attrs.push(attr);
            i = next;
        }
        if i >= end {
            break;
        }
        // Visibility and item-position modifiers.
        while i < end {
            let t = &toks[i];
            if t.is_ident("pub") {
                i += 1;
                if i < end && toks[i].is_punct('(') {
                    i = skip_balanced(toks, i, end, '(', ')');
                }
            } else if t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("default") {
                i += 1;
            } else if t.is_ident("extern") {
                i += 1;
                if i < end && toks[i].kind == TokKind::Str {
                    i += 1;
                }
            } else if t.is_ident("const") && i + 1 < end && toks[i + 1].is_ident("fn") {
                i += 1; // `const fn` — const as a modifier
            } else {
                break;
            }
        }
        if i >= end {
            break;
        }
        let attr_line = toks.get(item_start).map_or(toks[i].line, |t| t.line);
        let test_here = in_test || attrs.iter().any(|a| is_test_attr(a));
        let kw = &toks[i];
        if kw.is_ident("fn") {
            i = parse_fn(toks, i, end, self_ty, &attrs, attr_line, test_here, out);
        } else if kw.is_ident("struct") || kw.is_ident("enum") || kw.is_ident("union") {
            i = parse_type_item(toks, i, end, &attrs, attr_line, test_here, out);
        } else if kw.is_ident("impl") {
            i = parse_impl(toks, i, end, &attrs, attr_line, test_here, out);
        } else if kw.is_ident("mod") || kw.is_ident("trait") {
            i = parse_mod_or_trait(toks, i, end, &attrs, attr_line, test_here, out);
        } else if kw.is_ident("macro_rules") {
            i = skip_to_body_or_semi(toks, i, end).1;
        } else if kw.is_ident("use")
            || kw.is_ident("type")
            || kw.is_ident("static")
            || kw.is_ident("const")
        {
            i = skip_to_semi(toks, i, end);
        } else {
            i += 1;
        }
    }
}

/// Consumes `#[…]` / `#![…]` starting at `i`; returns the concatenated
/// text and the index past the closing `]`.
fn consume_attr(toks: &[Tok], i: usize, end: usize) -> (String, usize) {
    let mut text = String::from("#");
    let mut j = i + 1;
    if j < end && toks[j].is_punct('!') {
        text.push('!');
        j += 1;
    }
    if j >= end || !toks[j].is_punct('[') {
        return (text, j);
    }
    let mut depth = 0usize;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Str {
            text.push('"');
            text.push_str(&t.text);
            text.push('"');
        } else {
            text.push_str(&t.text);
        }
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (text, j + 1);
            }
        }
        j += 1;
    }
    (text, j)
}

/// Index past the balanced `open…close` group starting at `i` (which
/// must sit on `open`).
fn skip_balanced(toks: &[Tok], i: usize, end: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < end {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index past the next `;` at zero brace/paren/bracket depth.
fn skip_to_semi(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Scans from `i` for the first `{` or `;` at zero paren/bracket depth,
/// ignoring `->`'s `>`; returns `(body token range if braced, index past
/// the item)`.
fn skip_to_body_or_semi(
    toks: &[Tok],
    i: usize,
    end: usize,
) -> (Option<std::ops::Range<usize>>, usize) {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return (None, j + 1);
        } else if t.is_punct('{') && depth == 0 {
            let past = skip_balanced(toks, j, end, '{', '}');
            return (Some(j + 1..past.saturating_sub(1)), past);
        }
        j += 1;
    }
    (None, j)
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Tok],
    i: usize,
    end: usize,
    self_ty: Option<&str>,
    attrs: &[String],
    attr_line: usize,
    is_test: bool,
    out: &mut Vec<Item>,
) -> usize {
    let name = toks
        .get(i + 1)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let (body, past) = skip_to_body_or_semi(toks, i + 1, end);
    let end_line = toks
        .get(past.saturating_sub(1))
        .map_or(attr_line, |t| t.end_line);
    out.push(Item {
        kind: ItemKind::Fn,
        name,
        self_ty: self_ty.map(str::to_string),
        attrs: attrs.to_vec(),
        start_line: attr_line,
        end_line,
        body,
        fields: Vec::new(),
        variants: Vec::new(),
        is_test,
    });
    past
}

fn parse_type_item(
    toks: &[Tok],
    i: usize,
    end: usize,
    attrs: &[String],
    attr_line: usize,
    is_test: bool,
    out: &mut Vec<Item>,
) -> usize {
    let is_enum = toks[i].is_ident("enum");
    let name = toks
        .get(i + 1)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let (body, past) = skip_to_body_or_semi(toks, i + 1, end);
    let end_line = toks
        .get(past.saturating_sub(1))
        .map_or(attr_line, |t| t.end_line);
    let (mut fields, mut variants) = (Vec::new(), Vec::new());
    if let Some(range) = &body {
        if is_enum {
            variants = parse_variants(toks, range.clone());
        } else {
            fields = parse_fields(toks, range.clone());
        }
    }
    out.push(Item {
        kind: if is_enum {
            ItemKind::Enum
        } else {
            ItemKind::Struct
        },
        name,
        self_ty: None,
        attrs: attrs.to_vec(),
        start_line: attr_line,
        end_line,
        body,
        fields,
        variants,
        is_test,
    });
    past
}

fn parse_impl(
    toks: &[Tok],
    i: usize,
    end: usize,
    attrs: &[String],
    attr_line: usize,
    is_test: bool,
    out: &mut Vec<Item>,
) -> usize {
    // `impl[<…>] [Trait for] Type[<…>] [where …] { … }` — the self type
    // is the ident right before the first `<` after any `for`, or the
    // last ident seen before the body.
    let mut j = i + 1;
    if j < end && toks[j].is_punct('<') {
        j = skip_angles(toks, j, end);
    }
    let mut ty = String::new();
    let mut ty_locked = false;
    let mut depth = 0i64;
    while j < end {
        let t = &toks[j];
        if t.is_punct('{') && depth == 0 {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_ident("for") {
                // `impl Trait for Type` — restart on the real self type.
                ty.clear();
                ty_locked = false;
            } else if t.is_ident("where") {
                break;
            } else if t.is_punct('<') {
                ty_locked = true; // `ConnWriter<W>` — keep `ConnWriter`
            } else if t.kind == TokKind::Ident && !ty_locked {
                ty = t.text.clone();
            }
        }
        j += 1;
    }
    let (body, past) = skip_to_body_or_semi(toks, j, end);
    let end_line = toks
        .get(past.saturating_sub(1))
        .map_or(attr_line, |t| t.end_line);
    out.push(Item {
        kind: ItemKind::Impl,
        name: ty.clone(),
        self_ty: None,
        attrs: attrs.to_vec(),
        start_line: attr_line,
        end_line,
        body: body.clone(),
        fields: Vec::new(),
        variants: Vec::new(),
        is_test,
    });
    if let Some(range) = body {
        parse_items(toks, range.start, range.end, Some(&ty), is_test, out);
    }
    past
}

fn parse_mod_or_trait(
    toks: &[Tok],
    i: usize,
    end: usize,
    attrs: &[String],
    attr_line: usize,
    is_test: bool,
    out: &mut Vec<Item>,
) -> usize {
    let is_trait = toks[i].is_ident("trait");
    let name = toks
        .get(i + 1)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let (body, past) = skip_to_body_or_semi(toks, i + 1, end);
    let end_line = toks
        .get(past.saturating_sub(1))
        .map_or(attr_line, |t| t.end_line);
    out.push(Item {
        kind: if is_trait {
            ItemKind::Trait
        } else {
            ItemKind::Mod
        },
        name: name.clone(),
        self_ty: None,
        attrs: attrs.to_vec(),
        start_line: attr_line,
        end_line,
        body: body.clone(),
        fields: Vec::new(),
        variants: Vec::new(),
        is_test,
    });
    if let Some(range) = body {
        let ty = is_trait.then_some(name.as_str());
        parse_items(toks, range.start, range.end, ty, is_test, out);
    }
    past
}

/// Index past a balanced `<…>` group, treating `->`'s `>` as inert.
fn skip_angles(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = j > 0 && toks[j - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// Parses `name: Type` fields at depth 0 of a struct (or struct-variant)
/// body token range.
fn parse_fields(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut i = range.start;
    let end = range.end;
    while i < end {
        let mut attrs = Vec::new();
        while i < end && toks[i].is_punct('#') {
            let (attr, next) = consume_attr(toks, i, end);
            attrs.push(attr);
            i = next;
        }
        if i < end && toks[i].is_ident("pub") {
            i += 1;
            if i < end && toks[i].is_punct('(') {
                i = skip_balanced(toks, i, end, '(', ')');
            }
        }
        if i + 1 < end && toks[i].kind == TokKind::Ident && toks[i + 1].is_punct(':') {
            let name = toks[i].text.clone();
            let line = toks[i].line;
            i += 2;
            // The type runs to the next `,` at zero nesting depth.
            let mut ty = String::new();
            let mut depth = 0i64;
            let mut angles = 0i64;
            while i < end {
                let t = &toks[i];
                if t.is_punct(',') && depth == 0 && angles <= 0 {
                    i += 1;
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct('<') {
                    angles += 1;
                } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
                    angles -= 1;
                }
                ty.push_str(&t.text);
                i += 1;
            }
            fields.push(FieldDef {
                name,
                attrs,
                ty,
                line,
            });
        } else {
            i += 1;
        }
    }
    fields
}

/// Parses enum variants at depth 0 of an enum body token range.
fn parse_variants(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<VariantDef> {
    let mut variants = Vec::new();
    let mut i = range.start;
    let end = range.end;
    while i < end {
        let mut attrs = Vec::new();
        while i < end && toks[i].is_punct('#') {
            let (attr, next) = consume_attr(toks, i, end);
            attrs.push(attr);
            i = next;
        }
        if i >= end || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i].text.clone();
        let line = toks[i].line;
        i += 1;
        let mut fields = Vec::new();
        if i < end && toks[i].is_punct('(') {
            i = skip_balanced(toks, i, end, '(', ')');
        } else if i < end && toks[i].is_punct('{') {
            let past = skip_balanced(toks, i, end, '{', '}');
            fields = parse_fields(toks, i + 1..past.saturating_sub(1));
            i = past;
        }
        // Optional discriminant, then the separating comma.
        while i < end && !toks[i].is_punct(',') {
            if toks[i].is_punct('{') || toks[i].is_punct('(') {
                i = skip_balanced(
                    toks,
                    i,
                    end,
                    if toks[i].is_punct('{') { '{' } else { '(' },
                    if toks[i].is_punct('{') { '}' } else { ')' },
                );
            } else {
                i += 1;
            }
        }
        i += 1; // the comma
        variants.push(VariantDef {
            name,
            attrs,
            fields,
            line,
        });
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> FileScope {
        FileScope::parse(&lex(src).tokens)
    }

    #[test]
    fn fns_get_bodies_and_impl_types() {
        let s = parse(
            "fn free() { let x = 1; }\n\
             impl<W: Write> ConnWriter<W> {\n    pub fn emit(&self) -> bool { true }\n}\n\
             impl Drop for JobsPermit { fn drop(&mut self) {} }\n",
        );
        let fns: Vec<(&str, Option<&str>)> = s
            .fns()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref()))
            .collect();
        assert_eq!(
            fns,
            [
                ("free", None),
                ("emit", Some("ConnWriter")),
                ("drop", Some("JobsPermit")),
            ]
        );
        assert!(s.fns().all(|f| f.body.is_some()));
    }

    #[test]
    fn structs_collect_fields_with_attrs_and_types() {
        let s = parse(
            "pub struct JobSpec {\n\
                 pub mode: String,\n\
                 #[serde(default)]\n    pub quick: bool,\n\
                 pub mem: Option<String>,\n\
             }\n",
        );
        let item = s.type_item("JobSpec").expect("struct");
        let names: Vec<&str> = item.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["mode", "quick", "mem"]);
        assert_eq!(item.fields[1].attrs, ["#[serde(default)]"]);
        assert_eq!(item.fields[2].ty, "Option<String>");
    }

    #[test]
    fn enums_collect_variants_and_struct_variant_fields() {
        let s = parse(
            "enum Event {\n\
                 Hello { protocol: u32, jobs: usize },\n\
                 Run(Box<JobSpec>),\n\
                 Bye,\n\
             }\n",
        );
        let item = s.type_item("Event").expect("enum");
        let names: Vec<&str> = item.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Hello", "Run", "Bye"]);
        let hello = &item.variants[0];
        assert_eq!(hello.fields.len(), 2);
        assert_eq!(hello.fields[0].name, "protocol");
    }

    #[test]
    fn cfg_test_marks_items_and_their_children() {
        let s = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\
             #[test]\nfn direct() {}\n",
        );
        let by_name = |n: &str| s.items.iter().find(|i| i.name == n).expect("item");
        assert!(!by_name("live").is_test);
        assert!(by_name("tests").is_test);
        assert!(by_name("t").is_test);
        assert!(by_name("direct").is_test);
    }

    #[test]
    fn fn_bodies_survive_tricky_literals() {
        let s = parse("fn a() { let s = \"}{\"; let c = '}'; let r = r#\"}}}\"#; }\nfn b() {}\n");
        let names: Vec<&str> = s.fns().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn where_clauses_and_arrows_do_not_derail() {
        let s = parse(
            "impl<F: FnOnce() -> usize> Holder<F> where F: Send { fn go(&self) -> usize { 1 } }\n",
        );
        let f = s.fns().next().expect("fn");
        assert_eq!(f.name, "go");
        assert_eq!(f.self_ty.as_deref(), Some("Holder"));
    }
}
