//! `ddtr_lint` — the workspace invariant checker behind the `ddtr-lint`
//! bin.
//!
//! The repo's core guarantees — byte-identical Pareto fronts at any
//! `--jobs`, NaN-safe float ordering, structured errors (never panics)
//! across the serve protocol boundary, mutex guards never held across
//! blocking I/O, lock acquisitions that cannot deadlock, a wire
//! protocol old peers keep decoding, docs that match the code, and
//! `CacheKey` fingerprints that cover every config field — were
//! enforced by hand-audit through PR 5, and had already started
//! regressing. This crate mechanizes them as eight rules (see
//! [`rules`]) that run in milliseconds on every CI push:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-ord` | comparators use `f64::total_cmp`, never `partial_cmp` |
//! | `no-panic-boundary` | serve/dispatch request paths return structured errors |
//! | `det-iter` | no hash-order iteration in determinism-critical modules |
//! | `cache-key-coverage` | config fields are declared fingerprint-covered in key.rs |
//! | `lock-across-io` | no mutex guard held across write/flush in crates/serve |
//! | `lock-order` | no acquisition cycles; no guard held across a pool-blocking call |
//! | `serde-compat` | wire types stay decodable by v1 peers (pinned manifest) |
//! | `doc-drift` | metric names, protocol variants and CLI verbs match their docs |
//!
//! The checker is deliberately dependency-light (no `syn`, like the
//! repo's hand-written vendored serde derive): a small Rust lexer
//! ([`lex`]) turns each file into tokens — raw strings, nested block
//! comments and char-vs-lifetime handled for real — and a brace-scope
//! parser ([`scope`]) recovers functions, impls, fields and attributes
//! for the rules to match on. False positives are handled by per-line
//! waivers:
//!
//! ```text
//! // ddtr-lint: allow(det-iter) — keys are collected and sorted below
//! ```
//!
//! A waiver must name the rule and carry a reason; unused waivers are
//! reported (and fail under `--deny-all`) so stale ones cannot
//! accumulate. See `docs/LINTS.md` for the full catalog and workflow.

pub mod diag;
pub mod lex;
pub mod rules;
pub mod scope;
pub mod source;

pub use diag::{Finding, Severity};
pub use rules::{all_rules, Rule};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// One markdown document the `doc-drift` rule cross-checks against code.
#[derive(Debug)]
pub struct DocFile {
    /// Workspace-relative path (`README.md`, `docs/OBSERVABILITY.md`).
    pub path: String,
    /// The document's lines, verbatim.
    pub lines: Vec<String>,
}

impl DocFile {
    /// Builds a doc from in-memory text (fixtures).
    #[must_use]
    pub fn from_text(path: &str, text: &str) -> DocFile {
        DocFile {
            path: path.to_string(),
            lines: text.lines().map(str::to_string).collect(),
        }
    }
}

/// The preprocessed source set of one workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Preprocessed files, sorted by path for deterministic output.
    pub files: Vec<SourceFile>,
    /// Markdown documents (`README.md` plus `docs/*.md`), sorted by path.
    pub docs: Vec<DocFile>,
}

/// Directories scanned inside the root and inside each `crates/*` member.
const SCAN_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

impl Workspace {
    /// Loads every first-party `.rs` file under `root`: `src/`, `tests/`,
    /// `examples/`, `benches/` at the root and per crate. `vendor/` (the
    /// offline stand-ins), `target/` and this crate's own `fixtures/`
    /// corpus are excluded.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while walking or reading.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rels: Vec<PathBuf> = Vec::new();
        for dir in SCAN_DIRS {
            collect_rs(&root.join(dir), Path::new(dir), &mut rels)?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                let name = member.file_name().unwrap_or_default().to_os_string();
                for dir in SCAN_DIRS {
                    let rel = Path::new("crates").join(&name).join(dir);
                    collect_rs(&member.join(dir), &rel, &mut rels)?;
                }
            }
        }
        rels.sort();
        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            let rel_str = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::load(&root.join(&rel), &rel_str)?);
        }
        let docs = load_docs(root)?;
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            docs,
        })
    }

    /// Builds a workspace from preprocessed in-memory files — the fixture
    /// tests use this to place snippets under rule-scoped paths.
    #[must_use]
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files,
            docs: Vec::new(),
        }
    }

    /// Like [`Workspace::from_files`], with markdown docs for the
    /// `doc-drift` fixture tests.
    #[must_use]
    pub fn from_files_and_docs(files: Vec<SourceFile>, docs: Vec<DocFile>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files,
            docs,
        }
    }
}

/// Loads `README.md` and `docs/*.md` for the `doc-drift` rule.
fn load_docs(root: &Path) -> std::io::Result<Vec<DocFile>> {
    let mut docs = Vec::new();
    let readme = root.join("README.md");
    if readme.is_file() {
        docs.push(DocFile::from_text(
            "README.md",
            &std::fs::read_to_string(&readme)?,
        ));
    }
    let docs_dir = root.join("docs");
    if docs_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&docs_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            docs.push(DocFile::from_text(
                &format!("docs/{name}"),
                &std::fs::read_to_string(&path)?,
            ));
        }
    }
    Ok(docs)
}

/// Recursively collects `.rs` files under `dir` (absolute), recording
/// root-relative paths. Skips `fixtures/` subtrees — the lint crate's
/// corpus of deliberately bad snippets.
fn collect_rs(dir: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(Result::ok).collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, &rel.join(&name), out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel.join(&name));
        }
    }
    Ok(())
}

/// Outcome of one checker run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings (waived ones removed), sorted by file/line/rule.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Number of waivers that suppressed a finding.
    pub waivers_used: usize,
}

impl Report {
    /// Whether the run should fail: any deny finding, or — under
    /// `deny_all` — any finding at all.
    #[must_use]
    pub fn failed(&self, deny_all: bool) -> bool {
        self.findings
            .iter()
            .any(|f| deny_all || f.severity == Severity::Deny)
    }
}

/// Runs every rule over the workspace, applies waivers, and reports
/// waiver hygiene (unused waivers, unknown rule names, missing reasons).
#[must_use]
pub fn run(ws: &Workspace) -> Report {
    let rules = all_rules();
    let mut raw: Vec<Finding> = Vec::new();
    for rule in &rules {
        rule.check(ws, &mut raw);
    }
    let known: Vec<&str> = rules.iter().map(|r| r.name()).collect();

    // A finding survives unless a waiver for its rule covers its line.
    let mut used: std::collections::BTreeSet<(String, usize)> = std::collections::BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let waived = ws
            .files
            .iter()
            .find(|f| f.path == finding.file)
            .and_then(|f| {
                f.waivers
                    .iter()
                    .find(|w| w.rule == finding.rule && w.applies_to == finding.line)
            });
        match waived {
            Some(w) => {
                used.insert((finding.file.clone(), w.line));
            }
            None => findings.push(finding),
        }
    }

    // Waiver hygiene.
    for file in &ws.files {
        for w in &file.waivers {
            if !known.contains(&w.rule.as_str()) {
                findings.push(Finding::warn(
                    &file.path,
                    w.line,
                    "unknown-waiver",
                    format!(
                        "waiver names unknown rule `{}` (see `ddtr-lint --list`)",
                        w.rule
                    ),
                ));
            } else if !used.contains(&(file.path.clone(), w.line)) {
                findings.push(Finding::warn(
                    &file.path,
                    w.line,
                    "unused-waiver",
                    format!(
                        "waiver for `{}` suppresses nothing any more — remove it",
                        w.rule
                    ),
                ));
            } else if !w.has_reason {
                findings.push(Finding::warn(
                    &file.path,
                    w.line,
                    "bare-waiver",
                    format!(
                        "waiver for `{}` carries no justification — add one after the \
                         closing paren",
                        w.rule
                    ),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    Report {
        findings,
        files_checked: ws.files.len(),
        waivers_used: used.len(),
    }
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — how the bin finds the root regardless of the
/// invocation directory.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
