//! Table-driven fixture tests: each rule catches its seeded violations
//! (exact lines, no false positives) and honours waivers — plus a
//! self-run proving the real workspace is clean.

use ddtr_lint::{run, DocFile, Severity, SourceFile, Workspace};
use std::path::Path;

/// Loads a fixture from `crates/lint/fixtures/` under a synthetic
/// workspace-relative path, placing it into the wanted rule scope.
fn fixture(name: &str, synthetic_path: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    SourceFile::from_source(synthetic_path, &text)
}

/// Deny-level findings of one rule as `(line, rule)` pairs.
fn deny_lines(ws: &Workspace, rule: &str) -> Vec<usize> {
    run(ws)
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Deny)
        .map(|f| f.line)
        .collect()
}

struct Case {
    fixture: &'static str,
    /// Synthetic path that places the fixture into the rule's scope.
    path: &'static str,
    rule: &'static str,
    /// Expected deny lines (after waivers).
    expect: &'static [usize],
    /// Expected number of honoured waivers.
    waivers: usize,
}

const CASES: &[Case] = &[
    Case {
        fixture: "float_ord_bad.rs",
        path: "src/fixture.rs",
        rule: "float-ord",
        expect: &[4, 10],
        waivers: 1,
    },
    Case {
        fixture: "float_ord_good.rs",
        path: "src/fixture.rs",
        rule: "float-ord",
        expect: &[],
        waivers: 0,
    },
    Case {
        fixture: "no_panic_bad.rs",
        path: "crates/serve/src/fixture.rs",
        rule: "no-panic-boundary",
        expect: &[4, 5, 7, 10, 13, 14],
        waivers: 0,
    },
    Case {
        fixture: "no_panic_good.rs",
        path: "crates/serve/src/fixture.rs",
        rule: "no-panic-boundary",
        expect: &[],
        waivers: 0,
    },
    Case {
        fixture: "det_iter_bad.rs",
        path: "crates/pareto/src/fixture.rs",
        rule: "det-iter",
        expect: &[11, 15, 23],
        waivers: 1,
    },
    Case {
        fixture: "det_iter_good.rs",
        path: "crates/pareto/src/fixture.rs",
        rule: "det-iter",
        expect: &[],
        waivers: 0,
    },
    Case {
        fixture: "lock_io_bad.rs",
        path: "crates/serve/src/fixture.rs",
        rule: "lock-across-io",
        expect: &[8, 12],
        waivers: 1,
    },
    Case {
        fixture: "lock_io_good.rs",
        path: "crates/serve/src/fixture.rs",
        rule: "lock-across-io",
        expect: &[],
        waivers: 0,
    },
    Case {
        fixture: "lock_order_bad.rs",
        path: "crates/engine/src/fixture.rs",
        rule: "lock-order",
        expect: &[12],
        waivers: 0,
    },
    Case {
        fixture: "lock_order_good.rs",
        path: "crates/engine/src/fixture.rs",
        rule: "lock-order",
        expect: &[],
        waivers: 0,
    },
    Case {
        fixture: "serde_compat_bad.rs",
        path: "crates/serve/src/protocol.rs",
        rule: "serde-compat",
        expect: &[14],
        waivers: 0,
    },
    Case {
        fixture: "serde_compat_good.rs",
        path: "crates/serve/src/protocol.rs",
        rule: "serde-compat",
        expect: &[],
        waivers: 0,
    },
    // The lexer-regression fixture hides banned tokens inside raw
    // strings, nested block comments and char literals; the old
    // line-blanker misparsed it and flagged them.
    Case {
        fixture: "lexer_regression.rs",
        path: "crates/serve/src/fixture.rs",
        rule: "no-panic-boundary",
        expect: &[],
        waivers: 0,
    },
];

#[test]
fn each_rule_catches_seeded_violations_and_honours_waivers() {
    for case in CASES {
        let ws = Workspace::from_files(vec![fixture(case.fixture, case.path)]);
        let lines = deny_lines(&ws, case.rule);
        assert_eq!(
            lines, case.expect,
            "{}: wrong {} findings",
            case.fixture, case.rule
        );
        let report = run(&ws);
        assert_eq!(
            report.waivers_used, case.waivers,
            "{}: wrong waiver count",
            case.fixture
        );
        // Out-of-scope placement must silence scoped rules entirely.
        if case.rule != "float-ord" && !case.expect.is_empty() {
            let out = Workspace::from_files(vec![fixture(case.fixture, "crates/mem/src/f.rs")]);
            assert_eq!(
                deny_lines(&out, case.rule),
                &[] as &[usize],
                "{}: {} fired outside its scope",
                case.fixture,
                case.rule
            );
        }
    }
}

#[test]
fn bad_fixtures_produce_no_cross_rule_noise() {
    // A fixture seeded for one rule must not trip the others (placed in
    // the most rule-dense scope, crates/serve/src).
    let ws = Workspace::from_files(vec![fixture("lock_io_bad.rs", "crates/serve/src/f.rs")]);
    assert_eq!(deny_lines(&ws, "no-panic-boundary"), &[] as &[usize]);
    let ws = Workspace::from_files(vec![fixture("no_panic_bad.rs", "crates/serve/src/f.rs")]);
    assert_eq!(deny_lines(&ws, "lock-across-io"), &[] as &[usize]);
}

#[test]
fn cache_key_coverage_cross_checks_manifest_and_structs() {
    let ws = Workspace::from_files(vec![
        fixture("cache_key_key.rs", "crates/engine/src/key.rs"),
        fixture("cache_key_params.rs", "crates/apps/src/params.rs"),
    ]);
    let report = run(&ws);
    let findings: Vec<(&str, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule == "cache-key-coverage")
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    // `added` undeclared (line 9), `scratch` undeclared (line 14) with a
    // serde(skip) (line 12); stale manifest field (line 6) and a vanished
    // struct (line 7) on the manifest side.
    assert!(
        findings.contains(&("crates/apps/src/params.rs", 9)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&("crates/apps/src/params.rs", 12)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&("crates/engine/src/key.rs", 6)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&("crates/engine/src/key.rs", 7)),
        "{findings:?}"
    );
    // The Builder decoy's field must not satisfy (or pollute) the check.
    assert!(
        !findings
            .iter()
            .any(|(f, l)| *f == "crates/apps/src/params.rs" && *l >= 18),
        "{findings:?}"
    );
}

#[test]
fn missing_manifest_is_itself_a_finding() {
    let ws = Workspace::from_files(vec![SourceFile::from_source(
        "crates/engine/src/key.rs",
        "pub fn fingerprint_value() {}\n",
    )]);
    assert_eq!(deny_lines(&ws, "cache-key-coverage"), &[1]);
}

#[test]
fn waiver_hygiene_is_reported() {
    let src = "\
fn clean() {}
// ddtr-lint: allow(float-ord) — nothing here violates it
fn more() {}
// ddtr-lint: allow(no-such-rule) — typo
fn rest() {}
";
    let ws = Workspace::from_files(vec![SourceFile::from_source("src/f.rs", src)]);
    let report = run(&ws);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"unused-waiver"), "{rules:?}");
    assert!(rules.contains(&"unknown-waiver"), "{rules:?}");
    // Warn-level only: fails under --deny-all, passes without.
    assert!(!report.failed(false));
    assert!(report.failed(true));
}

#[test]
fn lock_order_reports_the_full_acquisition_chain() {
    let ws = Workspace::from_files(vec![fixture(
        "lock_order_bad.rs",
        "crates/engine/src/fixture.rs",
    )]);
    let report = run(&ws);
    let cycles: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.findings);
    let msg = &cycles[0].message;
    // The witness chain names both inverted hops, the functions that
    // take them and the call edge the second hop rides through.
    assert!(msg.contains("`alpha` → `beta` → `alpha`"), "{msg}");
    assert!(msg.contains("Eng::ab"), "{msg}");
    assert!(msg.contains("Eng::ba"), "{msg}");
    assert!(msg.contains("via `Eng::helper`"), "{msg}");
}

#[test]
fn doc_drift_cross_checks_metrics_both_ways() {
    let stale_catalog = "\
# Observability

| metric | kind |
|---|---|
| `serve.request.stale` | counter |
";
    let ws = Workspace::from_files_and_docs(
        vec![fixture("doc_drift_bad.rs", "crates/serve/src/fixture.rs")],
        vec![DocFile::from_text("docs/OBSERVABILITY.md", stale_catalog)],
    );
    let findings: Vec<(String, usize)> = run(&ws)
        .findings
        .iter()
        .filter(|f| f.rule == "doc-drift")
        .map(|f| (f.file.clone(), f.line))
        .collect();
    // `serve.request.ghost` registered but undocumented; the catalog's
    // `serve.request.stale` matches no registration.
    assert!(
        findings.contains(&("crates/serve/src/fixture.rs".into(), 5)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&("docs/OBSERVABILITY.md".into(), 5)),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 2, "{findings:?}");

    let matching_catalog = "\
# Observability

`serve.request.ok` and `engine.batch` are the only metrics.
";
    let ws = Workspace::from_files_and_docs(
        vec![fixture("doc_drift_good.rs", "crates/serve/src/fixture.rs")],
        vec![DocFile::from_text(
            "docs/OBSERVABILITY.md",
            matching_catalog,
        )],
    );
    let report = run(&ws);
    assert!(
        report.findings.iter().all(|f| f.rule != "doc-drift"),
        "{:?}",
        report.findings
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let ws = Workspace::load(root).expect("scan workspace");
    assert!(
        ws.files.len() > 100,
        "walker found only {} files — scan roots wrong?",
        ws.files.len()
    );
    let report = run(&ws);
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "the tree must lint clean (fix or waive):\n{}",
        rendered.join("\n")
    );
    // The acceptance bar: violations of these rules were fixed, not
    // waived — and the v2 rules landed without adding a single waiver
    // anywhere (the one honoured waiver predates them).
    const NEVER_WAIVED: &[&str] = &[
        "float-ord",
        "no-panic-boundary",
        "lock-order",
        "serde-compat",
        "doc-drift",
    ];
    for file in &ws.files {
        for w in &file.waivers {
            assert!(
                !NEVER_WAIVED.contains(&w.rule.as_str()),
                "{}:{}: `{}` must never be waived — fix the violation",
                file.path,
                w.line,
                w.rule
            );
        }
    }
    assert_eq!(
        report.waivers_used, 1,
        "new waivers crept in — fix violations in place instead"
    );
}
