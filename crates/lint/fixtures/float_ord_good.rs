// Known-good: total_cmp comparators, plus decoys that must not match —
// partial_cmp in this comment, in a string, and a PartialOrd impl.
fn sorts(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(f64::total_cmp);
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

fn decoy() -> &'static str {
    "never call partial_cmp on floats"
}

struct Wrapped(f64);

impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
