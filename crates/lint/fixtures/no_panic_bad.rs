// Seeded no-panic-boundary violations (the fixture harness maps this
// file to a crates/serve/src path).
fn handle(line: &str, xs: &[u8]) -> u8 {
    let v: i64 = line.parse().unwrap(); // line 4: unwrap
    let w: i64 = line.parse().expect("numeric"); // line 5: expect
    if v < 0 {
        panic!("negative"); // line 7: panic!
    }
    match w {
        0 => unreachable!("zero was filtered"), // line 10: unreachable!
        _ => {}
    }
    assert!(v > 0, "positive"); // line 13: assert!
    xs[0] // line 14: literal index
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: i64 = "7".parse().unwrap(); // exempt: cfg(test)
        assert_eq!(v, 7); // exempt: cfg(test)
    }
}
