// Seeded det-iter violations (mapped into crates/pareto/src by the
// harness): hash-order iteration in a determinism-critical module.
use std::collections::{HashMap, HashSet};

struct Archive {
    memo: HashMap<String, u64>,
}

fn leak_order(archive: &Archive, seen: HashSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for key in archive.memo.keys() {
        // keys() iteration over a field-typed map: violation above
        out.push(key.clone());
    }
    for s in &seen {
        // for-loop over a param-typed set: violation above
        out.push(s.clone());
    }
    out
}

fn drained(mut m: HashMap<String, u64>) -> Vec<(String, u64)> {
    m.drain().collect() // drain(): violation
}

fn waived(m: &HashMap<String, u64>) -> Vec<String> {
    // ddtr-lint: allow(det-iter) — fixture: collected and sorted below
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}
