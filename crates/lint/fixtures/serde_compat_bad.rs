//! Seeded wire break: `JobSpec.retries` was added after v1 without
//! `Option` or `#[serde(default)]`, so a v1 peer fails to deserialize.

// ddtr-lint: serde-compat begin
// struct JobSpec v1: app, seed
// enum Event v1: Done, Failed
// variant Event::Failed v1: id
// ddtr-lint: serde-compat end

#[derive(Serialize, Deserialize)]
pub struct JobSpec {
    pub app: String,
    pub seed: u64,
    pub retries: u32,
}

#[derive(Serialize, Deserialize)]
pub enum Event {
    Done,
    Failed { id: String },
}
