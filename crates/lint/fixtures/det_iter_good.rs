// Known-good: hash collections used for lookup only, iteration confined
// to order-preserving structures (Vec, BTreeMap), plus the memo+order
// pattern the GA archive uses.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Archive {
    memo: HashMap<String, u64>,
    order: Vec<String>,
}

fn lookups(archive: &Archive, seen: &mut HashSet<String>) -> u64 {
    let mut total = 0;
    for key in &archive.order {
        if seen.insert(key.clone()) {
            total += archive.memo.get(key).copied().unwrap_or(0);
        }
    }
    total
}

fn sorted_view(m: &BTreeMap<String, u64>) -> Vec<&String> {
    m.keys().collect()
}
