// Constructs the PR 6 line blanker mis-lexed, kept as a regression
// corpus for the token front end. The killer is the escaped-quote char
// literal: the old blanker consumed `'\''` one char short, then its
// stray-quote recovery swallowed the `,` and the opening quote of the
// *next* literal — leaking a phantom `}` into the code view. Two of
// those collapse the `#[cfg(test)]` brace count below, so the old front
// end flagged the genuine test-only `assert_eq!`/`unwrap()` here as
// no-panic-boundary violations. The raw strings and nested comments
// carry banned tokens that must stay blanked either way.
pub fn tricky() -> usize {
    let sql = r#"
        multi-line raw string: .unwrap() and partial_cmp stay hidden "#;
    let deep = r##"ends with "# one hash but keeps going .unwrap()"##;
    let nested = 1; /* outer /* .unwrap() inner */ still comment */
    sql.len() + deep.len() + nested
}

#[cfg(test)]
mod tests {
    #[test]
    fn quoting() {
        let a = ['\'','}']; // adjacency matters: no space after the comma
        let b = ['\'','}'];
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let _ = (a, b);
    }
}
