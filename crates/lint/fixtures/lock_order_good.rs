//! The well-ordered twin: every overlapping path takes `alpha` before
//! `beta`; elsewhere guards are block-scoped or dropped first.

pub struct Eng {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Eng {
    pub fn ab(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn ba_scoped(&self) -> u32 {
        let a = {
            let g = self.alpha.lock().unwrap();
            *g
        };
        let b = self.beta.lock().unwrap();
        a + *b
    }

    pub fn ba_dropped(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let snapshot = *b;
        drop(b);
        let a = self.alpha.lock().unwrap();
        snapshot + *a
    }
}
