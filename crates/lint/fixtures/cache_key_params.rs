// Fixture stand-in for a config struct feeding CacheKey fingerprints.
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
pub struct FixtureParams {
    /// Covered by the manifest.
    pub quantum: u32,
    /// Not in the manifest: must be flagged.
    pub added: u32,
    /// Skipped from serialization: invisible to the fingerprint, flagged.
    #[serde(skip)]
    pub scratch: u64,
    /// Covered by the manifest.
    pub seed: u64,
}

/// A decoy whose name embeds the target's: must not be parsed as it.
pub struct FixtureParamsBuilder {
    pub quantum: u32,
}
