// Known-good boundary code: structured errors, poison-tolerant locks,
// debug asserts, checked indexing. Decoys ("unwrap()" in strings and
// comments, unwrap_or_else) must not match.
use std::sync::{Mutex, PoisonError};

fn handle(line: &str, xs: &[u8]) -> Result<u8, String> {
    let v: i64 = line.parse().map_err(|e| format!("bad request: {e}"))?;
    debug_assert!(v >= 0, "validated upstream");
    let first = xs.get(0).copied().ok_or("empty payload")?;
    let _ = v;
    Ok(first)
}

fn shared(counter: &Mutex<u64>) -> u64 {
    // A poisoned counter is still a counter: take the inner value.
    *counter.lock().unwrap_or_else(PoisonError::into_inner)
}

fn decoy() -> &'static str {
    "never unwrap() or expect() or panic!() across the boundary"
}
