// Seeded lock-across-io violations (mapped into crates/serve/src by the
// harness): guards held across blocking writes — the slow-client stall.
use std::io::Write;
use std::sync::{Mutex, PoisonError};

fn stream_progress<W: Write>(out: &Mutex<W>, done: usize) {
    let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
    writeln!(w, "done={done}").ok(); // guard held across writeln!: violation
}

fn chained<W: Write>(out: &Mutex<W>) {
    out.lock().unwrap_or_else(PoisonError::into_inner).flush().ok(); // violation
}

fn waived<W: Write>(out: &Mutex<W>, done: usize) {
    let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
    // ddtr-lint: allow(lock-across-io) — fixture: writer mutex serialises the write itself
    writeln!(w, "done={done}").ok();
}
