//! Seeded two-mutex inversion: `ab` takes `alpha` before `beta` while
//! `ba` ends up with the opposite order through `helper`.

pub struct Eng {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Eng {
    pub fn ab(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn ba(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        self.helper() + *b
    }

    fn helper(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        *a
    }
}
