// Seeded float-ord violations: each `partial_cmp` comparator is the
// PR 3 bug class (NaN panics the expect form; unwrap_or de-sorts).
fn sorts(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite")); // line 4: violation
    xs
}

fn best(xs: &[f64]) -> Option<&f64> {
    // line 9 comment, then line 10: violation
    xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

fn waived(mut xs: Vec<f64>) -> Vec<f64> {
    // ddtr-lint: allow(float-ord) — fixture: demonstrates waiver honoring
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs
}
