// Known-good: the guard is dropped (explicitly or by scope) before any
// blocking write, and temporary guards die at the statement's semicolon.
use std::io::Write;
use std::sync::{Mutex, PoisonError};

fn buffered<W: Write>(state: &Mutex<Vec<u8>>, out: &mut W) {
    let snapshot = {
        let guard = state.lock().unwrap_or_else(PoisonError::into_inner);
        guard.clone()
    };
    out.write_all(&snapshot).ok();
}

fn explicit_drop<W: Write>(state: &Mutex<u64>, out: &mut W) {
    let guard = state.lock().unwrap_or_else(PoisonError::into_inner);
    let value = *guard;
    drop(guard);
    writeln!(out, "value={value}").ok();
}

fn temporary(state: &Mutex<Vec<u8>>, byte: u8) -> usize {
    state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(byte);
    let len = state.lock().unwrap_or_else(PoisonError::into_inner).len();
    len
}
