// Fixture stand-in for crates/engine/src/key.rs: a coverage manifest
// with one stale entry (`retired`) and one field missing (`added`).
pub fn fingerprint_value() {}

// ddtr-lint: cache-key-coverage begin
// FixtureParams @ crates/apps/src/params.rs: quantum, retired, seed
// GoneStruct @ crates/apps/src/params.rs: whatever
// ddtr-lint: cache-key-coverage end
