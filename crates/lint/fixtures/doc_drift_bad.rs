//! Seeded doc drift: registers a metric the observability catalog
//! never mentions (and the paired test's catalog lists a stale one).

pub fn record(reg: &Registry) {
    reg.counter("serve.request.ghost").inc();
}
