//! The compatible twin: post-v1 fields are `Option` or carry
//! `#[serde(default)]`, and new enum variants extend additively.

// ddtr-lint: serde-compat begin
// struct JobSpec v1: app, seed
// enum Event v1: Done, Failed
// variant Event::Failed v1: id
// ddtr-lint: serde-compat end

#[derive(Serialize, Deserialize)]
pub struct JobSpec {
    pub app: String,
    pub seed: u64,
    pub retries: Option<u32>,
    #[serde(default)]
    pub tags: Vec<String>,
}

#[derive(Serialize, Deserialize)]
pub enum Event {
    Done,
    Failed { id: String },
    Progress { done: usize },
}
