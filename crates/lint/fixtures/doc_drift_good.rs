//! The documented twin: every metric this file registers appears in
//! the paired test's observability catalog, and nothing else does.

pub fn record(reg: &Registry) {
    reg.counter("serve.request.ok").inc();
    reg.histogram("engine.batch").observe(1.0);
}
