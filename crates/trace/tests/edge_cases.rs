//! Edge-case tests for the trace substrate: degenerate inputs, I/O
//! failures and boundary parameters.

use ddtr_trace::{
    NetworkParams, ParseTraceError, TraceGenerator, TraceReader, TraceSpec, TraceWriter,
};
use std::io;

/// A writer that fails after a configurable number of bytes — injects
/// mid-stream I/O failure.
struct FailingWriter {
    budget: usize,
}

impl io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
        }
        let n = buf.len().min(self.budget);
        self.budget -= n;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn writer_propagates_io_errors() {
    let trace = TraceGenerator::new(TraceSpec::builder("io").build()).generate(50);
    let err = TraceWriter::write(&trace, FailingWriter { budget: 64 }).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::WriteZero);
}

/// A reader that fails mid-stream.
struct FailingReader {
    served: bool,
}

impl io::Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.served {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "link lost"));
        }
        self.served = true;
        let header = b"# ddtr-trace net\n";
        buf[..header.len()].copy_from_slice(header);
        Ok(header.len())
    }
}

#[test]
fn reader_propagates_io_errors() {
    let reader = io::BufReader::new(FailingReader { served: false });
    let err = TraceReader::read(reader).unwrap_err();
    assert!(matches!(err, ParseTraceError::Io(_)), "{err}");
}

#[test]
fn zero_packet_generation_is_valid() {
    let trace = TraceGenerator::new(TraceSpec::builder("empty").build()).generate(0);
    assert!(trace.is_empty());
    let params = NetworkParams::extract(&trace);
    assert!(!params.is_usable());
    // And it round-trips through the text format.
    let text = TraceWriter::to_string(&trace);
    let back = TraceReader::parse_str(&text).expect("parses");
    assert_eq!(trace, back);
}

#[test]
fn single_packet_trace_has_zero_throughput() {
    let trace = TraceGenerator::new(TraceSpec::builder("one").build()).generate(1);
    let params = NetworkParams::extract(&trace);
    assert_eq!(params.duration_s, 0.0);
    assert_eq!(params.throughput_pps, 0.0);
    assert!(!params.is_usable());
}

#[test]
fn minimal_two_node_network_generates() {
    let spec = TraceSpec::builder("mini").nodes(2).flows(1).build();
    let trace = TraceGenerator::new(spec).generate(100);
    let params = NetworkParams::extract(&trace);
    assert_eq!(params.nodes_observed, 2);
    assert_eq!(params.flows_observed, 1);
}

#[test]
fn network_name_with_spaces_survives_round_trip() {
    let mut trace = TraceGenerator::new(TraceSpec::builder("two words").build()).generate(5);
    trace.network = "two words".into();
    let text = TraceWriter::to_string(&trace);
    let back = TraceReader::parse_str(&text).expect("parses");
    assert_eq!(back.network, "two words");
}

#[test]
fn huge_skew_concentrates_on_one_flow() {
    let spec = TraceSpec::builder("skewed")
        .flows(64)
        .flow_skew(4.0)
        .build();
    let trace = TraceGenerator::new(spec).generate(500);
    let mut counts = std::collections::HashMap::new();
    for p in &trace {
        *counts.entry(p.flow_key()).or_insert(0u32) += 1;
    }
    let top = counts.values().copied().max().expect("non-empty");
    assert!(
        u64::from(top) * 10 > 500 * 9,
        "skew 4.0 should put ~all packets on one flow, top={top}"
    );
}
