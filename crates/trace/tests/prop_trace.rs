//! Property-based tests for trace generation, serialisation and parameter
//! extraction.

use ddtr_trace::{
    BurstProfile, NetworkParams, Packet, Payload, Protocol, SizeProfile, StreamSpec, Trace,
    TraceGenerator, TraceReader, TraceSpec, TraceWriter,
};
use proptest::prelude::*;

fn arb_packet(ts: u64) -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![
            Just(Protocol::Tcp),
            Just(Protocol::Udp),
            Just(Protocol::Icmp)
        ],
        1u32..9000,
        prop_oneof![
            3 => Just(Payload::Empty),
            1 => "[a-z/._-]{1,24}".prop_map(|s| Payload::Http { url: format!("/{s}") }),
        ],
    )
        .prop_map(
            move |(src, dst, sport, dport, proto, bytes, payload)| Packet {
                ts_us: ts,
                src,
                dst,
                sport,
                dport,
                proto,
                bytes,
                payload,
            },
        )
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(1u64..1000, 0..60).prop_flat_map(|gaps| {
        let mut ts = 0;
        let stamps: Vec<u64> = gaps
            .iter()
            .map(|g| {
                ts += g;
                ts
            })
            .collect();
        let pkts: Vec<_> = stamps.into_iter().map(arb_packet).collect();
        pkts.prop_map(|packets| Trace::new("prop-net", packets))
    })
}

proptest! {
    /// Serialisation round-trips exactly for arbitrary traces.
    #[test]
    fn text_format_round_trips(trace in arb_trace()) {
        let text = TraceWriter::to_string(&trace);
        let back = TraceReader::parse_str(&text).expect("parses back");
        prop_assert_eq!(trace, back);
    }

    /// Generation is deterministic in the seed and honours the packet count.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), n in 1usize..300) {
        let spec = TraceSpec::builder("gen").seed(seed).build();
        let a = TraceGenerator::new(spec.clone()).generate(n);
        let b = TraceGenerator::new(spec).generate(n);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
    }

    /// Extracted parameters are internally consistent for any generated
    /// trace: node/flow counts bounded by spec, histogram total matches,
    /// MTU never exceeds the configured MTU.
    #[test]
    fn extraction_is_consistent(
        seed in any::<u64>(),
        nodes in 2u32..64,
        flows in 1u32..64,
        skew in 0.0f64..1.5,
    ) {
        let spec = TraceSpec::builder("cons")
            .seed(seed)
            .nodes(nodes)
            .flows(flows)
            .flow_skew(skew)
            .sizes(SizeProfile { small: 0.4, medium: 0.3, large: 0.3, mtu: 1500 })
            .build();
        let trace = TraceGenerator::new(spec).generate(200);
        let p = NetworkParams::extract(&trace);
        prop_assert!(p.nodes_observed <= nodes.max(2) * 2);
        prop_assert!(p.flows_observed <= flows);
        prop_assert_eq!(p.sizes.total(), 200);
        prop_assert!(p.mtu_bytes <= 1500);
        prop_assert!(p.mean_packet_bytes >= 40.0);
        prop_assert!(p.is_usable());
    }

    /// The streaming path is packet-for-packet identical to the
    /// materializing path for any spec shape (smooth or bursty, any seed,
    /// any length) — the core streaming-equivalence property.
    #[test]
    fn stream_matches_generate(
        seed in any::<u64>(),
        n in 0usize..400,
        flows in 1u32..64,
        bursty in any::<bool>(),
        url_fraction in 0.0f64..1.0,
    ) {
        let mut spec = TraceSpec::builder("stream-eq")
            .seed(seed)
            .flows(flows)
            .url_fraction(url_fraction)
            .build();
        if bursty {
            spec.burstiness = Some(BurstProfile::default());
        }
        let generator = TraceGenerator::new(spec.clone());
        let streamed: Vec<Packet> = generator.stream(n).collect();
        prop_assert_eq!(&streamed, &generator.generate(n).packets);
        // The StreamSpec wrapper takes the same path.
        let wrapped: Vec<Packet> = StreamSpec::single(spec, n).expect("valid").stream().collect();
        prop_assert_eq!(&wrapped, &streamed);
    }

    /// Streamed parameter extraction agrees with materialized extraction
    /// for arbitrary hand-built traces.
    #[test]
    fn extract_stream_matches_extract(trace in arb_trace()) {
        let streamed = NetworkParams::extract_stream(
            trace.network.clone(),
            trace.packets.iter().cloned(),
        );
        prop_assert_eq!(streamed, NetworkParams::extract(&trace));
    }

    /// Stronger skew concentrates more traffic on the top flow.
    #[test]
    fn skew_orders_concentration(seed in 0u64..1000) {
        let count_top = |skew: f64| {
            let spec = TraceSpec::builder("skew")
                .seed(seed)
                .flows(40)
                .flow_skew(skew)
                .build();
            let t = TraceGenerator::new(spec).generate(800);
            let mut counts = std::collections::HashMap::new();
            for p in &t {
                *counts.entry(p.flow_key()).or_insert(0u32) += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        };
        // With strongly different skews the ordering must hold.
        prop_assert!(count_top(1.4) >= count_top(0.0));
    }
}
