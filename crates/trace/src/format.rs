//! Text serialisation of traces.
//!
//! The paper's tool "parses the available network traces and extracts the
//! network parameters from the raw data in the traces". To exercise that
//! code path with real files, traces serialise to a simple one-line-per-
//! packet text format:
//!
//! ```text
//! # ddtr-trace <network>
//! <ts_us> <src> <dst> <sport> <dport> <proto> <bytes> [url]
//! ```

use crate::packet::{Packet, Payload, Protocol, Trace};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced while parsing a text trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and reason.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The header line is missing or malformed.
    MissingHeader,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
            ParseTraceError::MissingHeader => f.write_str("missing `# ddtr-trace` header"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes traces in the text format.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceWriter;

impl TraceWriter {
    /// Serialises `trace` to `w`.
    ///
    /// A mutable reference also works as the writer (`&mut Vec<u8>`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
        writeln!(w, "# ddtr-trace {}", trace.network)?;
        for p in trace {
            write!(
                w,
                "{} {} {} {} {} {} {}",
                p.ts_us, p.src, p.dst, p.sport, p.dport, p.proto, p.bytes
            )?;
            if let Some(url) = p.payload.url() {
                write!(w, " {url}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Serialises to an owned string.
    ///
    /// # Panics
    ///
    /// Never panics: writing to a `Vec<u8>` is infallible and the format is
    /// pure ASCII-compatible UTF-8.
    #[must_use]
    pub fn to_string(trace: &Trace) -> String {
        let mut buf = Vec::new();
        Self::write(trace, &mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("trace text is UTF-8")
    }
}

/// Parses traces from the text format.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceReader;

impl TraceReader {
    /// Parses a full trace from `r`.
    ///
    /// A mutable reference also works as the reader (`&mut &[u8]`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure, a missing header, or any
    /// malformed line.
    pub fn read<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or(ParseTraceError::MissingHeader)??;
        let network = header
            .strip_prefix("# ddtr-trace ")
            .ok_or(ParseTraceError::MissingHeader)?
            .trim()
            .to_owned();
        let mut packets = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            let line_no = i + 2;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            packets.push(Self::parse_line(&line, line_no)?);
        }
        Ok(Trace::new(network, packets))
    }

    /// Parses a trace from a string.
    ///
    /// (Named `parse_str` rather than `from_str` to avoid confusion with
    /// `std::str::FromStr`, which cannot be implemented here because the
    /// error carries I/O context.)
    ///
    /// # Errors
    ///
    /// Same as [`TraceReader::read`].
    pub fn parse_str(s: &str) -> Result<Trace, ParseTraceError> {
        Self::read(s.as_bytes())
    }

    fn parse_line(line: &str, line_no: usize) -> Result<Packet, ParseTraceError> {
        let malformed = |reason: &str| ParseTraceError::Malformed {
            line: line_no,
            reason: reason.to_owned(),
        };
        let mut fields = line.split_whitespace();
        let mut next_num = |name: &str| -> Result<u64, ParseTraceError> {
            fields
                .next()
                .ok_or_else(|| malformed(&format!("missing field `{name}`")))?
                .parse::<u64>()
                .map_err(|e| malformed(&format!("bad `{name}`: {e}")))
        };
        let ts_us = next_num("ts_us")?;
        let src = u32::try_from(next_num("src")?).map_err(|_| malformed("src out of range"))?;
        let dst = u32::try_from(next_num("dst")?).map_err(|_| malformed("dst out of range"))?;
        let sport =
            u16::try_from(next_num("sport")?).map_err(|_| malformed("sport out of range"))?;
        let dport =
            u16::try_from(next_num("dport")?).map_err(|_| malformed("dport out of range"))?;
        let proto = match fields.next() {
            Some("tcp") => Protocol::Tcp,
            Some("udp") => Protocol::Udp,
            Some("icmp") => Protocol::Icmp,
            Some(other) => return Err(malformed(&format!("unknown protocol `{other}`"))),
            None => return Err(malformed("missing field `proto`")),
        };
        let bytes = {
            let raw = fields
                .next()
                .ok_or_else(|| malformed("missing field `bytes`"))?;
            raw.parse::<u32>()
                .map_err(|e| malformed(&format!("bad `bytes`: {e}")))?
        };
        let payload = match fields.next() {
            Some(url) => Payload::Http {
                url: url.to_owned(),
            },
            None => Payload::Empty,
        };
        Ok(Packet {
            ts_us,
            src,
            dst,
            sport,
            dport,
            proto,
            bytes,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::NetworkPreset;

    #[test]
    fn round_trip_preserves_trace() {
        let t = NetworkPreset::DartmouthBerry.generate(200);
        let text = TraceWriter::to_string(&t);
        let back = TraceReader::parse_str(&text).expect("round trip parses");
        assert_eq!(t, back);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            TraceReader::parse_str("1 2 3 4 5 tcp 100"),
            Err(ParseTraceError::MissingHeader)
        ));
        assert!(matches!(
            TraceReader::parse_str(""),
            Err(ParseTraceError::MissingHeader)
        ));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# ddtr-trace x\n\n# comment\n5 1 2 10 80 tcp 40\n";
        let t = TraceReader::parse_str(text).expect("parses");
        assert_eq!(t.len(), 1);
        assert_eq!(t.network, "x");
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "# ddtr-trace x\n5 1 2 10 80 tcp 40\noops\n";
        let err = TraceReader::parse_str(text).unwrap_err();
        match err {
            ParseTraceError::Malformed { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unknown_protocol_rejected() {
        let text = "# ddtr-trace x\n5 1 2 10 80 sctp 40\n";
        let err = TraceReader::parse_str(text).unwrap_err();
        assert!(err.to_string().contains("sctp"));
    }

    #[test]
    fn out_of_range_port_rejected() {
        let text = "# ddtr-trace x\n5 1 2 99999 80 tcp 40\n";
        assert!(TraceReader::parse_str(text).is_err());
    }

    #[test]
    fn url_field_round_trips() {
        let text = "# ddtr-trace x\n5 1 2 10 80 tcp 576 /index.html\n";
        let t = TraceReader::parse_str(text).expect("parses");
        assert_eq!(t.packets[0].payload.url(), Some("/index.html"));
        let again = TraceWriter::to_string(&t);
        assert_eq!(TraceReader::parse_str(&again).unwrap(), t);
    }
}
