//! Named network presets standing in for the paper's ten traces, plus the
//! scenario catalog layered on top of them.

use crate::gen::TraceGenerator;
use crate::packet::Trace;
use crate::spec::{BurstProfile, SizeProfile, TraceSpec};
use crate::stream::StreamSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The ten network configurations used by the reproduction, mirroring the
/// paper's trace inventory: three NLANR measurement points (total campus
/// and satellite activity) and seven Dartmouth campus wireless building
/// traces, two of which come from the Berry building (`BWY I`/`BWY II` in
/// the paper's figures).
///
/// Each preset fixes the extractable network parameters — node count,
/// throughput, packet-size mixture/MTU — plus the flow-skew and URL-share
/// parameters that shape the applications' dynamic access patterns.
///
/// # Example
///
/// ```
/// use ddtr_trace::NetworkPreset;
///
/// let spec = NetworkPreset::NlanrMra.spec();
/// assert!(spec.nodes > NetworkPreset::DartmouthSudikoff.spec().nodes);
/// assert_eq!(NetworkPreset::DartmouthBerry.to_string(), "BWY-I");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetworkPreset {
    /// NLANR MRA backbone tap: large population, high rate, MTU-heavy.
    NlanrMra,
    /// NLANR AIX satellite link: small ACK-heavy packets, moderate rate.
    NlanrAix,
    /// NLANR TAU campus aggregate.
    NlanrTau,
    /// Dartmouth Berry building, first capture (`BWY I`).
    DartmouthBerry,
    /// Dartmouth Berry building, second capture (`BWY II`).
    DartmouthBerry2,
    /// Dartmouth Sudikoff (CS department) building.
    DartmouthSudikoff,
    /// Dartmouth Whittemore building.
    DartmouthWhittemore,
    /// Dartmouth main library.
    DartmouthLibrary,
    /// Dartmouth residential dormitory.
    DartmouthDorm,
    /// Dartmouth academic building aggregate.
    DartmouthAcad,
}

impl NetworkPreset {
    /// All ten presets in canonical order.
    pub const ALL: [NetworkPreset; 10] = [
        NetworkPreset::NlanrMra,
        NetworkPreset::NlanrAix,
        NetworkPreset::NlanrTau,
        NetworkPreset::DartmouthBerry,
        NetworkPreset::DartmouthBerry2,
        NetworkPreset::DartmouthSudikoff,
        NetworkPreset::DartmouthWhittemore,
        NetworkPreset::DartmouthLibrary,
        NetworkPreset::DartmouthDorm,
        NetworkPreset::DartmouthAcad,
    ];

    /// The seven presets used by the Route exploration in the paper
    /// ("seven network configurations, utilizing 7 different networks").
    pub const ROUTE_SEVEN: [NetworkPreset; 7] = [
        NetworkPreset::NlanrMra,
        NetworkPreset::NlanrAix,
        NetworkPreset::NlanrTau,
        NetworkPreset::DartmouthBerry,
        NetworkPreset::DartmouthSudikoff,
        NetworkPreset::DartmouthLibrary,
        NetworkPreset::DartmouthDorm,
    ];

    /// The five presets used by the URL and DRR explorations.
    pub const FIVE: [NetworkPreset; 5] = [
        NetworkPreset::NlanrMra,
        NetworkPreset::DartmouthBerry,
        NetworkPreset::DartmouthSudikoff,
        NetworkPreset::DartmouthLibrary,
        NetworkPreset::DartmouthDorm,
    ];

    /// The network parameters of this preset.
    #[must_use]
    pub fn spec(self) -> TraceSpec {
        match self {
            NetworkPreset::NlanrMra => TraceSpec::builder(self.to_string())
                .nodes(450)
                .mean_rate_pps(8_000.0)
                .sizes(SizeProfile {
                    small: 0.40,
                    medium: 0.20,
                    large: 0.40,
                    mtu: 1500,
                })
                .flows(512)
                .flow_skew(0.9)
                .url_fraction(0.25)
                .seed(0x4d52_4131)
                .build(),
            NetworkPreset::NlanrAix => TraceSpec::builder(self.to_string())
                .nodes(120)
                .mean_rate_pps(1_200.0)
                .sizes(SizeProfile {
                    small: 0.70,
                    medium: 0.20,
                    large: 0.10,
                    mtu: 1500,
                })
                .flows(160)
                .flow_skew(0.7)
                .url_fraction(0.15)
                .seed(0x4149_5831)
                .build(),
            NetworkPreset::NlanrTau => TraceSpec::builder(self.to_string())
                .nodes(300)
                .mean_rate_pps(4_500.0)
                .sizes(SizeProfile {
                    small: 0.45,
                    medium: 0.30,
                    large: 0.25,
                    mtu: 1500,
                })
                .flows(384)
                .flow_skew(0.85)
                .url_fraction(0.2)
                .seed(0x5441_5531)
                .build(),
            NetworkPreset::DartmouthBerry => TraceSpec::builder(self.to_string())
                .nodes(60)
                .mean_rate_pps(900.0)
                .sizes(SizeProfile {
                    small: 0.35,
                    medium: 0.45,
                    large: 0.20,
                    mtu: 1470,
                })
                .flows(96)
                .flow_skew(1.1)
                .url_fraction(0.45)
                .seed(0x4257_5931)
                .build(),
            NetworkPreset::DartmouthBerry2 => TraceSpec::builder(self.to_string())
                .nodes(64)
                .mean_rate_pps(1_400.0)
                .sizes(SizeProfile {
                    small: 0.30,
                    medium: 0.40,
                    large: 0.30,
                    mtu: 1470,
                })
                .flows(128)
                .flow_skew(1.0)
                .url_fraction(0.40)
                .seed(0x4257_5932)
                .build(),
            NetworkPreset::DartmouthSudikoff => TraceSpec::builder(self.to_string())
                .nodes(45)
                .mean_rate_pps(700.0)
                .sizes(SizeProfile {
                    small: 0.50,
                    medium: 0.25,
                    large: 0.25,
                    mtu: 1470,
                })
                .flows(64)
                .flow_skew(0.95)
                .url_fraction(0.35)
                .seed(0x5355_4431)
                .build(),
            NetworkPreset::DartmouthWhittemore => TraceSpec::builder(self.to_string())
                .nodes(35)
                .mean_rate_pps(400.0)
                .sizes(SizeProfile {
                    small: 0.55,
                    medium: 0.30,
                    large: 0.15,
                    mtu: 1470,
                })
                .flows(48)
                .flow_skew(0.8)
                .url_fraction(0.3)
                .seed(0x5748_5431)
                .build(),
            NetworkPreset::DartmouthLibrary => TraceSpec::builder(self.to_string())
                .nodes(80)
                .mean_rate_pps(1_600.0)
                .sizes(SizeProfile {
                    small: 0.40,
                    medium: 0.35,
                    large: 0.25,
                    mtu: 1470,
                })
                .flows(144)
                .flow_skew(1.2)
                .url_fraction(0.55)
                .seed(0x4c49_4231)
                .build(),
            NetworkPreset::DartmouthDorm => TraceSpec::builder(self.to_string())
                .nodes(150)
                .mean_rate_pps(2_400.0)
                .sizes(SizeProfile {
                    small: 0.30,
                    medium: 0.30,
                    large: 0.40,
                    mtu: 1470,
                })
                .flows(256)
                .flow_skew(1.05)
                .url_fraction(0.35)
                .seed(0x444f_5231)
                .build(),
            NetworkPreset::DartmouthAcad => TraceSpec::builder(self.to_string())
                .nodes(70)
                .mean_rate_pps(1_100.0)
                .sizes(SizeProfile {
                    small: 0.45,
                    medium: 0.35,
                    large: 0.20,
                    mtu: 1470,
                })
                .flows(112)
                .flow_skew(0.9)
                .url_fraction(0.4)
                .seed(0x4143_4131)
                .build(),
        }
    }

    /// Generates this preset's trace with `n_packets` packets.
    #[must_use]
    pub fn generate(self, n_packets: usize) -> Trace {
        TraceGenerator::new(self.spec()).generate(n_packets)
    }
}

impl fmt::Display for NetworkPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NetworkPreset::NlanrMra => "NLANR-MRA",
            NetworkPreset::NlanrAix => "NLANR-AIX",
            NetworkPreset::NlanrTau => "NLANR-TAU",
            NetworkPreset::DartmouthBerry => "BWY-I",
            NetworkPreset::DartmouthBerry2 => "BWY-II",
            NetworkPreset::DartmouthSudikoff => "SUD",
            NetworkPreset::DartmouthWhittemore => "WHT",
            NetworkPreset::DartmouthLibrary => "LIB",
            NetworkPreset::DartmouthDorm => "DRM",
            NetworkPreset::DartmouthAcad => "ACA",
        };
        f.write_str(name)
    }
}

impl FromStr for NetworkPreset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_uppercase();
        NetworkPreset::ALL
            .iter()
            .copied()
            .find(|p| p.to_string() == norm)
            .ok_or_else(|| format!("unknown network preset `{s}`"))
    }
}

/// A traffic *scenario*: a named transformation of a base network preset
/// into a (possibly multi-phase) streamed workload.
///
/// The ten [`NetworkPreset`]s fix *where* the traffic was captured; the
/// scenarios vary *what the network is going through* — the workload
/// diversity axis of the exploration. Every scenario is a pure function of
/// `(base preset, packet count)`, so scenario runs are deterministic and
/// cacheable by their [`StreamSpec`] description.
///
/// # Example
///
/// ```
/// use ddtr_trace::{NetworkPreset, Scenario};
///
/// let spec = Scenario::FlashCrowd.stream_spec(NetworkPreset::DartmouthBerry, 1000);
/// assert_eq!(spec.name(), "BWY-I#flash-crowd");
/// assert_eq!(spec.total_packets(), 1000);
/// let packets: Vec<_> = spec.stream().collect();
/// assert_eq!(packets.len(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// The unmodified base preset — the comparison point of the matrix.
    Baseline,
    /// ON/OFF packet trains with strong flow locality: the base network
    /// under heavy packet-train traffic.
    Bursty,
    /// A flash crowd: arrival rate and client population jump, flow
    /// popularity concentrates, almost every TCP packet carries a URL.
    FlashCrowd,
    /// A SYN flood: minimum-size packets from a spoofed (uniform, very
    /// wide) source population at a rate far above the capture's norm.
    DdosSyn,
    /// Two phases: the calm base network, then a flash crowd — the
    /// mid-run workload shift that punishes statically-tuned DDTs.
    PhaseShift,
}

impl Scenario {
    /// All scenarios in canonical matrix order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Baseline,
        Scenario::Bursty,
        Scenario::FlashCrowd,
        Scenario::DdosSyn,
        Scenario::PhaseShift,
    ];

    /// The streamed workload of this scenario over `base`, totalling
    /// exactly `packets` packets.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in presets: every derived spec stays
    /// within [`TraceSpec::validate`]'s ranges.
    #[must_use]
    pub fn stream_spec(self, base: NetworkPreset, packets: usize) -> StreamSpec {
        let name = format!("{base}#{self}");
        match self {
            Scenario::Baseline => {
                let mut spec = base.spec();
                spec.name = name;
                StreamSpec::single(spec, packets)
            }
            Scenario::Bursty => {
                let mut spec = base.spec();
                spec.name = name;
                spec.seed ^= 0x4255_5253; // "BURS"
                spec.burstiness = Some(BurstProfile {
                    mean_burst_pkts: 12.0,
                    off_gap_factor: 30.0,
                    locality: 0.9,
                });
                StreamSpec::single(spec, packets)
            }
            Scenario::FlashCrowd => {
                let mut spec = flash_crowd_of(base.spec());
                spec.name = name;
                StreamSpec::single(spec, packets)
            }
            Scenario::DdosSyn => {
                let mut spec = base.spec();
                spec.name = name;
                spec.seed ^= 0x5359_4e46; // "SYNF"
                spec.mean_rate_pps *= 20.0;
                // Spoofed sources: a very wide, uniformly-popular flow
                // population of minimum-size control packets.
                spec.nodes = spec.nodes.saturating_mul(4);
                spec.flows = spec.flows.saturating_mul(8);
                spec.flow_skew = 0.0;
                spec.url_fraction = 0.0;
                spec.burstiness = None;
                spec.sizes = SizeProfile {
                    small: 1.0,
                    medium: 0.0,
                    large: 0.0,
                    mtu: spec.sizes.mtu,
                };
                StreamSpec::single(spec, packets)
            }
            Scenario::PhaseShift => {
                let calm = base.spec();
                let mut crowd = flash_crowd_of(base.spec());
                crowd.name = format!("{base}#phase-shift/crowd");
                let head = packets - packets / 2;
                StreamSpec::phased(name, vec![(calm, head), (crowd, packets / 2)])
            }
        }
        .expect("derived scenario specs are valid")
    }
}

/// The flash-crowd transformation shared by [`Scenario::FlashCrowd`] and
/// the second phase of [`Scenario::PhaseShift`].
fn flash_crowd_of(mut spec: TraceSpec) -> TraceSpec {
    spec.seed ^= 0x464c_4153; // "FLAS"
    spec.mean_rate_pps *= 8.0;
    spec.nodes = spec.nodes.saturating_mul(2);
    spec.flows = spec.flows.saturating_mul(4);
    spec.flow_skew = 1.4;
    spec.url_fraction = 0.8;
    spec.sizes = SizeProfile {
        small: 0.30,
        medium: 0.45,
        large: 0.25,
        mtu: spec.sizes.mtu,
    };
    spec
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::Baseline => "baseline",
            Scenario::Bursty => "bursty",
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::DdosSyn => "ddos-syn",
            Scenario::PhaseShift => "phase-shift",
        };
        f.write_str(name)
    }
}

impl FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        Scenario::ALL
            .iter()
            .copied()
            .find(|sc| sc.to_string() == norm)
            .ok_or_else(|| format!("unknown scenario `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_presets_eight_networks() {
        assert_eq!(NetworkPreset::ALL.len(), 10);
        // BWY I and II share the Berry network; everything else distinct.
        let names: Vec<String> = NetworkPreset::ALL.iter().map(|p| p.to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn specs_are_valid_and_distinct() {
        let mut seeds = Vec::new();
        for p in NetworkPreset::ALL {
            let s = p.spec();
            s.validate().expect("preset spec valid");
            seeds.push(s.seed);
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10, "each preset must have a distinct seed");
    }

    #[test]
    fn display_parse_round_trip() {
        for p in NetworkPreset::ALL {
            assert_eq!(p.to_string().parse::<NetworkPreset>().unwrap(), p);
        }
        assert!("NOPE".parse::<NetworkPreset>().is_err());
    }

    #[test]
    fn generate_is_deterministic_per_preset() {
        let a = NetworkPreset::DartmouthBerry.generate(100);
        let b = NetworkPreset::DartmouthBerry.generate(100);
        assert_eq!(a, b);
        let c = NetworkPreset::DartmouthBerry2.generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn subsets_are_drawn_from_all() {
        for p in NetworkPreset::ROUTE_SEVEN {
            assert!(NetworkPreset::ALL.contains(&p));
        }
        for p in NetworkPreset::FIVE {
            assert!(NetworkPreset::ALL.contains(&p));
        }
    }

    #[test]
    fn satellite_preset_is_small_packet_heavy() {
        let aix = NetworkPreset::NlanrAix.spec();
        let mra = NetworkPreset::NlanrMra.spec();
        assert!(aix.sizes.mean_bytes() < mra.sizes.mean_bytes());
    }

    #[test]
    fn scenario_display_parse_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(s.to_string().parse::<Scenario>().unwrap(), s);
        }
        assert!("meteor-strike".parse::<Scenario>().is_err());
    }

    #[test]
    fn every_scenario_streams_on_every_preset() {
        for preset in NetworkPreset::ALL {
            for scenario in Scenario::ALL {
                let spec = scenario.stream_spec(preset, 200);
                assert_eq!(spec.total_packets(), 200, "{preset}/{scenario}");
                let packets: Vec<_> = spec.stream().collect();
                assert_eq!(packets.len(), 200, "{preset}/{scenario}");
                assert!(
                    packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
                    "{preset}/{scenario} timestamps"
                );
            }
        }
    }

    #[test]
    fn scenario_names_qualify_the_base_network() {
        let spec = Scenario::DdosSyn.stream_spec(NetworkPreset::DartmouthDorm, 100);
        assert_eq!(spec.name(), "DRM#ddos-syn");
        let base = Scenario::Baseline.stream_spec(NetworkPreset::DartmouthDorm, 100);
        assert_eq!(base.name(), "DRM#baseline");
    }

    #[test]
    fn baseline_scenario_matches_the_raw_preset() {
        let preset = NetworkPreset::DartmouthBerry;
        let streamed: Vec<_> = Scenario::Baseline
            .stream_spec(preset, 150)
            .stream()
            .collect();
        // Same packets as the materialized preset trace — only the network
        // name is scenario-qualified.
        assert_eq!(streamed, preset.generate(150).packets);
    }

    #[test]
    fn ddos_scenario_is_small_packet_uniform_traffic() {
        let spec = Scenario::DdosSyn.stream_spec(NetworkPreset::DartmouthBerry, 300);
        let packets: Vec<_> = spec.stream().collect();
        assert!(packets.iter().all(|p| p.bytes == 40), "all SYN-sized");
        assert!(packets.iter().all(|p| p.payload.url().is_none()));
    }

    #[test]
    fn phase_shift_changes_traffic_mid_stream() {
        let spec = Scenario::PhaseShift.stream_spec(NetworkPreset::DartmouthBerry, 1000);
        assert_eq!(spec.phases().len(), 2);
        let packets: Vec<_> = spec.stream().collect();
        let urls =
            |range: &[crate::Packet]| range.iter().filter(|p| p.payload.url().is_some()).count();
        let head = urls(&packets[..500]);
        let tail = urls(&packets[500..]);
        // BWY-I is already URL-heavy (45%); the crowd phase pushes the TCP
        // URL share to 80%, so the tail must carry clearly more.
        assert!(
            2 * tail > 3 * head.max(1),
            "flash-crowd phase must carry far more URLs: {head} vs {tail}"
        );
    }
}
