//! Packet records and traces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => f.write_str("tcp"),
            Protocol::Udp => f.write_str("udp"),
            Protocol::Icmp => f.write_str("icmp"),
        }
    }
}

/// Application payload attached to a packet, as far as the benchmark
/// applications care about it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// No application payload of interest.
    Empty,
    /// An HTTP request carrying a URL (consumed by the URL-switching
    /// application).
    Http {
        /// The request URL.
        url: String,
    },
}

impl Payload {
    /// The URL carried by an HTTP payload, if any.
    #[must_use]
    pub fn url(&self) -> Option<&str> {
        match self {
            Payload::Http { url } => Some(url),
            Payload::Empty => None,
        }
    }
}

/// One packet observation, the unit every application consumes.
///
/// # Example
///
/// ```
/// use ddtr_trace::{Packet, Payload, Protocol};
///
/// let pkt = Packet {
///     ts_us: 10,
///     src: 0x0a00_0001,
///     dst: 0x0a00_0002,
///     sport: 4242,
///     dport: 80,
///     proto: Protocol::Tcp,
///     bytes: 576,
///     payload: Payload::Http { url: "/index.html".into() },
/// };
/// assert_eq!(pkt.flow_key() >> 32 & 0xffff_ffff, 0x0a00_0001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival timestamp in microseconds since trace start.
    pub ts_us: u64,
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Protocol,
    /// On-wire packet size in bytes.
    pub bytes: u32,
    /// Application payload of interest.
    pub payload: Payload,
}

impl Packet {
    /// A 64-bit flow identifier: source address in the high half, a hash
    /// of (destination, ports) in the low half. Used as session/flow key by
    /// the URL, IPchains and DRR applications.
    #[must_use]
    pub fn flow_key(&self) -> u64 {
        let low = (u64::from(self.dst) ^ (u64::from(self.sport) << 16) ^ u64::from(self.dport))
            & 0xffff_ffff;
        (u64::from(self.src) << 32) | low
    }
}

/// A finite packet stream plus the name of the network it came from.
///
/// # Example
///
/// ```
/// use ddtr_trace::NetworkPreset;
///
/// let trace = NetworkPreset::NlanrMra.generate(100);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.duration_us() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the originating network (preset or file).
    pub network: String,
    /// The packets, in non-decreasing timestamp order.
    pub packets: Vec<Packet>,
}

impl Trace {
    /// Creates a trace, asserting timestamp monotonicity in debug builds.
    #[must_use]
    pub fn new(network: impl Into<String>, packets: Vec<Packet>) -> Self {
        debug_assert!(
            packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "trace timestamps must be non-decreasing"
        );
        Trace {
            network: network.into(),
            packets,
        }
    }

    /// Number of packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace holds no packets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterator over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Capture duration: last minus first timestamp (zero for traces with
    /// fewer than two packets).
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_us - a.ts_us,
            _ => 0,
        }
    }

    /// Total bytes on the wire.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.bytes)).sum()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ts: u64, src: u32, bytes: u32) -> Packet {
        Packet {
            ts_us: ts,
            src,
            dst: 1,
            sport: 10,
            dport: 80,
            proto: Protocol::Tcp,
            bytes,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn flow_key_separates_sources() {
        let a = pkt(0, 5, 100).flow_key();
        let b = pkt(0, 6, 100).flow_key();
        assert_ne!(a, b);
    }

    #[test]
    fn flow_key_depends_on_ports() {
        let mut p1 = pkt(0, 5, 100);
        let mut p2 = pkt(0, 5, 100);
        p1.dport = 80;
        p2.dport = 443;
        assert_ne!(p1.flow_key(), p2.flow_key());
    }

    #[test]
    fn duration_and_totals() {
        let t = Trace::new("t", vec![pkt(100, 1, 40), pkt(400, 2, 60)]);
        assert_eq!(t.duration_us(), 300);
        assert_eq!(t.total_bytes(), 100);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_has_zero_duration() {
        let t = Trace::new("e", vec![]);
        assert_eq!(t.duration_us(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn payload_url_accessor() {
        assert_eq!(Payload::Empty.url(), None);
        let p = Payload::Http { url: "/a".into() };
        assert_eq!(p.url(), Some("/a"));
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::Udp.to_string(), "udp");
        assert_eq!(Protocol::Icmp.to_string(), "icmp");
    }
}
