//! Trace specifications — the network parameters of the methodology.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An invalid trace specification, reported instead of a panic so callers
/// at the CLI/engine boundary can surface the problem as an error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(String);

impl TraceError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        TraceError(reason.into())
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace spec: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Mixture weights of the classic trimodal Internet packet-size
/// distribution (ACK-sized, default-MTU-sized and full-MTU-sized packets).
///
/// Weights need not be normalised; the generator normalises them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeProfile {
    /// Weight of 40-byte (ACK/control) packets.
    pub small: f64,
    /// Weight of 576-byte (default MTU) packets.
    pub medium: f64,
    /// Weight of full-MTU packets.
    pub large: f64,
    /// The maximum transmission unit of the network, in bytes.
    pub mtu: u32,
}

impl SizeProfile {
    /// Mean packet size implied by the mixture.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    #[must_use]
    pub fn mean_bytes(&self) -> f64 {
        let total = self.small + self.medium + self.large;
        assert!(total > 0.0, "size profile must have positive weight");
        (self.small * 40.0 + self.medium * 576.0 + self.large * f64::from(self.mtu)) / total
    }
}

impl Default for SizeProfile {
    fn default() -> Self {
        // Classic wide-area mix: ~50% ACKs, ~25% default-MTU, ~25% full-MTU.
        SizeProfile {
            small: 0.5,
            medium: 0.25,
            large: 0.25,
            mtu: 1500,
        }
    }
}

/// ON/OFF burstiness of the packet process.
///
/// Real campus/wireless traces are not smooth Poisson streams: packets
/// arrive in *trains* from the same flow separated by silent gaps. The
/// burst model matters to DDT exploration because packet trains reward the
/// roving-pointer implementations (repeated lookups of one key) while the
/// silent gaps let caches cool down.
///
/// # Example
///
/// ```
/// use ddtr_trace::{BurstProfile, TraceSpec};
///
/// let spec = TraceSpec::builder("bursty")
///     .burstiness(BurstProfile::default())
///     .build();
/// assert!(spec.burstiness.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstProfile {
    /// Mean packets per ON burst (geometric burst lengths).
    pub mean_burst_pkts: f64,
    /// Mean OFF-gap length as a multiple of the mean inter-arrival gap.
    pub off_gap_factor: f64,
    /// Probability that the next packet of a burst stays on the same flow
    /// (packet-train locality).
    pub locality: f64,
}

impl BurstProfile {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.mean_burst_pkts < 1.0 {
            return Err(TraceError::new(
                "mean burst length must be at least one packet",
            ));
        }
        if self.off_gap_factor < 0.0 {
            return Err(TraceError::new("off-gap factor must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(TraceError::new(format!(
                "burst locality {} outside [0,1]",
                self.locality
            )));
        }
        Ok(())
    }
}

impl Default for BurstProfile {
    fn default() -> Self {
        // Trains of ~8 packets with strong flow locality, separated by
        // gaps an order of magnitude longer than the in-burst spacing.
        BurstProfile {
            mean_burst_pkts: 8.0,
            off_gap_factor: 20.0,
            locality: 0.85,
        }
    }
}

/// The parameter set describing one network configuration.
///
/// These are exactly the parameters the paper's trace parser extracts and
/// the network-level exploration (step 2) varies: number of nodes,
/// throughput, typical packet sizes — plus the workload-shape parameters
/// (flow count and popularity skew, share of HTTP payloads) that govern the
/// dynamic access pattern of the applications.
///
/// # Example
///
/// ```
/// use ddtr_trace::TraceSpec;
///
/// let spec = TraceSpec::builder("lab")
///     .nodes(32)
///     .mean_rate_pps(2_000.0)
///     .seed(7)
///     .build();
/// assert_eq!(spec.nodes, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Network name.
    pub name: String,
    /// Number of distinct hosts in the network.
    pub nodes: u32,
    /// Mean packet arrival rate, packets per second.
    pub mean_rate_pps: f64,
    /// Packet-size mixture.
    pub sizes: SizeProfile,
    /// Number of concurrently active flows.
    pub flows: u32,
    /// Zipf skew of flow popularity (0 = uniform; ~1 = strongly skewed).
    pub flow_skew: f64,
    /// Fraction of packets carrying an HTTP URL payload, in `[0, 1]`.
    pub url_fraction: f64,
    /// Optional ON/OFF burst structure (smooth Poisson when `None`).
    #[serde(default)]
    pub burstiness: Option<BurstProfile>,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl TraceSpec {
    /// Starts building a spec with sensible campus-network defaults.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> TraceSpecBuilder {
        TraceSpecBuilder {
            spec: TraceSpec {
                name: name.into(),
                nodes: 64,
                mean_rate_pps: 1_000.0,
                sizes: SizeProfile::default(),
                flows: 128,
                flow_skew: 0.8,
                url_fraction: 0.2,
                burstiness: None,
                seed: 0xDD7,
            },
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.nodes < 2 {
            return Err(TraceError::new("a network needs at least two nodes"));
        }
        if self.mean_rate_pps <= 0.0 {
            return Err(TraceError::new("mean rate must be positive"));
        }
        if self.flows == 0 {
            return Err(TraceError::new("flow count must be non-zero"));
        }
        if !(0.0..=1.0).contains(&self.url_fraction) {
            return Err(TraceError::new(format!(
                "url fraction {} outside [0,1]",
                self.url_fraction
            )));
        }
        if self.flow_skew < 0.0 {
            return Err(TraceError::new("flow skew must be non-negative"));
        }
        if self.sizes.small + self.sizes.medium + self.sizes.large <= 0.0 {
            return Err(TraceError::new("size profile must have positive weight"));
        }
        if let Some(b) = &self.burstiness {
            b.validate()?;
        }
        Ok(())
    }
}

/// Builder for [`TraceSpec`].
#[derive(Debug, Clone)]
pub struct TraceSpecBuilder {
    spec: TraceSpec,
}

impl TraceSpecBuilder {
    /// Sets the node count.
    #[must_use]
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.spec.nodes = nodes;
        self
    }

    /// Sets the mean packet rate (packets per second).
    #[must_use]
    pub fn mean_rate_pps(mut self, pps: f64) -> Self {
        self.spec.mean_rate_pps = pps;
        self
    }

    /// Sets the packet-size mixture.
    #[must_use]
    pub fn sizes(mut self, sizes: SizeProfile) -> Self {
        self.spec.sizes = sizes;
        self
    }

    /// Sets the number of active flows.
    #[must_use]
    pub fn flows(mut self, flows: u32) -> Self {
        self.spec.flows = flows;
        self
    }

    /// Sets the Zipf skew of flow popularity.
    #[must_use]
    pub fn flow_skew(mut self, skew: f64) -> Self {
        self.spec.flow_skew = skew;
        self
    }

    /// Sets the fraction of packets carrying URLs.
    #[must_use]
    pub fn url_fraction(mut self, fraction: f64) -> Self {
        self.spec.url_fraction = fraction;
        self
    }

    /// Enables ON/OFF burst structure.
    #[must_use]
    pub fn burstiness(mut self, burst: BurstProfile) -> Self {
        self.spec.burstiness = Some(burst);
        self
    }

    /// Sets the generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the resulting spec fails [`TraceSpec::validate`].
    #[must_use]
    pub fn build(self) -> TraceSpec {
        self.spec.validate().expect("invalid trace spec");
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_mean_is_reasonable() {
        let mean = SizeProfile::default().mean_bytes();
        assert!(mean > 400.0 && mean < 600.0, "mean {mean}");
    }

    #[test]
    fn builder_round_trip() {
        let spec = TraceSpec::builder("x")
            .nodes(10)
            .mean_rate_pps(500.0)
            .flows(20)
            .flow_skew(1.1)
            .url_fraction(0.5)
            .seed(42)
            .build();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.nodes, 10);
        assert_eq!(spec.flows, 20);
        assert_eq!(spec.seed, 42);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let base = TraceSpec::builder("x").build();
        let mut s = base.clone();
        s.nodes = 1;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.mean_rate_pps = 0.0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.url_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.flows = 0;
        assert!(s.validate().is_err());
        let mut s = base;
        s.flow_skew = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid trace spec")]
    fn builder_panics_on_invalid() {
        let _ = TraceSpec::builder("x").nodes(0).build();
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_profile_panics_on_mean() {
        let p = SizeProfile {
            small: 0.0,
            medium: 0.0,
            large: 0.0,
            mtu: 1500,
        };
        let _ = p.mean_bytes();
    }
}
