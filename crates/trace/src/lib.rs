//! Network traces for the DDT exploration methodology.
//!
//! The DATE 2006 paper drives its network-level exploration (step 2) with
//! ten packet traces from eight real networks — three NLANR backbone/campus
//! measurement points and five Dartmouth campus wireless buildings. Those
//! raw traces are not redistributable, so this crate provides the closest
//! synthetic equivalent (see `DESIGN.md`, substitution table):
//!
//! * [`TraceSpec`] — the *network parameters* the paper's Perl tool
//!   extracts from raw traces (node count, throughput, packet-size mixture,
//!   flow-popularity skew, application payload share),
//! * [`TraceGenerator`] — a seeded, deterministic packet-stream synthesiser
//!   (Poisson arrivals, Zipf flow popularity, trimodal packet sizes),
//! * [`NetworkPreset`] — ten named parameter sets standing in for the ten
//!   paper traces (`BWY I` = [`NetworkPreset::DartmouthBerry`]),
//! * [`TraceWriter`]/[`TraceReader`] — a text serialisation so the
//!   parameter-extraction path parses real files exactly like the original
//!   tool flow,
//! * [`NetworkParams`] — the extractor itself,
//! * [`PacketStream`]/[`StreamSpec`] — constant-memory streaming
//!   generation for million-packet workloads, packet-for-packet identical
//!   to the materializing path,
//! * [`Scenario`] — the workload-scenario catalog (bursty, flash-crowd,
//!   ddos-syn, phase-shift) layered over the presets.
//!
//! # Example
//!
//! ```
//! use ddtr_trace::{NetworkParams, NetworkPreset};
//!
//! let trace = NetworkPreset::DartmouthBerry.generate(500);
//! let params = NetworkParams::extract(&trace);
//! assert!(params.nodes_observed > 1);
//! assert!(params.throughput_pps > 0.0);
//! ```

mod format;
mod gen;
mod packet;
mod params;
mod presets;
mod spec;
mod stream;

pub use format::{ParseTraceError, TraceReader, TraceWriter};
pub use gen::{TraceGenerator, URL_STEMS};
pub use packet::{Packet, Payload, Protocol, Trace};
pub use params::{NetworkParams, SizeHistogram};
pub use presets::{NetworkPreset, Scenario};
pub use spec::{BurstProfile, SizeProfile, TraceError, TraceSpec};
pub use stream::{PacketStream, StreamChain, StreamPhase, StreamSpec};
