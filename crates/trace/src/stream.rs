//! Streaming packet generation — constant-memory workloads of any length.
//!
//! The paper's methodology is trace-driven ("an execution of an application
//! under study using as input a network trace"), but a fully materialized
//! [`Trace`](crate::Trace) caps exploration at whatever fits in memory.
//! This module provides the streaming equivalent:
//!
//! * [`PacketStream`] — an iterator yielding seeded packets on the fly,
//!   packet-for-packet identical to [`TraceGenerator::generate`] for the
//!   same spec, in `O(flows)` memory regardless of trace length,
//! * [`StreamSpec`] — a serialisable description of a streamed workload
//!   (one or more [`TraceSpec`] phases), the unit the execution engine
//!   fingerprints for caching instead of hashing millions of packets,
//! * [`StreamChain`] — the iterator over a multi-phase [`StreamSpec`],
//!   with timestamps continuing monotonically across phase boundaries.
//!
//! # Example
//!
//! ```
//! use ddtr_trace::{StreamSpec, TraceGenerator, TraceSpec};
//!
//! let spec = TraceSpec::builder("lab").seed(7).build();
//! let stream = StreamSpec::single(spec.clone(), 500).unwrap();
//! let streamed: Vec<_> = stream.stream().collect();
//! let materialized = TraceGenerator::new(spec).generate(500);
//! assert_eq!(streamed, materialized.packets, "byte-identical");
//! ```

use crate::gen::{
    exponential_gap_us, geometric_len, sample_cdf, synth_url, FlowDef, TraceGenerator,
};
use crate::packet::{Packet, Payload, Protocol, Trace};
use crate::spec::{SizeProfile, TraceError, TraceSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An iterator yielding the packets of one [`TraceSpec`] on the fly.
///
/// Created by [`TraceGenerator::stream`]. Holds the generator's RNG, the
/// per-flow endpoint table and the ON/OFF burst state — `O(flows)` memory,
/// independent of how many packets are drawn.
#[derive(Debug, Clone)]
pub struct PacketStream {
    spec: TraceSpec,
    flow_cdf: Vec<f64>,
    flows: Vec<FlowDef>,
    rng: StdRng,
    ts_us: u64,
    mean_gap_us: f64,
    burst_remaining: u64,
    burst_flow: usize,
    emitted: usize,
    remaining: usize,
}

impl PacketStream {
    /// Starts a stream of exactly `n_packets` packets from `generator`'s
    /// spec, replaying the exact RNG draw order of the materializing path.
    pub(crate) fn new(generator: &TraceGenerator, n_packets: usize) -> Self {
        let spec = generator.spec().clone();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Pre-assign each flow its endpoints and ports so a flow's packets
        // are self-consistent across the trace.
        let flows: Vec<FlowDef> = (0..spec.flows)
            .map(|i| FlowDef::synthesise(i, spec.nodes, &mut rng))
            .collect();
        let mean_gap_us = 1e6 / spec.mean_rate_pps;
        PacketStream {
            flow_cdf: generator.flow_cdf().to_vec(),
            flows,
            rng,
            ts_us: 0,
            mean_gap_us,
            burst_remaining: 0,
            burst_flow: 0,
            emitted: 0,
            remaining: n_packets,
            spec,
        }
    }

    /// The spec driving this stream.
    #[must_use]
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    fn sample_size(sizes: &SizeProfile, rng: &mut StdRng) -> u32 {
        let total = sizes.small + sizes.medium + sizes.large;
        let x = rng.gen::<f64>() * total;
        if x < sizes.small {
            40
        } else if x < sizes.small + sizes.medium {
            576
        } else {
            sizes.mtu
        }
    }
}

impl Iterator for PacketStream {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.remaining == 0 {
            return None;
        }
        let flow_idx = if let Some(burst) = &self.spec.burstiness {
            if self.burst_remaining == 0 {
                // Silent OFF gap before the next train (not before the
                // very first packet).
                if self.emitted > 0 {
                    self.ts_us +=
                        exponential_gap_us(burst.off_gap_factor * self.mean_gap_us, &mut self.rng);
                }
                self.burst_remaining = geometric_len(burst.mean_burst_pkts, &mut self.rng);
                self.burst_flow = sample_cdf(&self.flow_cdf, &mut self.rng);
            } else if self.rng.gen::<f64>() >= burst.locality {
                // Train occasionally interleaves a foreign flow.
                self.burst_flow = sample_cdf(&self.flow_cdf, &mut self.rng);
            }
            self.ts_us += exponential_gap_us(self.mean_gap_us, &mut self.rng);
            self.burst_remaining -= 1;
            self.burst_flow
        } else {
            self.ts_us += exponential_gap_us(self.mean_gap_us, &mut self.rng);
            sample_cdf(&self.flow_cdf, &mut self.rng)
        };
        let flow = &self.flows[flow_idx];
        let bytes = Self::sample_size(&self.spec.sizes, &mut self.rng);
        let payload =
            if flow.proto == Protocol::Tcp && self.rng.gen::<f64>() < self.spec.url_fraction {
                Payload::Http {
                    url: synth_url(&mut self.rng),
                }
            } else {
                Payload::Empty
            };
        self.emitted += 1;
        self.remaining -= 1;
        Some(Packet {
            ts_us: self.ts_us,
            src: flow.src,
            dst: flow.dst,
            sport: flow.sport,
            dport: flow.dport,
            proto: flow.proto,
            bytes,
            payload,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PacketStream {}

/// One phase of a streamed workload: a network spec and how many packets
/// of it to emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPhase {
    /// The network parameters of this phase.
    pub spec: TraceSpec,
    /// Packets emitted before moving to the next phase.
    pub packets: usize,
}

/// A serialisable description of a streamed workload — the trace analogue
/// the execution engine caches by *description* instead of by materialized
/// packets.
///
/// A `StreamSpec` is one or more validated [`TraceSpec`] phases played
/// back-to-back: single-phase for the classic presets, multi-phase for
/// scenarios whose traffic shape changes mid-run (see
/// [`Scenario`](crate::Scenario)). Timestamps continue monotonically
/// across phase boundaries.
///
/// The constructors ([`StreamSpec::single`], [`StreamSpec::phased`])
/// validate every phase, so a constructed `StreamSpec` always streams
/// without panicking. Deserialization — like [`TraceSpec`]'s — trusts
/// its source; call [`StreamSpec::validate`] before streaming a spec
/// ingested from untrusted JSON, as streaming an invalid phase panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    name: String,
    phases: Vec<StreamPhase>,
}

impl StreamSpec {
    /// A single-phase streamed workload named after its spec.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the spec fails validation.
    pub fn single(spec: TraceSpec, packets: usize) -> Result<Self, TraceError> {
        spec.validate()?;
        Ok(StreamSpec {
            name: spec.name.clone(),
            phases: vec![StreamPhase { spec, packets }],
        })
    }

    /// A multi-phase streamed workload.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when no phase is given or any phase's spec
    /// fails validation.
    pub fn phased(
        name: impl Into<String>,
        phases: Vec<(TraceSpec, usize)>,
    ) -> Result<Self, TraceError> {
        if phases.is_empty() {
            return Err(TraceError::new("a stream needs at least one phase"));
        }
        for (spec, _) in &phases {
            spec.validate()?;
        }
        Ok(StreamSpec {
            name: name.into(),
            phases: phases
                .into_iter()
                .map(|(spec, packets)| StreamPhase { spec, packets })
                .collect(),
        })
    }

    /// Validates every phase — a no-op for constructed specs, the entry
    /// check for deserialized ones.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the spec has no phase or any phase's
    /// [`TraceSpec`] fails validation.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.phases.is_empty() {
            return Err(TraceError::new("a stream needs at least one phase"));
        }
        for phase in &self.phases {
            phase.spec.validate()?;
        }
        Ok(())
    }

    /// The workload name (the network name of single-phase streams).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated phases, in playback order.
    #[must_use]
    pub fn phases(&self) -> &[StreamPhase] {
        &self.phases
    }

    /// Total packets the stream will emit.
    #[must_use]
    pub fn total_packets(&self) -> usize {
        self.phases.iter().map(|p| p.packets).sum()
    }

    /// Streams the workload's packets in constant memory.
    #[must_use]
    pub fn stream(&self) -> StreamChain<'_> {
        StreamChain {
            phases: &self.phases,
            next_phase: 0,
            current: None,
            offset_us: 0,
            last_ts_us: 0,
            remaining: self.total_packets(),
        }
    }

    /// Materializes the whole workload as a [`Trace`] (for tests,
    /// parameter extraction on small runs, and the legacy engine path).
    #[must_use]
    pub fn materialize(&self) -> Trace {
        Trace::new(self.name.clone(), self.stream().collect())
    }
}

/// Iterator over a (possibly multi-phase) [`StreamSpec`].
///
/// Created by [`StreamSpec::stream`]. Each phase replays its own seeded
/// [`PacketStream`]; timestamps of later phases are offset by the last
/// timestamp emitted so the chain stays non-decreasing.
#[derive(Debug, Clone)]
pub struct StreamChain<'a> {
    phases: &'a [StreamPhase],
    next_phase: usize,
    current: Option<PacketStream>,
    offset_us: u64,
    last_ts_us: u64,
    remaining: usize,
}

impl Iterator for StreamChain<'_> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        loop {
            if let Some(stream) = &mut self.current {
                if let Some(mut pkt) = stream.next() {
                    pkt.ts_us += self.offset_us;
                    self.last_ts_us = pkt.ts_us;
                    self.remaining -= 1;
                    return Some(pkt);
                }
                self.current = None;
                self.offset_us = self.last_ts_us;
            }
            let phase = self.phases.get(self.next_phase)?;
            self.next_phase += 1;
            // Phases were validated at StreamSpec construction.
            let generator =
                TraceGenerator::try_new(phase.spec.clone()).expect("stream phases are validated");
            self.current = Some(generator.stream(phase.packets));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for StreamChain<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BurstProfile;

    fn spec(name: &str, seed: u64) -> TraceSpec {
        TraceSpec::builder(name).seed(seed).build()
    }

    #[test]
    fn single_phase_stream_equals_generate() {
        let s = spec("eq", 11);
        let stream = StreamSpec::single(s.clone(), 400).expect("valid");
        let streamed: Vec<Packet> = stream.stream().collect();
        let materialized = TraceGenerator::new(s).generate(400);
        assert_eq!(streamed, materialized.packets);
        assert_eq!(stream.materialize(), materialized);
    }

    #[test]
    fn stream_is_exact_size() {
        let stream = StreamSpec::single(spec("n", 1), 123).expect("valid");
        let mut it = stream.stream();
        assert_eq!(it.len(), 123);
        it.next();
        assert_eq!(it.len(), 122);
        assert_eq!(it.count(), 122);
    }

    #[test]
    fn phased_stream_concatenates_with_monotone_timestamps() {
        let a = spec("calm", 5);
        let mut b = spec("storm", 6);
        b.burstiness = Some(BurstProfile::default());
        let stream = StreamSpec::phased("calm>storm", vec![(a.clone(), 300), (b, 300)])
            .expect("valid phases");
        assert_eq!(stream.total_packets(), 600);
        let packets: Vec<Packet> = stream.stream().collect();
        assert_eq!(packets.len(), 600);
        assert!(
            packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "timestamps must stay non-decreasing across the phase boundary"
        );
        // The first phase is byte-identical to its standalone stream.
        let solo: Vec<Packet> = TraceGenerator::new(a).stream(300).collect();
        assert_eq!(&packets[..300], &solo[..]);
    }

    #[test]
    fn phased_stream_is_deterministic() {
        let stream = StreamSpec::phased("two", vec![(spec("p1", 1), 100), (spec("p2", 2), 150)])
            .expect("valid");
        let a: Vec<Packet> = stream.stream().collect();
        let b: Vec<Packet> = stream.stream().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_zero_packet_phases_are_handled() {
        assert!(StreamSpec::phased("none", vec![]).is_err());
        let stream = StreamSpec::phased(
            "zero-mid",
            vec![(spec("a", 1), 50), (spec("b", 2), 0), (spec("c", 3), 50)],
        )
        .expect("valid");
        let packets: Vec<Packet> = stream.stream().collect();
        assert_eq!(packets.len(), 100);
        assert!(packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn invalid_phase_is_rejected_at_construction() {
        let mut bad = spec("bad", 1);
        bad.nodes = 0;
        assert!(StreamSpec::single(bad.clone(), 10).is_err());
        assert!(StreamSpec::phased("x", vec![(spec("ok", 1), 10), (bad, 10)]).is_err());
    }

    #[test]
    fn deserialized_specs_are_checked_by_validate() {
        // Deserialization trusts its source (matching TraceSpec), so a
        // JSON spec smuggling an invalid phase passes parsing — validate()
        // is the entry check that catches it before streaming panics.
        let mut bad = spec("bad", 1);
        bad.nodes = 0;
        let json = serde_json::to_string(&StreamSpec {
            name: "smuggled".into(),
            phases: vec![StreamPhase {
                spec: bad,
                packets: 5,
            }],
        })
        .expect("ser");
        let parsed: StreamSpec = serde_json::from_str(&json).expect("parses unvalidated");
        assert!(parsed.validate().is_err());
        let good = StreamSpec::single(spec("good", 1), 5).expect("valid");
        assert!(good.validate().is_ok());
        let empty: StreamSpec = serde_json::from_str(r#"{"name":"e","phases":[]}"#).expect("parse");
        assert!(empty.validate().is_err());
    }

    #[test]
    fn stream_spec_serialises_round_trip() {
        let stream = StreamSpec::phased("rt", vec![(spec("p1", 1), 10), (spec("p2", 2), 20)])
            .expect("valid");
        let json = serde_json::to_string(&stream).expect("ser");
        let back: StreamSpec = serde_json::from_str(&json).expect("de");
        assert_eq!(back, stream);
        assert_eq!(back.name(), "rt");
        assert_eq!(back.phases().len(), 2);
    }
}
