//! Network-parameter extraction — the Rust port of the paper's Perl trace
//! parser.

use crate::packet::{Packet, Trace};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::BTreeSet;

/// Histogram of packet sizes over the classic trimodal buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Packets of at most 64 bytes (ACK/control).
    pub small: u64,
    /// Packets of 65..=576 bytes.
    pub medium: u64,
    /// Packets larger than 576 bytes.
    pub large: u64,
}

impl SizeHistogram {
    /// Total packets counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.small + self.medium + self.large
    }

    /// Share of each bucket, in `[0, 1]`; zeros for an empty histogram.
    #[must_use]
    pub fn shares(&self) -> [f64; 3] {
        let t = self.total();
        if t == 0 {
            return [0.0; 3];
        }
        [
            self.small as f64 / t as f64,
            self.medium as f64 / t as f64,
            self.large as f64 / t as f64,
        ]
    }
}

/// The network parameters the methodology extracts from a trace before the
/// network-level exploration: "the number of nodes in the network, the
/// throughput of the network and the typical packet sizes used".
///
/// # Example
///
/// ```
/// use ddtr_trace::{NetworkParams, NetworkPreset};
///
/// let trace = NetworkPreset::NlanrAix.generate(400);
/// let p = NetworkParams::extract(&trace);
/// assert!(p.mtu_bytes <= 1500);
/// assert!(p.mean_packet_bytes > 0.0);
/// assert!(p.flows_observed > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Network name carried by the trace.
    pub network: String,
    /// Distinct hosts seen as source or destination.
    pub nodes_observed: u32,
    /// Capture duration in seconds.
    pub duration_s: f64,
    /// Observed throughput in packets per second.
    pub throughput_pps: f64,
    /// Observed throughput in bits per second.
    pub throughput_bps: f64,
    /// Mean on-wire packet size in bytes.
    pub mean_packet_bytes: f64,
    /// Largest packet observed (the effective MTU).
    pub mtu_bytes: u32,
    /// Packet-size histogram.
    pub sizes: SizeHistogram,
    /// Distinct flows observed.
    pub flows_observed: u32,
    /// Share of packets carrying an HTTP URL payload.
    pub url_share: f64,
    /// Mean length of same-flow packet runs (1.0 = perfectly interleaved;
    /// large values indicate packet trains).
    #[serde(default)]
    pub mean_train_len: f64,
    /// Inter-arrival bimodality: the p99 gap over the median gap. Smooth
    /// Poisson traffic sits in the single digits; ON/OFF traffic shows
    /// order-of-magnitude ratios.
    #[serde(default)]
    pub gap_p99_over_median: f64,
}

impl NetworkParams {
    /// Extracts all parameters in a single pass over the trace.
    ///
    /// Empty traces yield all-zero parameters (with the network name kept),
    /// which downstream validation rejects before exploration.
    #[must_use]
    pub fn extract(trace: &Trace) -> Self {
        Self::extract_inner(trace.network.clone(), trace.iter())
    }

    /// Extracts all parameters from a packet stream without materializing
    /// it — same single pass and identical results as
    /// [`NetworkParams::extract`] over the equivalent trace.
    ///
    /// Note on memory: the exact `gap_p99_over_median` quantile keeps one
    /// `u64` per inter-arrival gap, so extraction is `O(packets)` in that
    /// one accumulator (~8 MB per million packets) even when the packets
    /// themselves are streamed. Extract at a representative length rather
    /// than the full workload length; a bounded quantile sketch is a
    /// ROADMAP follow-up.
    ///
    /// # Example
    ///
    /// ```
    /// use ddtr_trace::{NetworkParams, NetworkPreset};
    ///
    /// let preset = NetworkPreset::NlanrAix;
    /// let generator = ddtr_trace::TraceGenerator::new(preset.spec());
    /// let streamed = NetworkParams::extract_stream("NLANR-AIX", generator.stream(400));
    /// assert_eq!(streamed, NetworkParams::extract(&preset.generate(400)));
    /// ```
    #[must_use]
    pub fn extract_stream(
        network: impl Into<String>,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Self {
        Self::extract_inner(network.into(), packets)
    }

    fn extract_inner<B: Borrow<Packet>>(
        network: String,
        packets: impl IntoIterator<Item = B>,
    ) -> Self {
        let packets = packets.into_iter();
        let mut hosts = BTreeSet::new();
        let mut flows = BTreeSet::new();
        let mut sizes = SizeHistogram::default();
        let mut mtu = 0u32;
        let mut urls = 0u64;
        let mut count = 0u64;
        let mut total_bytes = 0u64;
        let mut first_ts: Option<u64> = None;
        // Burst-structure accumulators. Slices and the exact-size packet
        // streams report their length via size_hint, so the gap vector is
        // allocated once.
        let mut runs = 0u64;
        let mut last_flow: Option<u64> = None;
        let mut gaps: Vec<u64> = Vec::with_capacity(packets.size_hint().0.saturating_sub(1));
        let mut last_ts: Option<u64> = None;
        for p in packets {
            let p = p.borrow();
            count += 1;
            total_bytes += u64::from(p.bytes);
            first_ts.get_or_insert(p.ts_us);
            hosts.insert(p.src);
            hosts.insert(p.dst);
            flows.insert(p.flow_key());
            match p.bytes {
                0..=64 => sizes.small += 1,
                65..=576 => sizes.medium += 1,
                _ => sizes.large += 1,
            }
            mtu = mtu.max(p.bytes);
            if p.payload.url().is_some() {
                urls += 1;
            }
            if last_flow != Some(p.flow_key()) {
                runs += 1;
                last_flow = Some(p.flow_key());
            }
            if let Some(prev) = last_ts {
                gaps.push(p.ts_us.saturating_sub(prev));
            }
            last_ts = Some(p.ts_us);
        }
        let mean_train_len = if runs == 0 {
            0.0
        } else {
            count as f64 / runs as f64
        };
        gaps.sort_unstable();
        let gap_p99_over_median = if gaps.is_empty() {
            0.0
        } else {
            let median = gaps[gaps.len() / 2].max(1);
            let p99 = gaps[(gaps.len() * 99 / 100).min(gaps.len() - 1)];
            p99 as f64 / median as f64
        };
        let n = count as f64;
        let duration_us = match (first_ts, last_ts) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        };
        let duration_s = duration_us as f64 / 1e6;
        let (pps, bps) = if duration_s > 0.0 {
            (n / duration_s, total_bytes as f64 * 8.0 / duration_s)
        } else {
            (0.0, 0.0)
        };
        NetworkParams {
            network,
            nodes_observed: hosts.len() as u32,
            duration_s,
            throughput_pps: pps,
            throughput_bps: bps,
            mean_packet_bytes: if count == 0 {
                0.0
            } else {
                total_bytes as f64 / n
            },
            mtu_bytes: mtu,
            sizes,
            flows_observed: flows.len() as u32,
            url_share: if count == 0 { 0.0 } else { urls as f64 / n },
            mean_train_len,
            gap_p99_over_median,
        }
    }

    /// Whether the trace was rich enough to drive an exploration.
    #[must_use]
    pub fn is_usable(&self) -> bool {
        self.nodes_observed >= 2 && self.throughput_pps > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Payload, Protocol, Trace};
    use crate::presets::NetworkPreset;

    fn pkt(ts: u64, src: u32, dst: u32, bytes: u32, url: Option<&str>) -> Packet {
        Packet {
            ts_us: ts,
            src,
            dst,
            sport: 1024,
            dport: 80,
            proto: Protocol::Tcp,
            bytes,
            payload: url.map_or(Payload::Empty, |u| Payload::Http { url: u.into() }),
        }
    }

    #[test]
    fn extracts_hand_built_trace() {
        let t = Trace::new(
            "hand",
            vec![
                pkt(0, 1, 2, 40, None),
                pkt(500_000, 1, 3, 576, Some("/a")),
                pkt(1_000_000, 2, 3, 1500, None),
            ],
        );
        let p = NetworkParams::extract(&t);
        assert_eq!(p.nodes_observed, 3);
        assert_eq!(p.mtu_bytes, 1500);
        assert_eq!(
            p.sizes,
            SizeHistogram {
                small: 1,
                medium: 1,
                large: 1
            }
        );
        assert!((p.duration_s - 1.0).abs() < 1e-9);
        assert!((p.throughput_pps - 3.0).abs() < 1e-9);
        assert!((p.url_share - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.flows_observed, 3);
        assert!(p.is_usable());
    }

    #[test]
    fn empty_trace_is_unusable() {
        let p = NetworkParams::extract(&Trace::new("empty", vec![]));
        assert!(!p.is_usable());
        assert_eq!(p.nodes_observed, 0);
        assert_eq!(p.mean_packet_bytes, 0.0);
    }

    #[test]
    fn histogram_shares_sum_to_one() {
        let t = NetworkPreset::NlanrTau.generate(500);
        let p = NetworkParams::extract(&t);
        let sum: f64 = p.sizes.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(p.sizes.total(), 500);
    }

    #[test]
    fn extraction_recovers_preset_shape() {
        // The extractor must recover, approximately, the parameters the
        // preset was generated from — this closes the paper's tool loop.
        let preset = NetworkPreset::DartmouthLibrary;
        let spec = preset.spec();
        let t = preset.generate(3000);
        let p = NetworkParams::extract(&t);
        assert!(p.nodes_observed <= spec.nodes * 2);
        assert!(p.nodes_observed >= spec.nodes / 4);
        assert_eq!(p.mtu_bytes, spec.sizes.mtu);
        let rate_err = (p.throughput_pps - spec.mean_rate_pps).abs() / spec.mean_rate_pps;
        assert!(rate_err < 0.25, "rate error {rate_err}");
        assert!(p.flows_observed <= spec.flows);
        assert!(p.flows_observed > spec.flows / 4);
    }

    #[test]
    fn bigger_networks_extract_more_nodes() {
        let small = NetworkParams::extract(&NetworkPreset::DartmouthWhittemore.generate(2000));
        let big = NetworkParams::extract(&NetworkPreset::NlanrMra.generate(2000));
        assert!(big.nodes_observed > small.nodes_observed);
    }

    #[test]
    fn burst_structure_is_extracted() {
        use crate::spec::{BurstProfile, TraceSpec};
        use crate::TraceGenerator;
        let smooth_spec = TraceSpec::builder("smooth").seed(3).build();
        let smooth = NetworkParams::extract(&TraceGenerator::new(smooth_spec).generate(1500));
        let mut bursty_spec = TraceSpec::builder("bursty").seed(3).build();
        bursty_spec.burstiness = Some(BurstProfile {
            mean_burst_pkts: 10.0,
            off_gap_factor: 40.0,
            locality: 0.95,
        });
        let bursty = NetworkParams::extract(&TraceGenerator::new(bursty_spec).generate(1500));
        assert!(
            bursty.mean_train_len > 2.0 * smooth.mean_train_len,
            "trains: {} vs {}",
            smooth.mean_train_len,
            bursty.mean_train_len
        );
        assert!(
            bursty.gap_p99_over_median > 3.0 * smooth.gap_p99_over_median,
            "gaps: {} vs {}",
            smooth.gap_p99_over_median,
            bursty.gap_p99_over_median
        );
    }

    #[test]
    fn streamed_extraction_matches_materialized() {
        use crate::TraceGenerator;
        let preset = NetworkPreset::DartmouthLibrary;
        let materialized = NetworkParams::extract(&preset.generate(1200));
        let g = TraceGenerator::new(preset.spec());
        let streamed = NetworkParams::extract_stream(preset.to_string(), g.stream(1200));
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn burst_metrics_handle_degenerate_traces() {
        let empty = NetworkParams::extract(&Trace::new("empty", vec![]));
        assert_eq!(empty.mean_train_len, 0.0);
        assert_eq!(empty.gap_p99_over_median, 0.0);
        let single = NetworkParams::extract(&Trace::new("one", vec![pkt(0, 1, 2, 40, None)]));
        assert_eq!(single.mean_train_len, 1.0);
        assert_eq!(single.gap_p99_over_median, 0.0);
    }
}
