//! Deterministic synthetic packet-stream generation.

use crate::packet::{Packet, Payload, Protocol, Trace};
use crate::spec::TraceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pool of URL path templates the generator draws from; the URL-switching
/// application's pattern table is built from the same stems, so lookups hit
/// with realistic probability.
pub const URL_STEMS: [&str; 12] = [
    "/index.html",
    "/images/logo.gif",
    "/news/today",
    "/mail/inbox",
    "/search?q=",
    "/static/css/site.css",
    "/api/v1/items",
    "/video/stream",
    "/docs/manual",
    "/login",
    "/cart/checkout",
    "/feed.rss",
];

/// Seeded packet-stream synthesiser implementing the workload model of the
/// substituted traces: Poisson arrivals, Zipf-popular flows over a fixed
/// node population, trimodal packet sizes and a configurable share of HTTP
/// payloads.
///
/// Generation is fully deterministic in [`TraceSpec::seed`].
///
/// # Example
///
/// ```
/// use ddtr_trace::{TraceGenerator, TraceSpec};
///
/// let spec = TraceSpec::builder("lab").seed(1).build();
/// let a = TraceGenerator::new(spec.clone()).generate(200);
/// let b = TraceGenerator::new(spec).generate(200);
/// assert_eq!(a, b, "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: TraceSpec,
    /// Zipf CDF over flow ranks (cumulative, normalised).
    flow_cdf: Vec<f64>,
}

impl TraceGenerator {
    /// Creates a generator for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`TraceSpec::validate`].
    #[must_use]
    pub fn new(spec: TraceSpec) -> Self {
        spec.validate().expect("invalid trace spec");
        let flow_cdf = zipf_cdf(spec.flows as usize, spec.flow_skew);
        TraceGenerator { spec, flow_cdf }
    }

    /// The spec driving this generator.
    #[must_use]
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// Generates a trace of exactly `n_packets` packets.
    ///
    /// With [`TraceSpec::burstiness`] set, packets arrive in geometric
    /// ON-trains with per-train flow locality, separated by long OFF gaps
    /// — the packet-train structure of real campus traces. Without it the
    /// stream is a smooth Poisson process.
    #[must_use]
    pub fn generate(&self, n_packets: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.spec.seed);
        let mut ts_us = 0u64;
        let mean_gap_us = 1e6 / self.spec.mean_rate_pps;
        // Pre-assign each flow its endpoints and ports so a flow's packets
        // are self-consistent across the trace.
        let flows: Vec<FlowDef> = (0..self.spec.flows)
            .map(|i| FlowDef::synthesise(i, self.spec.nodes, &mut rng))
            .collect();
        let mut packets = Vec::with_capacity(n_packets);
        // ON/OFF burst state.
        let mut burst_remaining = 0u64;
        let mut burst_flow = 0usize;
        for i in 0..n_packets {
            let flow_idx = if let Some(burst) = &self.spec.burstiness {
                if burst_remaining == 0 {
                    // Silent OFF gap before the next train (not before the
                    // very first packet).
                    if i > 0 {
                        ts_us += exponential_gap_us(burst.off_gap_factor * mean_gap_us, &mut rng);
                    }
                    burst_remaining = geometric_len(burst.mean_burst_pkts, &mut rng);
                    burst_flow = sample_cdf(&self.flow_cdf, &mut rng);
                } else if rng.gen::<f64>() >= burst.locality {
                    // Train occasionally interleaves a foreign flow.
                    burst_flow = sample_cdf(&self.flow_cdf, &mut rng);
                }
                ts_us += exponential_gap_us(mean_gap_us, &mut rng);
                burst_remaining -= 1;
                burst_flow
            } else {
                ts_us += exponential_gap_us(mean_gap_us, &mut rng);
                sample_cdf(&self.flow_cdf, &mut rng)
            };
            let flow = &flows[flow_idx];
            let bytes = self.sample_size(&mut rng);
            let payload =
                if flow.proto == Protocol::Tcp && rng.gen::<f64>() < self.spec.url_fraction {
                    Payload::Http {
                        url: synth_url(&mut rng),
                    }
                } else {
                    Payload::Empty
                };
            packets.push(Packet {
                ts_us,
                src: flow.src,
                dst: flow.dst,
                sport: flow.sport,
                dport: flow.dport,
                proto: flow.proto,
                bytes,
                payload,
            });
        }
        Trace::new(self.spec.name.clone(), packets)
    }

    fn sample_size(&self, rng: &mut StdRng) -> u32 {
        let s = &self.spec.sizes;
        let total = s.small + s.medium + s.large;
        let x = rng.gen::<f64>() * total;
        if x < s.small {
            40
        } else if x < s.small + s.medium {
            576
        } else {
            s.mtu
        }
    }
}

#[derive(Debug, Clone)]
struct FlowDef {
    src: u32,
    dst: u32,
    sport: u16,
    dport: u16,
    proto: Protocol,
}

impl FlowDef {
    fn synthesise(index: u32, nodes: u32, rng: &mut StdRng) -> Self {
        let src = 0x0a00_0000 + rng.gen_range(0..nodes);
        let mut dst = 0x0a00_0000 + rng.gen_range(0..nodes);
        if dst == src {
            dst = 0x0a00_0000 + (dst - 0x0a00_0000 + 1) % nodes;
        }
        let well_known = [80u16, 443, 25, 53, 110, 8080];
        let dport = well_known[(index as usize) % well_known.len()];
        let proto = match index % 10 {
            0..=7 => Protocol::Tcp,
            8 => Protocol::Udp,
            _ => Protocol::Icmp,
        };
        FlowDef {
            src,
            dst,
            sport: rng.gen_range(1024..u16::MAX),
            dport,
            proto,
        }
    }
}

/// Cumulative Zipf distribution over `n` ranks with skew `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Draws an index from a cumulative distribution by binary search.
fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let x = rng.gen::<f64>();
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

/// Exponential inter-arrival gap (Poisson process), at least 1 us so
/// timestamps strictly increase on average workloads.
fn exponential_gap_us(mean_us: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let gap = -mean_us * u.ln();
    gap.max(1.0) as u64
}

/// Geometric burst length with the given mean, at least one packet.
fn geometric_len(mean_pkts: f64, rng: &mut StdRng) -> u64 {
    let p = (1.0 / mean_pkts).clamp(1e-6, 1.0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (1.0 + u.ln() / (1.0 - p).max(1e-12).ln()).max(1.0) as u64
}

fn synth_url(rng: &mut StdRng) -> String {
    let stem = URL_STEMS[rng.gen_range(0..URL_STEMS.len())];
    if stem.ends_with('=') {
        format!("{stem}{}", rng.gen_range(0..1000))
    } else {
        stem.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SizeProfile;
    use std::collections::BTreeMap;

    fn spec() -> TraceSpec {
        TraceSpec::builder("test").seed(99).build()
    }

    #[test]
    fn generates_requested_count_deterministically() {
        let g = TraceGenerator::new(spec());
        let a = g.generate(300);
        let b = g.generate(300);
        assert_eq!(a.len(), 300);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(spec()).generate(100);
        let mut s2 = spec();
        s2.seed = 100;
        let b = TraceGenerator::new(s2).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let t = TraceGenerator::new(spec()).generate(500);
        assert!(t.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn sizes_come_from_the_mixture() {
        let s = TraceSpec::builder("sz")
            .sizes(SizeProfile {
                small: 1.0,
                medium: 1.0,
                large: 1.0,
                mtu: 1400,
            })
            .build();
        let t = TraceGenerator::new(s).generate(600);
        let mut seen = BTreeMap::new();
        for p in &t {
            *seen.entry(p.bytes).or_insert(0u32) += 1;
        }
        assert_eq!(
            seen.keys().copied().collect::<Vec<_>>(),
            vec![40, 576, 1400]
        );
        // Roughly balanced thirds.
        for &count in seen.values() {
            assert!(count > 100, "mixture component starved: {seen:?}");
        }
    }

    #[test]
    fn flow_popularity_is_skewed() {
        let s = TraceSpec::builder("zipf").flows(50).flow_skew(1.2).build();
        let t = TraceGenerator::new(s).generate(2000);
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for p in &t {
            *counts.entry(p.flow_key()).or_insert(0) += 1;
        }
        let mut v: Vec<u32> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top = u64::from(v[0]);
        let total: u64 = v.iter().map(|&c| u64::from(c)).sum();
        assert!(
            top * 5 > total,
            "top flow should dominate a skewed trace: {top}/{total}"
        );
    }

    #[test]
    fn url_fraction_honoured_approximately() {
        let s = TraceSpec::builder("urls").url_fraction(0.9).build();
        let t = TraceGenerator::new(s).generate(1000);
        let with_url = t.iter().filter(|p| p.payload.url().is_some()).count();
        // TCP-only payloads, so a bit below 0.9 of all packets.
        assert!(with_url > 500, "only {with_url} URLs generated");
    }

    #[test]
    fn zero_url_fraction_generates_none() {
        let s = TraceSpec::builder("nourl").url_fraction(0.0).build();
        let t = TraceGenerator::new(s).generate(400);
        assert!(t.iter().all(|p| p.payload.url().is_none()));
    }

    #[test]
    fn sources_stay_within_node_population() {
        let s = TraceSpec::builder("n").nodes(8).build();
        let t = TraceGenerator::new(s).generate(400);
        for p in &t {
            assert!((0x0a00_0000..0x0a00_0008).contains(&p.src));
            assert!((0x0a00_0000..0x0a00_0008).contains(&p.dst));
            assert_ne!(p.src, p.dst, "self-traffic is filtered");
        }
    }

    #[test]
    fn bursty_trace_has_longer_same_flow_runs() {
        use crate::spec::BurstProfile;
        let run_lengths = |trace: &crate::packet::Trace| {
            let mut runs = Vec::new();
            let mut current = 0u64;
            let mut last = None;
            for p in trace {
                let key = p.flow_key();
                if last == Some(key) {
                    current += 1;
                } else {
                    if current > 0 {
                        runs.push(current);
                    }
                    current = 1;
                    last = Some(key);
                }
            }
            runs.push(current);
            runs.iter().sum::<u64>() as f64 / runs.len() as f64
        };
        let smooth = TraceGenerator::new(spec()).generate(1500);
        let mut bursty_spec = spec();
        bursty_spec.burstiness = Some(BurstProfile::default());
        let bursty = TraceGenerator::new(bursty_spec).generate(1500);
        let mean_smooth = run_lengths(&smooth);
        let mean_bursty = run_lengths(&bursty);
        assert!(
            mean_bursty > 2.0 * mean_smooth,
            "packet trains must lengthen same-flow runs: {mean_smooth:.2} vs {mean_bursty:.2}"
        );
    }

    #[test]
    fn bursty_trace_has_bimodal_gaps() {
        use crate::spec::BurstProfile;
        let mut s = spec();
        s.burstiness = Some(BurstProfile {
            mean_burst_pkts: 6.0,
            off_gap_factor: 50.0,
            locality: 0.9,
        });
        let t = TraceGenerator::new(s).generate(1000);
        let mut gaps: Vec<u64> = t
            .packets
            .windows(2)
            .map(|w| w[1].ts_us - w[0].ts_us)
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let p99 = gaps[gaps.len() * 99 / 100];
        assert!(
            p99 > 10 * median.max(1),
            "OFF gaps must dwarf in-burst gaps: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn bursty_generation_is_deterministic() {
        use crate::spec::BurstProfile;
        let mut s = spec();
        s.burstiness = Some(BurstProfile::default());
        let g = TraceGenerator::new(s);
        assert_eq!(g.generate(400), g.generate(400));
    }

    #[test]
    fn geometric_len_respects_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let total: u64 = (0..n).map(|_| geometric_len(8.0, &mut rng)).sum();
        let mean = total as f64 / f64::from(n);
        assert!((6.0..10.0).contains(&mean), "mean {mean}");
        // Degenerate mean of one packet never stalls or panics.
        assert_eq!(geometric_len(1.0, &mut rng), 1);
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(20, 0.9);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().copied().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_skew_is_roughly_uniform() {
        let cdf = zipf_cdf(4, 0.0);
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[1] - 0.5).abs() < 1e-12);
    }
}
