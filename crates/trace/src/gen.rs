//! Deterministic synthetic packet-stream generation.

use crate::packet::{Protocol, Trace};
use crate::spec::{TraceError, TraceSpec};
use crate::stream::PacketStream;
use rand::rngs::StdRng;
use rand::Rng;

/// A pool of URL path templates the generator draws from; the URL-switching
/// application's pattern table is built from the same stems, so lookups hit
/// with realistic probability.
pub const URL_STEMS: [&str; 12] = [
    "/index.html",
    "/images/logo.gif",
    "/news/today",
    "/mail/inbox",
    "/search?q=",
    "/static/css/site.css",
    "/api/v1/items",
    "/video/stream",
    "/docs/manual",
    "/login",
    "/cart/checkout",
    "/feed.rss",
];

/// Seeded packet-stream synthesiser implementing the workload model of the
/// substituted traces: Poisson arrivals, Zipf-popular flows over a fixed
/// node population, trimodal packet sizes and a configurable share of HTTP
/// payloads.
///
/// Generation is fully deterministic in [`TraceSpec::seed`].
///
/// # Example
///
/// ```
/// use ddtr_trace::{TraceGenerator, TraceSpec};
///
/// let spec = TraceSpec::builder("lab").seed(1).build();
/// let a = TraceGenerator::new(spec.clone()).generate(200);
/// let b = TraceGenerator::new(spec).generate(200);
/// assert_eq!(a, b, "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: TraceSpec,
    /// Zipf CDF over flow ranks (cumulative, normalised).
    flow_cdf: Vec<f64>,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, validating it first.
    ///
    /// This is the constructor the CLI and engine use: an invalid spec
    /// surfaces as an error message instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when `spec` fails [`TraceSpec::validate`].
    pub fn try_new(spec: TraceSpec) -> Result<Self, TraceError> {
        spec.validate()?;
        let flow_cdf = zipf_cdf(spec.flows as usize, spec.flow_skew);
        Ok(TraceGenerator { spec, flow_cdf })
    }

    /// Creates a generator for `spec` (thin panicking wrapper over
    /// [`TraceGenerator::try_new`], for tests and known-valid presets).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`TraceSpec::validate`].
    #[must_use]
    pub fn new(spec: TraceSpec) -> Self {
        Self::try_new(spec).expect("invalid trace spec")
    }

    /// The spec driving this generator.
    #[must_use]
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// The Zipf flow-popularity CDF this generator samples from.
    pub(crate) fn flow_cdf(&self) -> &[f64] {
        &self.flow_cdf
    }

    /// Generates a trace of exactly `n_packets` packets by draining a
    /// [`PacketStream`] — the materialized and streamed paths share one
    /// code path and are packet-for-packet identical.
    ///
    /// With [`TraceSpec::burstiness`] set, packets arrive in geometric
    /// ON-trains with per-train flow locality, separated by long OFF gaps
    /// — the packet-train structure of real campus traces. Without it the
    /// stream is a smooth Poisson process.
    #[must_use]
    pub fn generate(&self, n_packets: usize) -> Trace {
        Trace::new(self.spec.name.clone(), self.stream(n_packets).collect())
    }

    /// Returns an iterator yielding exactly `n_packets` seeded packets on
    /// the fly. Memory use is `O(flows)`, independent of `n_packets` —
    /// this is the entry point for million-packet workloads.
    ///
    /// # Example
    ///
    /// ```
    /// use ddtr_trace::{TraceGenerator, TraceSpec};
    ///
    /// let g = TraceGenerator::new(TraceSpec::builder("lab").seed(1).build());
    /// let streamed: Vec<_> = g.stream(100).collect();
    /// assert_eq!(streamed, g.generate(100).packets, "byte-identical");
    /// ```
    #[must_use]
    pub fn stream(&self, n_packets: usize) -> PacketStream {
        PacketStream::new(self, n_packets)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct FlowDef {
    pub(crate) src: u32,
    pub(crate) dst: u32,
    pub(crate) sport: u16,
    pub(crate) dport: u16,
    pub(crate) proto: Protocol,
}

impl FlowDef {
    pub(crate) fn synthesise(index: u32, nodes: u32, rng: &mut StdRng) -> Self {
        let src = 0x0a00_0000 + rng.gen_range(0..nodes);
        let mut dst = 0x0a00_0000 + rng.gen_range(0..nodes);
        if dst == src {
            dst = 0x0a00_0000 + (dst - 0x0a00_0000 + 1) % nodes;
        }
        let well_known = [80u16, 443, 25, 53, 110, 8080];
        let dport = well_known[(index as usize) % well_known.len()];
        let proto = match index % 10 {
            0..=7 => Protocol::Tcp,
            8 => Protocol::Udp,
            _ => Protocol::Icmp,
        };
        FlowDef {
            src,
            dst,
            sport: rng.gen_range(1024..u16::MAX),
            dport,
            proto,
        }
    }
}

/// Cumulative Zipf distribution over `n` ranks with skew `s`. The last
/// bucket is clamped to exactly 1.0: floating-point normalisation can
/// leave it a few ULP short, and a uniform draw of ~1.0 must never fall
/// past the final flow rank.
pub(crate) fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Draws an index from a cumulative distribution by binary search.
pub(crate) fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let x = rng.gen::<f64>();
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

/// Exponential inter-arrival gap (Poisson process), at least 1 us so
/// timestamps strictly increase on average workloads.
pub(crate) fn exponential_gap_us(mean_us: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let gap = -mean_us * u.ln();
    gap.max(1.0) as u64
}

/// Geometric burst length with the given mean, at least one packet.
pub(crate) fn geometric_len(mean_pkts: f64, rng: &mut StdRng) -> u64 {
    let p = (1.0 / mean_pkts).clamp(1e-6, 1.0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (1.0 + u.ln() / (1.0 - p).max(1e-12).ln()).max(1.0) as u64
}

pub(crate) fn synth_url(rng: &mut StdRng) -> String {
    let stem = URL_STEMS[rng.gen_range(0..URL_STEMS.len())];
    if stem.ends_with('=') {
        format!("{stem}{}", rng.gen_range(0..1000))
    } else {
        stem.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SizeProfile;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn spec() -> TraceSpec {
        TraceSpec::builder("test").seed(99).build()
    }

    #[test]
    fn generates_requested_count_deterministically() {
        let g = TraceGenerator::new(spec());
        let a = g.generate(300);
        let b = g.generate(300);
        assert_eq!(a.len(), 300);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(spec()).generate(100);
        let mut s2 = spec();
        s2.seed = 100;
        let b = TraceGenerator::new(s2).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let t = TraceGenerator::new(spec()).generate(500);
        assert!(t.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn sizes_come_from_the_mixture() {
        let s = TraceSpec::builder("sz")
            .sizes(SizeProfile {
                small: 1.0,
                medium: 1.0,
                large: 1.0,
                mtu: 1400,
            })
            .build();
        let t = TraceGenerator::new(s).generate(600);
        let mut seen = BTreeMap::new();
        for p in &t {
            *seen.entry(p.bytes).or_insert(0u32) += 1;
        }
        assert_eq!(
            seen.keys().copied().collect::<Vec<_>>(),
            vec![40, 576, 1400]
        );
        // Roughly balanced thirds.
        for &count in seen.values() {
            assert!(count > 100, "mixture component starved: {seen:?}");
        }
    }

    #[test]
    fn flow_popularity_is_skewed() {
        let s = TraceSpec::builder("zipf").flows(50).flow_skew(1.2).build();
        let t = TraceGenerator::new(s).generate(2000);
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for p in &t {
            *counts.entry(p.flow_key()).or_insert(0) += 1;
        }
        let mut v: Vec<u32> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top = u64::from(v[0]);
        let total: u64 = v.iter().map(|&c| u64::from(c)).sum();
        assert!(
            top * 5 > total,
            "top flow should dominate a skewed trace: {top}/{total}"
        );
    }

    #[test]
    fn url_fraction_honoured_approximately() {
        let s = TraceSpec::builder("urls").url_fraction(0.9).build();
        let t = TraceGenerator::new(s).generate(1000);
        let with_url = t.iter().filter(|p| p.payload.url().is_some()).count();
        // TCP-only payloads, so a bit below 0.9 of all packets.
        assert!(with_url > 500, "only {with_url} URLs generated");
    }

    #[test]
    fn zero_url_fraction_generates_none() {
        let s = TraceSpec::builder("nourl").url_fraction(0.0).build();
        let t = TraceGenerator::new(s).generate(400);
        assert!(t.iter().all(|p| p.payload.url().is_none()));
    }

    #[test]
    fn sources_stay_within_node_population() {
        let s = TraceSpec::builder("n").nodes(8).build();
        let t = TraceGenerator::new(s).generate(400);
        for p in &t {
            assert!((0x0a00_0000..0x0a00_0008).contains(&p.src));
            assert!((0x0a00_0000..0x0a00_0008).contains(&p.dst));
            assert_ne!(p.src, p.dst, "self-traffic is filtered");
        }
    }

    #[test]
    fn bursty_trace_has_longer_same_flow_runs() {
        use crate::spec::BurstProfile;
        let run_lengths = |trace: &crate::packet::Trace| {
            let mut runs = Vec::new();
            let mut current = 0u64;
            let mut last = None;
            for p in trace {
                let key = p.flow_key();
                if last == Some(key) {
                    current += 1;
                } else {
                    if current > 0 {
                        runs.push(current);
                    }
                    current = 1;
                    last = Some(key);
                }
            }
            runs.push(current);
            runs.iter().sum::<u64>() as f64 / runs.len() as f64
        };
        let smooth = TraceGenerator::new(spec()).generate(1500);
        let mut bursty_spec = spec();
        bursty_spec.burstiness = Some(BurstProfile::default());
        let bursty = TraceGenerator::new(bursty_spec).generate(1500);
        let mean_smooth = run_lengths(&smooth);
        let mean_bursty = run_lengths(&bursty);
        assert!(
            mean_bursty > 2.0 * mean_smooth,
            "packet trains must lengthen same-flow runs: {mean_smooth:.2} vs {mean_bursty:.2}"
        );
    }

    #[test]
    fn bursty_trace_has_bimodal_gaps() {
        use crate::spec::BurstProfile;
        let mut s = spec();
        s.burstiness = Some(BurstProfile {
            mean_burst_pkts: 6.0,
            off_gap_factor: 50.0,
            locality: 0.9,
        });
        let t = TraceGenerator::new(s).generate(1000);
        let mut gaps: Vec<u64> = t
            .packets
            .windows(2)
            .map(|w| w[1].ts_us - w[0].ts_us)
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let p99 = gaps[gaps.len() * 99 / 100];
        assert!(
            p99 > 10 * median.max(1),
            "OFF gaps must dwarf in-burst gaps: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn bursty_generation_is_deterministic() {
        use crate::spec::BurstProfile;
        let mut s = spec();
        s.burstiness = Some(BurstProfile::default());
        let g = TraceGenerator::new(s);
        assert_eq!(g.generate(400), g.generate(400));
    }

    #[test]
    fn geometric_len_respects_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let total: u64 = (0..n).map(|_| geometric_len(8.0, &mut rng)).sum();
        let mean = total as f64 / f64::from(n);
        assert!((6.0..10.0).contains(&mean), "mean {mean}");
        // Degenerate mean of one packet never stalls or panics.
        assert_eq!(geometric_len(1.0, &mut rng), 1);
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(20, 0.9);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().copied().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_cdf_tail_is_exactly_one() {
        // A uniform draw of ~1.0 must never fall past the last rank, so
        // the final bucket is clamped to exactly 1.0 — not merely within
        // rounding distance of it.
        for (n, s) in [(1, 0.0), (7, 0.3), (50, 0.9), (512, 1.3), (1000, 2.0)] {
            let cdf = zipf_cdf(n, s);
            assert_eq!(cdf.last().copied().unwrap(), 1.0, "n={n} s={s}");
            assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "n={n} s={s}");
        }
    }

    #[test]
    fn try_new_rejects_invalid_specs_without_panicking() {
        let mut s = spec();
        s.nodes = 1;
        let err = TraceGenerator::try_new(s).unwrap_err();
        assert!(err.to_string().contains("two nodes"), "{err}");
        let mut s = spec();
        s.mean_rate_pps = -1.0;
        assert!(TraceGenerator::try_new(s).is_err());
        assert!(TraceGenerator::try_new(spec()).is_ok());
    }

    #[test]
    fn stream_matches_generate_packet_for_packet() {
        for preset_spec in [spec(), {
            let mut s = spec();
            s.burstiness = Some(crate::spec::BurstProfile::default());
            s
        }] {
            let g = TraceGenerator::new(preset_spec);
            let streamed: Vec<_> = g.stream(700).collect();
            assert_eq!(streamed, g.generate(700).packets);
        }
    }

    #[test]
    fn uniform_skew_is_roughly_uniform() {
        let cdf = zipf_cdf(4, 0.0);
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[1] - 0.5).abs() < 1e-12);
    }
}
