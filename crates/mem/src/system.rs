//! The composed memory system: allocator + L1 + DRAM + energy accounting.

use crate::allocator::{AllocError, SimAllocator};
use crate::cache::Cache;
use crate::config::MemoryConfig;
use crate::dram::DramModel;
use crate::energy::EnergyModel;
use crate::report::{CostReport, MemStats};
use crate::VirtAddr;

/// Base address of the optional scratchpad region. Kept below every heap
/// base so scratchpad and heap addresses never collide.
pub(crate) const SPM_BASE: u64 = 0x100;

/// The simulated embedded memory subsystem.
///
/// All dynamic-data-type implementations issue their traffic through this
/// type. A call to [`MemorySystem::read`] or [`MemorySystem::write`] is
/// split into cache-line transactions, driven through the L1 and (on
/// misses/writebacks) the DRAM model, while cycles and nanojoules are
/// accumulated into a [`MemStats`] ledger. Heap state lives in the embedded
/// [`SimAllocator`].
///
/// # Example
///
/// ```
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let rec = mem.alloc(48)?;
/// mem.write(rec, 48);          // populate the record
/// mem.read(rec.offset(0), 8);  // read its key field
/// mem.free(rec)?;
/// assert_eq!(mem.stats().allocs, 1);
/// assert_eq!(mem.stats().frees, 1);
/// # Ok::<(), ddtr_mem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemoryConfig,
    alloc: SimAllocator,
    l1: Cache,
    l2: Option<Cache>,
    /// Per-access energy of the L2 array (constant: the L2 is a fixed
    /// hardware block, unlike the footprint-sized data memory).
    l2_access_nj: f64,
    dram: DramModel,
    energy: EnergyModel,
    /// Bump pointer of the scratchpad region, when configured.
    spm_next: u64,
    /// Per-access energy of the scratchpad array.
    spm_access_nj: f64,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds the memory system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemoryConfig::validate`].
    #[must_use]
    pub fn new(cfg: MemoryConfig) -> Self {
        cfg.validate().expect("invalid memory configuration");
        let energy = EnergyModel::from_configs(&cfg.l1, &cfg.dram);
        let l2 = cfg.l2.map(Cache::new);
        let l2_access_nj = cfg
            .l2
            .map(|c| EnergyModel::sram_access_nj(c.capacity_bytes, c.line_bytes, c.ways))
            .unwrap_or(0.0);
        // Scratchpad energy: a direct-mapped SRAM array with cache-line-wide
        // rows — the smallest access of the whole hierarchy.
        let spm_access_nj = cfg
            .spm
            .map(|s| EnergyModel::sram_access_nj(s.capacity_bytes, cfg.l1.line_bytes, 1))
            .unwrap_or(0.0);
        MemorySystem {
            cfg,
            alloc: SimAllocator::with_policy(
                cfg.heap_base,
                cfg.dram.capacity_bytes,
                cfg.fit_policy,
            ),
            l1: Cache::new(cfg.l1),
            l2,
            l2_access_nj,
            dram: DramModel::new(cfg.dram),
            energy,
            spm_next: SPM_BASE,
            spm_access_nj,
            stats: MemStats::default(),
        }
    }

    /// Builds the memory system but with an explicit (e.g. perturbed)
    /// energy model, used by the sensitivity ablation.
    #[must_use]
    pub fn with_energy_model(cfg: MemoryConfig, energy: EnergyModel) -> Self {
        let mut sys = Self::new(cfg);
        sys.energy = energy;
        sys
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.cfg
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> EnergyModel {
        self.energy
    }

    /// Allocates `size` bytes on the simulated heap, charging the
    /// allocator's bookkeeping cost model.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from the underlying allocator.
    pub fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        let addr = self.alloc.alloc(size)?;
        let cost = self.cfg.alloc_cost;
        self.charge_meta(cost.accesses_per_alloc, cost.cycles_per_alloc);
        self.stats.allocs += 1;
        Ok(addr)
    }

    /// Frees a simulated heap block.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] on double free / wild pointer.
    pub fn free(&mut self, addr: VirtAddr) -> Result<(), AllocError> {
        self.alloc.free(addr)?;
        let cost = self.cfg.alloc_cost;
        self.charge_meta(cost.accesses_per_free, cost.cycles_per_free);
        self.stats.frees += 1;
        Ok(())
    }

    /// Allocates `size` bytes for a *hot* object — one the software knows
    /// is accessed constantly, such as a DDT descriptor.
    ///
    /// When a scratchpad is configured ([`MemoryConfig::with_spm`]) and has
    /// room, the object is bump-allocated there and all its accesses bypass
    /// the cache hierarchy at fixed scratchpad cost; hot objects are never
    /// individually freed (scratchpad assignment is a compile-time decision
    /// in the related work this models). Otherwise the request falls back
    /// to the ordinary heap.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from the heap fallback.
    pub fn alloc_hot(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if let Some(spm) = self.cfg.spm {
            let aligned = size.div_ceil(8) * 8;
            if self.spm_next + aligned <= SPM_BASE + spm.capacity_bytes {
                let addr = self.spm_next;
                self.spm_next += aligned;
                return Ok(VirtAddr::new(addr));
            }
        }
        self.alloc(size)
    }

    /// Bytes currently bump-allocated in the scratchpad.
    #[must_use]
    pub fn spm_used(&self) -> u64 {
        self.spm_next - SPM_BASE
    }

    /// Whether `addr` falls inside the configured scratchpad region.
    #[must_use]
    pub fn is_spm_addr(&self, addr: VirtAddr) -> bool {
        self.cfg
            .spm
            .is_some_and(|s| (SPM_BASE..SPM_BASE + s.capacity_bytes).contains(&addr.as_u64()))
    }

    /// Issues a read of `size` bytes starting at `addr`.
    ///
    /// Returns the cycle cost of this transaction.
    pub fn read(&mut self, addr: VirtAddr, size: u64) -> u64 {
        self.transact(addr, size, false)
    }

    /// Issues a write of `size` bytes starting at `addr`.
    ///
    /// Returns the cycle cost of this transaction.
    pub fn write(&mut self, addr: VirtAddr, size: u64) -> u64 {
        self.transact(addr, size, true)
    }

    /// Charges `ops` pure CPU operations (comparisons, pointer arithmetic)
    /// that do not touch memory.
    pub fn touch_cpu(&mut self, ops: u64) {
        let cycles = ops * self.cfg.cpu_op_cycles;
        self.stats.cycles += cycles;
        self.stats.energy_nj += self.energy.leakage_nj_per_cycle * cycles as f64;
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// L1 cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.l1.stats()
    }

    /// L2 cache statistics, when an L2 is configured.
    #[must_use]
    pub fn l2_stats(&self) -> Option<crate::CacheStats> {
        self.l2.as_ref().map(Cache::stats)
    }

    /// Allocator statistics (footprint lives here).
    #[must_use]
    pub fn alloc_stats(&self) -> crate::AllocStats {
        self.alloc.stats()
    }

    /// Read-only access to the allocator (address queries in tests).
    #[must_use]
    pub fn allocator(&self) -> &SimAllocator {
        &self.alloc
    }

    /// The four-metric report of everything observed so far.
    #[must_use]
    pub fn report(&self) -> CostReport {
        CostReport {
            accesses: self.stats.accesses(),
            cycles: self.stats.cycles,
            energy_nj: self.stats.energy_nj,
            peak_footprint_bytes: self.alloc.stats().peak_gross_bytes,
        }
    }

    /// Clears all measurement counters (cache contents and heap state are
    /// kept), so a build phase can be excluded from measurements.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.l1.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
        self.dram.reset_stats();
    }

    /// Serves an L1 fill from the L2 (falling through to the backing
    /// store on an L2 miss); returns the cycle cost.
    fn next_level_read(&mut self, line_addr: VirtAddr) -> u64 {
        let Some(l2) = &mut self.l2 else {
            self.stats.energy_nj += self.energy.dram_access_nj;
            return self.dram.read_line();
        };
        let outcome = l2.access_line(line_addr, false);
        let l2_cfg = self.cfg.l2.expect("l2 cache implies l2 config");
        let mut cycles = l2_cfg.hit_cycles;
        self.stats.energy_nj += self.l2_access_nj;
        if !outcome.hit {
            cycles += self.dram.read_line();
            self.stats.energy_nj += self.energy.dram_access_nj;
        }
        if outcome.writeback {
            cycles += self.dram.write_line();
            self.stats.energy_nj += self.energy.dram_access_nj;
        }
        cycles
    }

    /// Routes an L1 dirty writeback to the L2 (or the backing store).
    fn next_level_write(&mut self, victim_addr: VirtAddr) -> u64 {
        let Some(l2) = &mut self.l2 else {
            self.stats.energy_nj += self.energy.dram_access_nj;
            return self.dram.write_line();
        };
        let outcome = l2.access_line(victim_addr, true);
        let l2_cfg = self.cfg.l2.expect("l2 cache implies l2 config");
        let mut cycles = l2_cfg.hit_cycles;
        self.stats.energy_nj += self.l2_access_nj;
        if !outcome.hit {
            // Write-allocate: fetch the line before dirtying it.
            cycles += self.dram.read_line();
            self.stats.energy_nj += self.energy.dram_access_nj;
        }
        if outcome.writeback {
            cycles += self.dram.write_line();
            self.stats.energy_nj += self.energy.dram_access_nj;
        }
        cycles
    }

    fn charge_meta(&mut self, accesses: u64, cycles: u64) {
        // Allocator metadata is small and hot: model it as L1-resident.
        self.stats.reads += accesses / 2;
        self.stats.writes += accesses - accesses / 2;
        self.stats.cycles += cycles + accesses * self.cfg.l1.hit_cycles;
        self.stats.energy_nj += self.energy.l1_access_nj * accesses as f64
            + self.energy.leakage_nj_per_cycle * cycles as f64;
    }

    fn transact(&mut self, addr: VirtAddr, size: u64, write: bool) -> u64 {
        debug_assert!(size > 0, "zero-size transaction");
        if self.is_spm_addr(addr) {
            // Scratchpad access: fixed latency, small fixed energy, no
            // cache involvement.
            let spm = self.cfg.spm.expect("spm address implies spm config");
            let cycles = spm.access_cycles;
            if write {
                self.stats.writes += 1;
                self.stats.write_bytes += size;
            } else {
                self.stats.reads += 1;
                self.stats.read_bytes += size;
            }
            self.stats.cycles += cycles;
            self.stats.energy_nj +=
                self.spm_access_nj + self.energy.leakage_nj_per_cycle * cycles as f64;
            return cycles;
        }
        let line = self.cfg.l1.line_bytes;
        let first = addr.line_index(line);
        let last = addr.offset(size.saturating_sub(1)).line_index(line);
        let mut cycles = 0;
        // CACTI effect: the data memory serving the heap is sized to what
        // the application allocates, so its per-access energy depends on
        // the live footprint (latency does not, at this abstraction).
        let data_nj = self
            .energy
            .data_access_nj(self.alloc.stats().live_gross_bytes);
        for li in first..=last {
            let line_addr = VirtAddr::new(li * line);
            let outcome = self.l1.access_line(line_addr, write);
            cycles += self.cfg.l1.hit_cycles;
            self.stats.energy_nj += data_nj;
            if !outcome.hit {
                // Miss: fill from the L2 (when present) or the backing
                // store.
                cycles += self.next_level_read(line_addr);
            }
            if let Some(victim) = outcome.victim_line {
                // Dirty eviction: write the victim line to the next level.
                cycles += self.next_level_write(VirtAddr::new(victim * line));
            }
        }
        if write {
            self.stats.writes += 1;
            self.stats.write_bytes += size;
        } else {
            self.stats.reads += 1;
            self.stats.read_bytes += size;
        }
        self.stats.cycles += cycles;
        self.stats.energy_nj += self.energy.leakage_nj_per_cycle * cycles as f64;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemoryConfig::tiny_for_tests())
    }

    #[test]
    fn read_counts_and_bytes() {
        let mut m = sys();
        let a = m.alloc(64).unwrap();
        m.read(a, 64);
        assert_eq!(m.stats().reads, 1 + 2 /* alloc meta reads */);
        assert_eq!(m.stats().read_bytes, 64);
    }

    #[test]
    fn multi_line_transaction_touches_each_line() {
        let mut m = sys();
        let a = m.alloc(128).unwrap();
        m.read(a, 128); // 32-byte lines -> at least 4 line accesses
        let cs = m.cache_stats();
        assert!(cs.accesses() >= 4, "got {} line accesses", cs.accesses());
    }

    #[test]
    fn hit_is_cheaper_than_miss() {
        let mut m = sys();
        let a = m.alloc(8).unwrap();
        let miss_cycles = m.read(a, 8);
        let hit_cycles = m.read(a, 8);
        assert!(miss_cycles > hit_cycles);
    }

    #[test]
    fn energy_accumulates_per_access() {
        let mut m = sys();
        let a = m.alloc(8).unwrap();
        let e0 = m.stats().energy_nj;
        m.read(a, 8);
        let e1 = m.stats().energy_nj;
        m.read(a, 8); // hit: cheaper but non-zero
        let e2 = m.stats().energy_nj;
        assert!(e1 > e0);
        assert!(e2 > e1);
        assert!(e1 - e0 > e2 - e1, "miss costs more energy than hit");
    }

    #[test]
    fn footprint_comes_from_allocator_peak() {
        let mut m = sys();
        let a = m.alloc(512).unwrap();
        m.free(a).unwrap();
        let _ = m.alloc(16).unwrap();
        let rep = m.report();
        assert_eq!(rep.peak_footprint_bytes, SimAllocator::gross_size(512));
    }

    #[test]
    fn reset_stats_keeps_heap_and_cache_contents() {
        let mut m = sys();
        let a = m.alloc(32).unwrap();
        m.write(a, 32);
        m.reset_stats();
        assert_eq!(m.stats().accesses(), 0);
        // heap block still live
        assert!(m.allocator().contains(a));
        // cache still warm: second read is a hit (cheap)
        let cycles = m.read(a, 8);
        assert_eq!(cycles, m.config().l1.hit_cycles);
    }

    #[test]
    fn touch_cpu_adds_cycles_only() {
        let mut m = sys();
        let before = m.stats();
        m.touch_cpu(10);
        let after = m.stats();
        assert_eq!(after.cycles - before.cycles, 10);
        assert_eq!(after.accesses(), before.accesses());
    }

    #[test]
    fn free_propagates_double_free_error() {
        let mut m = sys();
        let a = m.alloc(8).unwrap();
        m.free(a).unwrap();
        assert!(m.free(a).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut m = sys();
            let a = m.alloc(96).unwrap();
            for i in 0..50u64 {
                m.write(a.offset(i % 96), 8.min(96 - (i % 96)));
                m.read(a.offset((i * 13) % 90), 4);
            }
            m.report()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.accesses, r2.accesses);
        assert_eq!(r1.cycles, r2.cycles);
        assert!((r1.energy_nj - r2.energy_nj).abs() < 1e-12);
    }

    #[test]
    fn with_energy_model_scales_energy() {
        let cfg = MemoryConfig::tiny_for_tests();
        let base = EnergyModel::from_configs(&cfg.l1, &cfg.dram);
        let mut m1 = MemorySystem::new(cfg);
        let mut m2 = MemorySystem::with_energy_model(cfg, base.scaled(2.0));
        let a1 = m1.alloc(8).unwrap();
        let a2 = m2.alloc(8).unwrap();
        m1.read(a1, 8);
        m2.read(a2, 8);
        // dynamic part doubles; leakage identical and tiny
        assert!(m2.stats().energy_nj > 1.9 * m1.stats().energy_nj);
    }
}
