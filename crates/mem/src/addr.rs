//! Simulated virtual addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An address in the simulated embedded address space.
///
/// A [`VirtAddr`] is produced by [`SimAllocator::alloc`](crate::SimAllocator)
/// and consumed by the cache/DRAM models. It is a plain 64-bit value wrapped
/// in a newtype so that simulated addresses cannot be confused with sizes or
/// host pointers.
///
/// # Example
///
/// ```
/// use ddtr_mem::VirtAddr;
///
/// let base = VirtAddr::new(0x1000);
/// let field = base.offset(8);
/// assert_eq!(field.as_u64(), 0x1008);
/// assert_eq!(format!("{base}"), "0x0000000000001000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The null address; never returned by a successful allocation.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from a raw 64-bit value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// Returns `true` for the null address.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the cache-line index of this address for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    #[must_use]
    pub fn line_index(self, line_bytes: u64) -> u64 {
        assert!(line_bytes > 0, "line size must be non-zero");
        self.0 / line_bytes
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<VirtAddr> for u64 {
    fn from(addr: VirtAddr) -> u64 {
        addr.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(4).is_null());
    }

    #[test]
    fn offset_advances() {
        let a = VirtAddr::new(100);
        assert_eq!(a.offset(28).as_u64(), 128);
    }

    #[test]
    fn line_index_divides() {
        let a = VirtAddr::new(96);
        assert_eq!(a.line_index(32), 3);
        assert_eq!(a.line_index(64), 1);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn line_index_rejects_zero_line() {
        let _ = VirtAddr::new(96).line_index(0);
    }

    #[test]
    fn display_is_padded_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0xabc)), "0x0000000000000abc");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VirtAddr::new(1) < VirtAddr::new(2));
        assert_eq!(u64::from(VirtAddr::new(7)), 7);
    }
}
