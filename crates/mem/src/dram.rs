//! Main-memory timing model.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// Access counters of the [`DramModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Line reads served (cache fill traffic).
    pub reads: u64,
    /// Line writes served (writeback traffic).
    pub writes: u64,
}

impl DramStats {
    /// Total line transfers.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Flat DRAM timing model: every line transfer costs a fixed number of
/// cycles. Energy is attributed by [`crate::EnergyModel`], not here.
///
/// # Example
///
/// ```
/// use ddtr_mem::{DramConfig, DramModel};
///
/// let mut dram = DramModel::new(DramConfig::default());
/// let cycles = dram.read_line() + dram.write_line();
/// assert_eq!(cycles, 2 * DramConfig::default().access_cycles);
/// assert_eq!(dram.stats().transfers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    stats: DramStats,
}

impl DramModel {
    /// Creates the model.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        DramModel {
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Serves a line fill; returns the cycle cost.
    pub fn read_line(&mut self) -> u64 {
        self.stats.reads += 1;
        self.cfg.access_cycles
    }

    /// Serves a writeback; returns the cycle cost.
    pub fn write_line(&mut self) -> u64 {
        self.stats.writes += 1;
        self.cfg.access_cycles
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Clears the counters.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_cost_fixed_cycles() {
        let cfg = DramConfig {
            access_cycles: 42,
            capacity_bytes: 1024,
        };
        let mut d = DramModel::new(cfg);
        assert_eq!(d.read_line(), 42);
        assert_eq!(d.write_line(), 42);
        assert_eq!(
            d.stats(),
            DramStats {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut d = DramModel::new(DramConfig::default());
        d.read_line();
        d.reset_stats();
        assert_eq!(d.stats().transfers(), 0);
    }
}
